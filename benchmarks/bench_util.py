"""Shared experiment runners and table printing for the benchmarks.

Every benchmark follows the same pattern: build a simulated deployment
mirroring the paper's, drive closed- or open-loop clients, and print the
rows the corresponding paper table/figure reports.  pytest-benchmark
times the simulation itself (wall-clock of the whole experiment); the
*scientific* output is the printed simulated-latency/throughput table.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.metrics import LatencyRecorder
from repro.sim.latency import EXPERIMENT1, EXPERIMENT2, LatencyMatrix
from repro.sim.network import CpuModel
from repro.workload.drivers import (
    BatchingOpenLoopDriver,
    ClosedLoopDriver,
    OpenLoopDriver,
)
from repro.workload.generator import KVWorkload

#: Experiment 1 deployment (Table I, Figures 4, 6, 7).
EXP1_REGIONS = ["virginia", "tokyo", "mumbai", "sydney"]
#: Experiment 2 deployment (Figure 5).
EXP2_REGIONS = ["ohio", "ireland", "frankfurt", "mumbai"]

#: Default per-experiment safety cap on simulated events.
MAX_EVENTS = 40_000_000


def run_closed_loop(protocol: str,
                    regions: Sequence[str] = tuple(EXP1_REGIONS),
                    latency: LatencyMatrix = EXPERIMENT1,
                    *,
                    primary_region: Optional[str] = None,
                    contention: float = 0.0,
                    clients_per_region: int = 1,
                    requests_per_client: int = 8,
                    cpu: Optional[CpuModel] = None,
                    seed: int = 0,
                    slow_path_timeout: float = 400.0,
                    client_regions: Optional[Sequence[str]] = None
                    ) -> Cluster:
    """The paper's latency methodology: closed-loop clients co-located
    with every replica (or ``client_regions``), measuring per-region
    client-side latency."""
    cluster = build_cluster(protocol, list(regions), latency,
                            primary_region=primary_region,
                            cpu=cpu, seed=seed,
                            slow_path_timeout=slow_path_timeout)
    drivers = []
    counter = 0
    where = client_regions if client_regions is not None else regions
    for region in where:
        for _ in range(clients_per_region):
            client_id = f"c{counter}"
            counter += 1
            client = cluster.add_client(client_id, region)
            workload = KVWorkload(client_id, contention=contention,
                                  seed=seed * 1000 + counter)
            drivers.append(ClosedLoopDriver(
                client, workload, num_requests=requests_per_client))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle(max_events=MAX_EVENTS)
    assert all(d.done for d in drivers), "not all clients finished"
    return cluster


def run_open_loop(protocol: str,
                  regions: Sequence[str] = tuple(EXP1_REGIONS),
                  latency: LatencyMatrix = EXPERIMENT1,
                  *,
                  primary_region: Optional[str] = None,
                  client_regions: Sequence[str] = ("virginia",),
                  clients_per_region: int = 10,
                  rate_per_client: float = 60.0,
                  duration_ms: float = 3000.0,
                  cpu: Optional[CpuModel] = None,
                  seed: int = 0) -> Cluster:
    """The paper's throughput methodology (Figure 7): open-loop clients,
    0% contention, small write requests."""
    # Recovery timers are pushed out of the way: a saturated (but
    # correct) system must not be mistaken for a faulty one, or client
    # retries / view changes avalanche and the measurement becomes a
    # fault experiment.
    cluster = build_cluster(protocol, list(regions), latency,
                            primary_region=primary_region,
                            cpu=cpu, seed=seed,
                            slow_path_timeout=8_000.0,
                            retry_timeout=120_000.0,
                            suspicion_timeout=120_000.0,
                            view_change_timeout=120_000.0)
    drivers = []
    counter = 0
    for region in client_regions:
        for _ in range(clients_per_region):
            client_id = f"c{counter}"
            counter += 1
            client = cluster.add_client(client_id, region)
            workload = KVWorkload(client_id, contention=0.0,
                                  seed=seed * 1000 + counter)
            drivers.append(OpenLoopDriver(
                client, workload, rate_per_sec=rate_per_client,
                duration_ms=duration_ms))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle(max_events=MAX_EVENTS)
    return cluster


def run_open_loop_batched(protocol: str,
                          regions: Sequence[str] = tuple(EXP1_REGIONS),
                          latency: LatencyMatrix = EXPERIMENT1,
                          *,
                          batch_size: int = 1,
                          batch_timeout_ms: float = 25.0,
                          primary_region: Optional[str] = None,
                          client_regions: Sequence[str] = ("virginia",),
                          clients_per_region: int = 8,
                          rate_per_client: float = 400.0,
                          duration_ms: float = 2000.0,
                          cpu: Optional[CpuModel] = None,
                          seed: int = 0) -> Cluster:
    """Throughput methodology with request batching enabled end-to-end:
    clients pack commands into signed BatchRequests and the ordering
    point (ezBFT owner / PBFT primary) flushes batched proposals.

    ``batch_size=1`` reproduces :func:`run_open_loop` exactly (every
    path degrades to the unbatched protocol), so sweeping batch sizes
    isolates the amortization win."""
    cluster = build_cluster(protocol, list(regions), latency,
                            primary_region=primary_region,
                            cpu=cpu, seed=seed,
                            batch_size=batch_size,
                            batch_timeout_ms=batch_timeout_ms,
                            slow_path_timeout=30_000.0,
                            retry_timeout=300_000.0,
                            suspicion_timeout=300_000.0,
                            view_change_timeout=300_000.0)
    drivers = []
    counter = 0
    for region in client_regions:
        for _ in range(clients_per_region):
            client_id = f"c{counter}"
            counter += 1
            client = cluster.add_client(client_id, region)
            workload = KVWorkload(client_id, contention=0.0,
                                  seed=seed * 1000 + counter)
            drivers.append(BatchingOpenLoopDriver(
                client, workload, rate_per_sec=rate_per_client,
                duration_ms=duration_ms, batch_size=batch_size,
                batch_timeout_ms=batch_timeout_ms))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle(max_events=MAX_EVENTS)
    return cluster


def region_means(recorder: LatencyRecorder) -> Dict[str, float]:
    return {group: recorder.summary(group).mean
            for group in recorder.groups()}


def print_table(title: str, columns: List[str],
                rows: List[List[str]]) -> None:
    """Fixed-width table matching the paper's row/column layout."""
    widths = [max(len(str(col)), *(len(str(row[i])) for row in rows))
              for i, col in enumerate(columns)]
    print()
    print(f"=== {title} ===")
    header = "  ".join(str(col).ljust(widths[i])
                       for i, col in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))
    print()


def fmt_ms(value: float) -> str:
    return f"{value:7.1f}"
