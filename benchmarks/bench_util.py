"""Shared experiment runners and table printing for the benchmarks.

Every benchmark follows the same pattern: declare a
:class:`repro.scenario.Scenario` mirroring the paper's deployment, run
it through :class:`repro.scenario.ScenarioRunner`, and print the rows
the corresponding paper table/figure reports.  pytest-benchmark times
the simulation itself (wall-clock of the whole experiment); the
*scientific* output is the printed simulated-latency/throughput table.

The helpers here keep the historical call signatures (protocol +
methodology knobs -> live ``Cluster``) but compile onto the scenario
API, so the benchmarks exercise the same surface users script against.
The executed :class:`~repro.scenario.ExperimentReport` is attached to
the returned cluster as ``cluster.report``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.builder import Cluster
from repro.cluster.metrics import LatencyRecorder
from repro.scenario import Scenario, ScenarioRunner, WorkloadSpec
from repro.sim.latency import EXPERIMENT1, EXPERIMENT2, LatencyMatrix
from repro.sim.network import CpuModel

#: Experiment 1 deployment (Table I, Figures 4, 6, 7).
EXP1_REGIONS = ["virginia", "tokyo", "mumbai", "sydney"]
#: Experiment 2 deployment (Figure 5).
EXP2_REGIONS = ["ohio", "ireland", "frankfurt", "mumbai"]

#: Default per-experiment safety cap on simulated events.
MAX_EVENTS = 40_000_000


def _execute(scenario: Scenario) -> Cluster:
    report, cluster = ScenarioRunner(
        max_events=MAX_EVENTS).run_with_cluster(scenario)
    cluster.report = report
    return cluster


def run_closed_loop(protocol: str,
                    regions: Sequence[str] = tuple(EXP1_REGIONS),
                    latency: LatencyMatrix = EXPERIMENT1,
                    *,
                    primary_region: Optional[str] = None,
                    contention: float = 0.0,
                    clients_per_region: int = 1,
                    requests_per_client: int = 8,
                    warmup_requests: int = 0,
                    cpu: Optional[CpuModel] = None,
                    seed: int = 0,
                    slow_path_timeout: float = 400.0,
                    client_regions: Optional[Sequence[str]] = None
                    ) -> Cluster:
    """The paper's latency methodology: closed-loop clients co-located
    with every replica (or ``client_regions``), measuring per-region
    client-side latency.  ``warmup_requests`` per client are excluded
    recorder-side (no hand-filtering)."""
    where = tuple(client_regions) if client_regions is not None \
        else tuple(regions)
    scenario = Scenario(
        name=f"bench-closed-{protocol}",
        protocol=protocol,
        replica_regions=tuple(regions),
        latency=latency,
        primary_region=primary_region,
        cpu=cpu,
        seed=seed,
        slow_path_timeout=slow_path_timeout,
        workload=WorkloadSpec(
            mode="closed",
            client_regions=where,
            clients_per_region=clients_per_region,
            requests_per_client=requests_per_client,
            warmup_requests=warmup_requests,
            contention=contention,
        ),
    )
    cluster = _execute(scenario)
    expected = (len(where) * clients_per_region *
                requests_per_client)
    delivered = (cluster.recorder.total_delivered +
                 cluster.recorder.warmup_discarded)
    assert delivered == expected, \
        f"not all clients finished: {delivered}/{expected}"
    return cluster


def run_open_loop(protocol: str,
                  regions: Sequence[str] = tuple(EXP1_REGIONS),
                  latency: LatencyMatrix = EXPERIMENT1,
                  *,
                  primary_region: Optional[str] = None,
                  client_regions: Sequence[str] = ("virginia",),
                  clients_per_region: int = 10,
                  rate_per_client: float = 60.0,
                  duration_ms: float = 3000.0,
                  cpu: Optional[CpuModel] = None,
                  seed: int = 0) -> Cluster:
    """The paper's throughput methodology (Figure 7): open-loop clients,
    0% contention, small write requests."""
    # Recovery timers are pushed out of the way: a saturated (but
    # correct) system must not be mistaken for a faulty one, or client
    # retries / view changes avalanche and the measurement becomes a
    # fault experiment.
    scenario = Scenario(
        name=f"bench-open-{protocol}",
        protocol=protocol,
        replica_regions=tuple(regions),
        latency=latency,
        primary_region=primary_region,
        cpu=cpu,
        seed=seed,
        duration_ms=duration_ms,
        slow_path_timeout=8_000.0,
        retry_timeout=120_000.0,
        suspicion_timeout=120_000.0,
        view_change_timeout=120_000.0,
        workload=WorkloadSpec(
            mode="open",
            client_regions=tuple(client_regions),
            clients_per_region=clients_per_region,
            rate_per_client=rate_per_client,
        ),
    )
    return _execute(scenario)


def run_open_loop_batched(protocol: str,
                          regions: Sequence[str] = tuple(EXP1_REGIONS),
                          latency: LatencyMatrix = EXPERIMENT1,
                          *,
                          batch_size: int = 1,
                          batch_timeout_ms: float = 25.0,
                          primary_region: Optional[str] = None,
                          client_regions: Sequence[str] = ("virginia",),
                          clients_per_region: int = 8,
                          rate_per_client: float = 400.0,
                          duration_ms: float = 2000.0,
                          cpu: Optional[CpuModel] = None,
                          seed: int = 0) -> Cluster:
    """Throughput methodology with request batching enabled end-to-end:
    clients pack commands into signed BatchRequests and the ordering
    point (ezBFT owner / PBFT primary) flushes batched proposals.

    ``batch_size=1`` reproduces :func:`run_open_loop` exactly (every
    path degrades to the unbatched protocol), so sweeping batch sizes
    isolates the amortization win."""
    scenario = Scenario(
        name=f"bench-batched-{protocol}",
        protocol=protocol,
        replica_regions=tuple(regions),
        latency=latency,
        primary_region=primary_region,
        cpu=cpu,
        seed=seed,
        duration_ms=duration_ms,
        slow_path_timeout=30_000.0,
        retry_timeout=300_000.0,
        suspicion_timeout=300_000.0,
        view_change_timeout=300_000.0,
        workload=WorkloadSpec(
            mode="open",
            client_regions=tuple(client_regions),
            clients_per_region=clients_per_region,
            rate_per_client=rate_per_client,
            batch_size=batch_size,
            batch_timeout_ms=batch_timeout_ms,
        ),
    )
    return _execute(scenario)


def region_means(recorder: LatencyRecorder) -> Dict[str, float]:
    return {group: recorder.summary(group).mean
            for group in recorder.groups()}


def report_region_means(report) -> Dict[str, float]:
    """Per-region mean latency from an :class:`ExperimentReport` (the
    sweep-cell counterpart of :func:`region_means`); single-phase runs
    read their only phase."""
    phase = report.phases[0]
    return {region: summary.mean
            for region, summary in phase.per_region.items()}


def assert_all_delivered(report, expected: int) -> None:
    """Every closed-loop client finished (warmup samples count)."""
    delivered = report.delivered + report.warmup_discarded
    assert delivered == expected, \
        f"not all clients finished: {delivered}/{expected}"


def print_table(title: str, columns: List[str],
                rows: List[List[str]]) -> None:
    """Fixed-width table matching the paper's row/column layout."""
    widths = [max(len(str(col)), *(len(str(row[i])) for row in rows))
              for i, col in enumerate(columns)]
    print()
    print(f"=== {title} ===")
    header = "  ".join(str(col).ljust(widths[i])
                       for i, col in enumerate(columns))
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))
    print()


def fmt_ms(value: float) -> str:
    return f"{value:7.1f}"
