"""Memory bound: checkpoint GC keeps resident log size O(interval).

Not a paper figure -- the paper's runs are short enough to keep the
whole log -- but its owner-change protocol explicitly assumes
checkpointing ("instances executed or committed since the last
checkpoint"), and the ROADMAP's production north star needs sustained
runs: without GC every structure (instance spaces, executor history,
result cache, recovery payloads) grows linearly with history.

Methodology: a saturated single-region open-loop ezBFT run (offered
load above the ordering replica's service rate, bounded per-client
in-flight window), sampled every 200ms of simulated time for the
largest resident footprint across replicas.  The same run with
``checkpoint_interval=0`` is the unbounded baseline.

Claims asserted:

1. With checkpointing, the peak resident footprint is a small constant
   (O(interval + in-flight window)) -- an order of magnitude below the
   unbounded baseline's final size, and flat between the first and
   second half of the run.
2. Throughput is within noise of the unbounded baseline (GC is not on
   the hot path).
3. Owner-change recovery payloads stay flat (entries above the last
   stable checkpoint) instead of growing with history.
4. A replica partitioned past log truncation catches up via state
   transfer and converges to identical state.

``MEMBOUND_PROFILE=smoke`` shrinks the run for CI (same assertions,
smaller constants).
"""

import os

import pytest

from bench_util import print_table
from repro.cluster.builder import build_cluster
from repro.sim.latency import LOCAL
from repro.sim.network import CpuModel
from repro.workload.drivers import OpenLoopDriver
from repro.workload.generator import KVWorkload

SMOKE = os.environ.get("MEMBOUND_PROFILE", "full") == "smoke"

#: Saturated run: ~590 req/s service rate at the ordering replica
#: (20 cpu units/request), offered 800 req/s.
CLIENTS = 10
RATE_PER_CLIENT = 80.0
MAX_OUTSTANDING = 32  # per client; bounds in-flight, keeps pipe full
DURATION_MS = 2_500.0 if SMOKE else 18_000.0
INTERVAL = 32 if SMOKE else 128
MIN_DELIVERED = 1_200 if SMOKE else 10_000
SAMPLE_MS = 200.0


def run_saturated(checkpoint_interval: int):
    cluster = build_cluster(
        "ezbft", ["local"] * 4, LOCAL,
        checkpoint_interval=checkpoint_interval,
        # Saturation must not look like a fault (see run_open_loop).
        slow_path_timeout=8_000.0, retry_timeout=600_000.0,
        suspicion_timeout=600_000.0, view_change_timeout=600_000.0)
    drivers = []
    for i in range(CLIENTS):
        client = cluster.add_client(f"c{i}", "local")
        workload = KVWorkload(f"c{i}", contention=0.0, seed=i)
        drivers.append(OpenLoopDriver(
            client, workload, rate_per_sec=RATE_PER_CLIENT,
            duration_ms=DURATION_MS, max_outstanding=MAX_OUTSTANDING))
    for driver in drivers:
        driver.start()
    samples = []
    horizon = int(DURATION_MS * 2)
    for t in range(int(SAMPLE_MS), horizon + 1, int(SAMPLE_MS)):
        cluster.run(until=float(t))
        samples.append(max(f["total"]
                           for f in cluster.log_footprint().values()))
    cluster.run_until_idle(max_events=40_000_000)
    samples.append(max(f["total"]
                       for f in cluster.log_footprint().values()))
    return cluster, samples


def owner_change_payload(cluster, space_owner="r0",
                         observer="r1") -> int:
    """Entries an owner-change for ``space_owner`` would ship."""
    replica = cluster.replicas[observer]
    base = replica.checkpoint_base_slot(space_owner)
    return len(replica.owner_changes._summarize_space(space_owner, base))


def run_rejoin_demo():
    """A replica rejoins after the cluster truncated past it."""
    cluster = build_cluster(
        "ezbft", ["local"] * 4, LOCAL, cpu=CpuModel.free(),
        checkpoint_interval=16,
        slow_path_timeout=50.0, retry_timeout=200.0,
        suspicion_timeout=100_000.0, view_change_timeout=100_000.0)
    client = cluster.add_client("c0", "local", target_replica="r0")
    cluster.network.isolate("r3")
    for i in range(96):
        client.submit(client.next_command("put", f"k{i % 8}", i))
        cluster.run_until_idle()
    cluster.network.heal("r3")
    for i in range(96, 144):
        client.submit(client.next_command("put", f"k{i % 8}", i))
        cluster.run_until_idle()
    return cluster


def run_all():
    bounded, bounded_samples = run_saturated(INTERVAL)
    unbounded, unbounded_samples = run_saturated(0)
    rejoin = run_rejoin_demo()
    return (bounded, bounded_samples, unbounded, unbounded_samples,
            rejoin)


@pytest.mark.benchmark(group="memory_bound")
def test_memory_bound(benchmark):
    (bounded, bounded_samples, unbounded, unbounded_samples,
     rejoin) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    bounded_tput = bounded.recorder.throughput_per_sec()
    unbounded_tput = unbounded.recorder.throughput_per_sec()
    rows = []
    for label, cluster, samples, tput in (
            (f"interval={INTERVAL}", bounded, bounded_samples,
             bounded_tput),
            ("unbounded", unbounded, unbounded_samples,
             unbounded_tput)):
        rows.append([
            label,
            cluster.recorder.total_delivered,
            f"{tput:7.0f}",
            max(samples),
            samples[-1],
            owner_change_payload(cluster),
        ])
    print_table(
        "Memory bound: saturated ezBFT, resident footprint "
        "(log+executor structure sizes, max across replicas)",
        ["config", "delivered", "req/s", "peak resident",
         "final resident", "oc payload"], rows)

    delivered = bounded.recorder.total_delivered
    assert delivered >= MIN_DELIVERED, (
        f"run too short to be meaningful: {delivered}")
    assert unbounded.recorder.total_delivered >= MIN_DELIVERED

    # 1. Bounded: peak footprint is O(interval + in-flight), an order
    # of magnitude below the unbounded baseline's final size...
    peak = max(bounded_samples)
    in_flight = CLIENTS * MAX_OUTSTANDING
    assert peak <= 10 * INTERVAL + 10 * in_flight, (
        f"resident footprint {peak} not O(interval)")
    assert peak <= max(unbounded_samples) / 5
    # ...and flat: the second half of the run grows nothing.
    half = len(bounded_samples) // 2
    warmed = max(bounded_samples[4:half])
    assert max(bounded_samples[half:]) <= 1.5 * warmed, (
        "footprint still growing in the second half of the run")
    # The unbounded baseline really does grow with history.
    assert unbounded_samples[-1] >= 4 * delivered

    # 2. Throughput within noise of the unbounded baseline.
    assert bounded_tput >= 0.9 * unbounded_tput, (
        f"checkpointing cost throughput: {bounded_tput:.0f} vs "
        f"{unbounded_tput:.0f}")

    # 3. Owner-change payloads stay flat vs growing with history.
    assert owner_change_payload(bounded) <= 4 * INTERVAL + in_flight
    assert owner_change_payload(unbounded) >= 0.9 * \
        unbounded.recorder.total_delivered

    # 4. The partitioned replica caught up via state transfer.
    lagging = rejoin.replicas["r3"]
    assert lagging.stats["state_transfers_installed"] >= 1
    assert lagging.executor.executed_count == 144
    states = {rid: r.statemachine.final_items()
              for rid, r in rejoin.replicas.items()}
    assert all(s == states["r0"] for s in states.values())
