"""Make bench_util importable and force -s-like output for tables."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
