"""Figure 5b: the effect of moving Zyzzyva's primary (Ohio, Ireland,
Mumbai) vs leaderless ezBFT in the Experiment-2 deployment.

Paper claims: (i) moving the primary away from Ireland substantially
inflates Zyzzyva's latency; (ii) ezBFT is up to ~45% lower than Zyzzyva
under bad placement; (iii) therefore frequent primary rotation (the
anti-byzantine defence of primary-based protocols) costs latency, which
leaderless ezBFT avoids.
"""

import pytest

from repro.sim.latency import EXPERIMENT2

from bench_util import (
    EXP2_REGIONS,
    fmt_ms,
    print_table,
    region_means,
    run_closed_loop,
)

PRIMARIES = ("ohio", "mumbai", "ireland")


def run_fig5b():
    results = {}
    for primary in PRIMARIES:
        cluster = run_closed_loop("zyzzyva", regions=EXP2_REGIONS,
                                  latency=EXPERIMENT2,
                                  primary_region=primary,
                                  requests_per_client=6)
        results[f"zyzzyva-{primary}"] = region_means(cluster.recorder)
    cluster = run_closed_loop("ezbft", regions=EXP2_REGIONS,
                              latency=EXPERIMENT2,
                              requests_per_client=6)
    results["ezbft"] = region_means(cluster.recorder)
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5b_primary_placement(benchmark):
    results = benchmark.pedantic(run_fig5b, rounds=1, iterations=1)

    series = [f"zyzzyva-{p}" for p in PRIMARIES] + ["ezbft"]
    columns = ["series"] + EXP2_REGIONS
    rows = [[name] + [fmt_ms(results[name][region])
                      for region in EXP2_REGIONS]
            for name in series]
    print_table("Figure 5b: Zyzzyva primary placement vs ezBFT (ms)",
                columns, rows)

    zyz_avg = {p: sum(results[f"zyzzyva-{p}"][r]
                      for r in EXP2_REGIONS) / 4 for p in PRIMARIES}
    ez_avg = sum(results["ezbft"][r] for r in EXP2_REGIONS) / 4
    print(f"averages: zyzzyva={zyz_avg}, ezbft={ez_avg:.1f}")

    # (i) Ireland is Zyzzyva's best placement; others are worse.
    assert zyz_avg["ireland"] < zyz_avg["ohio"]
    assert zyz_avg["ireland"] < zyz_avg["mumbai"]

    # (ii) Under bad placement ezBFT's advantage is large: the paper
    # reports up to ~45% lower latency; require >=25% in some region.
    best_improvement = 0.0
    for primary in ("ohio", "mumbai"):
        for region in EXP2_REGIONS:
            zyz = results[f"zyzzyva-{primary}"][region]
            ez = results["ezbft"][region]
            best_improvement = max(best_improvement, (zyz - ez) / zyz)
    assert best_improvement >= 0.25
    print(f"max per-region improvement vs misplaced primary: "
          f"{best_improvement:.0%}")

    # (iii) ezBFT beats every placement on average.
    for primary in PRIMARIES:
        assert ez_avg <= zyz_avg[primary] * 1.02
