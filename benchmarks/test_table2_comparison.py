"""Table II: protocol comparison -- resilience, best-case communication
steps, slow-path steps, leader structure.

The static columns come from the protocol definitions; the measured
column validates the step counts empirically on a uniform 10ms WAN with
zero CPU cost, where client-side latency / 10ms = communication steps
(ezBFT's first step is intra-region and counts ~0, which is exactly the
paper's point about nullifying the first hop).
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.sim.latency import uniform_matrix
from repro.sim.network import CpuModel

from bench_util import print_table

ONE_WAY = 10.0
REGIONS = ["a", "b", "c", "d"]

#: The paper's Table II rows.
STATIC = {
    "pbft": {"resilience": "f < n/3", "best_steps": 5,
             "slow_extra": "-", "leader": "single"},
    "zyzzyva": {"resilience": "f < n/3", "best_steps": 3,
                "slow_extra": 2, "leader": "single"},
    "fab": {"resilience": "f < n/3", "best_steps": 4,
            "slow_extra": "-", "leader": "single"},
    "ezbft": {"resilience": "f < n/3", "best_steps": 3,
              "slow_extra": 2, "leader": "leaderless"},
}


def measure_steps(protocol, contention=False):
    matrix = uniform_matrix(REGIONS, one_way_ms=ONE_WAY,
                            intra_region_ms=0.0)
    cluster = build_cluster(protocol, REGIONS, matrix,
                            cpu=CpuModel.free(), primary_index=0,
                            slow_path_timeout=200.0)
    latencies = []
    # The measuring client lives in a NON-primary region ("b"): the
    # primary-based protocols pay the 10ms first hop; ezBFT's client
    # still finds a local replica (its first hop is ~0) -- exactly the
    # asymmetry Table II's narrative is about.
    client = cluster.add_client(
        "c0", "b", on_delivery=lambda *a: latencies.append(a[2]))
    if contention:
        # A second client in another region creates the interference
        # that forces ezBFT onto its slow path.
        rival = cluster.add_client("c1", "d", record=False)
        rival.submit(rival.next_command("put", "hot", "rival"))
        client.submit(client.next_command("put", "hot", "mine"))
    else:
        client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()
    return latencies[0]


def run_table2():
    measured = {}
    for protocol in ("pbft", "fab", "zyzzyva", "ezbft"):
        measured[protocol] = measure_steps(protocol)
    measured["ezbft-slow"] = measure_steps("ezbft", contention=True)
    return measured


@pytest.mark.benchmark(group="table2")
def test_table2_comparison(benchmark):
    measured = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    rows = []
    for protocol in ("pbft", "fab", "zyzzyva", "ezbft"):
        info = STATIC[protocol]
        rows.append([
            protocol, info["resilience"], info["best_steps"],
            info["slow_extra"], info["leader"],
            f"{measured[protocol]:.1f}ms "
            f"(~{measured[protocol] / ONE_WAY:.1f} steps)",
        ])
    print_table(
        "Table II: protocol comparison (measured on uniform 10ms WAN)",
        ["protocol", "resilience", "best steps", "slow extra",
         "leader", "measured best case"], rows)
    print(f"ezbft slow path under contention: "
          f"{measured['ezbft-slow']:.1f}ms "
          f"(~{measured['ezbft-slow'] / ONE_WAY:.1f} steps)")

    # PBFT: client->primary + 3 phases + reply = 5 x 10ms.
    assert measured["pbft"] == pytest.approx(5 * ONE_WAY, abs=1.0)
    # FaB: 4 steps.
    assert measured["fab"] == pytest.approx(4 * ONE_WAY, abs=1.0)
    # Zyzzyva: 3 steps (client remote from primary).
    assert measured["zyzzyva"] == pytest.approx(3 * ONE_WAY, abs=1.0)
    # ezBFT: 3 steps but the first is intra-region (~0): ~2 x 10ms.
    assert measured["ezbft"] == pytest.approx(2 * ONE_WAY, abs=1.0)
    # ezBFT slow path: +2 steps over its fast path.
    assert measured["ezbft-slow"] == pytest.approx(
        measured["ezbft"] + 2 * ONE_WAY, abs=2.0)
