"""Figure 5a: Experiment 2 -- Ohio, Ireland, Frankfurt, Mumbai with the
primary in Ireland (Zyzzyva's best case).

Paper claim: with overlapping European paths, Zyzzyva-at-Ireland is
close to ezBFT; PBFT and FaB remain strictly slower.
"""

import pytest

from repro.sim.latency import EXPERIMENT2

from bench_util import (
    EXP2_REGIONS,
    fmt_ms,
    print_table,
    region_means,
    run_closed_loop,
)


def run_fig5a():
    results = {}
    for protocol in ("pbft", "fab", "zyzzyva"):
        cluster = run_closed_loop(protocol, regions=EXP2_REGIONS,
                                  latency=EXPERIMENT2,
                                  primary_region="ireland",
                                  requests_per_client=6)
        results[protocol] = region_means(cluster.recorder)
    cluster = run_closed_loop("ezbft", regions=EXP2_REGIONS,
                              latency=EXPERIMENT2,
                              requests_per_client=6)
    results["ezbft"] = region_means(cluster.recorder)
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5a_experiment2(benchmark):
    results = benchmark.pedantic(run_fig5a, rounds=1, iterations=1)

    columns = ["series"] + EXP2_REGIONS
    rows = [[name] + [fmt_ms(results[name][region])
                      for region in EXP2_REGIONS]
            for name in ("pbft", "fab", "zyzzyva", "ezbft")]
    print_table("Figure 5a: Experiment 2 latencies (ms), primary in "
                "Ireland", columns, rows)

    # PBFT > FaB everywhere (5 vs 4 steps, same f+1 reply quorum).
    for region in EXP2_REGIONS:
        assert results["pbft"][region] > results["fab"][region], region
    # Zyzzyva beats PBFT near the primary, where its 2-step saving
    # dominates.  NOTE (documented in EXPERIMENTS.md):
    # Zyzzyva's fast path waits for ALL 3f+1 responses and is therefore
    # bound by the slowest replica, while PBFT/FaB clients return after
    # f+1 replies -- with Experiment 2's overlapping paths that lets
    # 4-step FaB undercut 3-step Zyzzyva in our step-latency model,
    # unlike the paper's testbed measurement where FaB's extra
    # processing kept it above Zyzzyva.
    for region in ("ireland", "frankfurt"):
        assert results["zyzzyva"][region] < results["pbft"][region], \
            region

    # Zyzzyva's best case: close to ezBFT on average (the paper's
    # "EZBFT performs very similar to Zyzzyva").
    gaps = [(results["zyzzyva"][r] - results["ezbft"][r]) /
            results["zyzzyva"][r] for r in EXP2_REGIONS]
    mean_gap = sum(gaps) / len(gaps)
    assert mean_gap < 0.25
    # And ezBFT is never worse.
    for region in EXP2_REGIONS:
        assert results["ezbft"][region] <= \
            results["zyzzyva"][region] * 1.05, region
