"""Figure 4: Experiment 1 -- average client latency per region.

Deployment: replicas in Virginia, Tokyo (Japan), Mumbai (India), Sydney
(Australia); one closed-loop client per region.  Primary-based protocols
(PBFT, FaB, Zyzzyva) have their primary in Virginia; ezBFT clients use
their local replica.  ezBFT is measured at 0%, 2%, 50% and 100%
contention.

The figure's seven bars are one zipped :class:`~repro.sweep.SweepSpec`
axis block: protocol, contention, and primary placement travel in
lockstep, one cell per bar.

Paper's qualitative claims re-checked here:
  1. PBFT > FaB > Zyzzyva in every region (5 vs 4 vs 3 steps);
  2. ezBFT@0% ~= Zyzzyva in Virginia (both local to the primary);
  3. ezBFT@0% < Zyzzyva in all remote regions (first hop is local);
  4. ezBFT@<=50% stays at or below Zyzzyva;
  5. ezBFT@100% approaches PBFT's five-step latency.
"""

import pytest

from bench_util import (
    EXP1_REGIONS,
    assert_all_delivered,
    fmt_ms,
    print_table,
    report_region_means,
)
from repro.scenario import Scenario, WorkloadSpec
from repro.sweep import SweepRunner, SweepSpec

#: Approximate values read off the paper's Figure 4 bars (ms).
PAPER_FIG4 = {
    "pbft": {"virginia": 398, "tokyo": 450, "mumbai": 490,
             "sydney": 503},
    "fab": {"virginia": 296, "tokyo": 340, "mumbai": 403, "sydney": 407},
    "zyzzyva": {"virginia": 198, "tokyo": 236, "mumbai": 304,
                "sydney": 303},
    "ezbft-0": {"virginia": 198, "tokyo": 151, "mumbai": 224,
                "sydney": 225},
}

REQUESTS_PER_CLIENT = 6

FIG4_SWEEP = SweepSpec(
    base=Scenario(
        name="fig4",
        replica_regions=tuple(EXP1_REGIONS),
        latency="experiment1",
        workload=WorkloadSpec(mode="closed",
                              requests_per_client=REQUESTS_PER_CLIENT),
    ),
    zipped={
        "protocol": ("pbft", "fab", "zyzzyva",
                     "ezbft", "ezbft", "ezbft", "ezbft"),
        "contention": (0.0, 0.0, 0.0, 0.0, 0.02, 0.5, 1.0),
        "primary_region": ("virginia", "virginia", "virginia",
                           None, None, None, None),
    },
)


def _label(params):
    if params["protocol"] != "ezbft":
        return params["protocol"]
    return f"ezbft-{int(params['contention'] * 100)}"


def run_fig4():
    sweep_report = SweepRunner().run(FIG4_SWEEP)
    results = {}
    for cell in sweep_report.cells:
        params = cell.param_dict
        assert_all_delivered(
            cell.report, len(EXP1_REGIONS) * REQUESTS_PER_CLIENT)
        label = _label(params)
        results[label] = report_region_means(cell.report)
        if params["protocol"] == "ezbft":
            results[label + "/fast-fraction"] = {
                "all": cell.report.fast_path_ratio}
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_experiment1(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    series = ["pbft", "fab", "zyzzyva", "ezbft-0", "ezbft-2",
              "ezbft-50", "ezbft-100"]
    columns = ["series"] + EXP1_REGIONS
    rows = []
    for name in series:
        rows.append([name] + [fmt_ms(results[name][region])
                              for region in EXP1_REGIONS])
    print_table("Figure 4: Experiment 1 latencies (ms), primary in "
                "Virginia", columns, rows)
    print(f"ezBFT fast-path fraction: "
          f"0%: {results['ezbft-0/fast-fraction']['all']:.2f}  "
          f"2%: {results['ezbft-2/fast-fraction']['all']:.2f}  "
          f"50%: {results['ezbft-50/fast-fraction']['all']:.2f}  "
          f"100%: {results['ezbft-100/fast-fraction']['all']:.2f}")

    # Claim 1: step-count ordering everywhere.
    for region in EXP1_REGIONS:
        assert results["pbft"][region] > results["fab"][region] > \
            results["zyzzyva"][region], region

    # Claim 2: parity in the primary's region.
    assert results["ezbft-0"]["virginia"] == pytest.approx(
        results["zyzzyva"]["virginia"], rel=0.10)

    # Claim 3: strictly better in remote regions.
    for region in ("tokyo", "mumbai", "sydney"):
        assert results["ezbft-0"][region] < results["zyzzyva"][region]

    # Claim 4: still competitive at 50% contention (paper: "as good as
    # or better than Zyzzyva for up to 50% contention" on average).
    ez50 = sum(results["ezbft-50"][r] for r in EXP1_REGIONS) / 4
    zyz = sum(results["zyzzyva"][r] for r in EXP1_REGIONS) / 4
    assert ez50 <= zyz * 1.15

    # Claim 5: at 100% contention, latency degrades toward PBFT.
    ez100 = sum(results["ezbft-100"][r] for r in EXP1_REGIONS) / 4
    ez0 = sum(results["ezbft-0"][r] for r in EXP1_REGIONS) / 4
    pbft = sum(results["pbft"][r] for r in EXP1_REGIONS) / 4
    assert ez100 > 1.3 * ez0
    assert ez100 == pytest.approx(pbft, rel=0.5)

    # Absolute sanity vs paper bars for the primary-based protocols.
    for protocol in ("zyzzyva",):
        for region in EXP1_REGIONS:
            assert results[protocol][region] == pytest.approx(
                PAPER_FIG4[protocol][region], rel=0.3), (protocol,
                                                         region)
