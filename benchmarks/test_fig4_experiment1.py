"""Figure 4: Experiment 1 -- average client latency per region.

Deployment: replicas in Virginia, Tokyo (Japan), Mumbai (India), Sydney
(Australia); one closed-loop client per region.  Primary-based protocols
(PBFT, FaB, Zyzzyva) have their primary in Virginia; ezBFT clients use
their local replica.  ezBFT is measured at 0%, 2%, 50% and 100%
contention.

Paper's qualitative claims re-checked here:
  1. PBFT > FaB > Zyzzyva in every region (5 vs 4 vs 3 steps);
  2. ezBFT@0% ~= Zyzzyva in Virginia (both local to the primary);
  3. ezBFT@0% < Zyzzyva in all remote regions (first hop is local);
  4. ezBFT@<=50% stays at or below Zyzzyva;
  5. ezBFT@100% approaches PBFT's five-step latency.
"""

import pytest

from bench_util import (
    EXP1_REGIONS,
    fmt_ms,
    print_table,
    region_means,
    run_closed_loop,
)

#: Approximate values read off the paper's Figure 4 bars (ms).
PAPER_FIG4 = {
    "pbft": {"virginia": 398, "tokyo": 450, "mumbai": 490,
             "sydney": 503},
    "fab": {"virginia": 296, "tokyo": 340, "mumbai": 403, "sydney": 407},
    "zyzzyva": {"virginia": 198, "tokyo": 236, "mumbai": 304,
                "sydney": 303},
    "ezbft-0": {"virginia": 198, "tokyo": 151, "mumbai": 224,
                "sydney": 225},
}


def run_fig4():
    results = {}
    for protocol in ("pbft", "fab", "zyzzyva"):
        cluster = run_closed_loop(protocol, primary_region="virginia",
                                  requests_per_client=6)
        results[protocol] = region_means(cluster.recorder)
    for contention in (0.0, 0.02, 0.5, 1.0):
        cluster = run_closed_loop("ezbft", contention=contention,
                                  requests_per_client=6)
        label = f"ezbft-{int(contention * 100)}"
        results[label] = region_means(cluster.recorder)
        results[label + "/fast-fraction"] = {
            "all": cluster.recorder.fast_path_fraction()}
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_experiment1(benchmark):
    results = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    series = ["pbft", "fab", "zyzzyva", "ezbft-0", "ezbft-2",
              "ezbft-50", "ezbft-100"]
    columns = ["series"] + EXP1_REGIONS
    rows = []
    for name in series:
        rows.append([name] + [fmt_ms(results[name][region])
                              for region in EXP1_REGIONS])
    print_table("Figure 4: Experiment 1 latencies (ms), primary in "
                "Virginia", columns, rows)
    print(f"ezBFT fast-path fraction: "
          f"0%: {results['ezbft-0/fast-fraction']['all']:.2f}  "
          f"2%: {results['ezbft-2/fast-fraction']['all']:.2f}  "
          f"50%: {results['ezbft-50/fast-fraction']['all']:.2f}  "
          f"100%: {results['ezbft-100/fast-fraction']['all']:.2f}")

    # Claim 1: step-count ordering everywhere.
    for region in EXP1_REGIONS:
        assert results["pbft"][region] > results["fab"][region] > \
            results["zyzzyva"][region], region

    # Claim 2: parity in the primary's region.
    assert results["ezbft-0"]["virginia"] == pytest.approx(
        results["zyzzyva"]["virginia"], rel=0.10)

    # Claim 3: strictly better in remote regions.
    for region in ("tokyo", "mumbai", "sydney"):
        assert results["ezbft-0"][region] < results["zyzzyva"][region]

    # Claim 4: still competitive at 50% contention (paper: "as good as
    # or better than Zyzzyva for up to 50% contention" on average).
    ez50 = sum(results["ezbft-50"][r] for r in EXP1_REGIONS) / 4
    zyz = sum(results["zyzzyva"][r] for r in EXP1_REGIONS) / 4
    assert ez50 <= zyz * 1.15

    # Claim 5: at 100% contention, latency degrades toward PBFT.
    ez100 = sum(results["ezbft-100"][r] for r in EXP1_REGIONS) / 4
    ez0 = sum(results["ezbft-0"][r] for r in EXP1_REGIONS) / 4
    pbft = sum(results["pbft"][r] for r in EXP1_REGIONS) / 4
    assert ez100 > 1.3 * ez0
    assert ez100 == pytest.approx(pbft, rel=0.5)

    # Absolute sanity vs paper bars for the primary-based protocols.
    for protocol in ("zyzzyva",):
        for region in EXP1_REGIONS:
            assert results[protocol][region] == pytest.approx(
                PAPER_FIG4[protocol][region], rel=0.3), (protocol,
                                                         region)
