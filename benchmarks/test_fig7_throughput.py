"""Figure 7: peak server-side throughput.

Paper deployment: Experiment-1 regions; open-loop clients (send without
waiting), 8-byte keys / 16-byte values, 0% contention, no batching.
Five bars: PBFT, FaB, Zyzzyva, ezBFT with clients only at US-East-1,
and ezBFT with clients at every region.

Paper claims: with US-only clients ezBFT performs at par or slightly
better than the others; with clients at every region ezBFT's throughput
increases by as much as ~4x because every replica feeds requests into
the system concurrently.
"""

import pytest

from bench_util import (
    EXP1_REGIONS,
    print_table,
    run_open_loop,
)

#: Enough offered load to saturate a single ordering replica.
RATE_PER_CLIENT = 100.0
CLIENTS_PER_REGION = 10
DURATION_MS = 2000.0


def run_fig7():
    results = {}
    for protocol in ("pbft", "fab", "zyzzyva"):
        cluster = run_open_loop(protocol, primary_region="virginia",
                                client_regions=("virginia",),
                                clients_per_region=CLIENTS_PER_REGION,
                                rate_per_client=RATE_PER_CLIENT,
                                duration_ms=DURATION_MS)
        results[protocol] = cluster.recorder.throughput_per_sec()
    cluster = run_open_loop("ezbft", client_regions=("virginia",),
                            clients_per_region=CLIENTS_PER_REGION,
                            rate_per_client=RATE_PER_CLIENT,
                            duration_ms=DURATION_MS)
    results["ezbft (US only)"] = cluster.recorder.throughput_per_sec()
    cluster = run_open_loop("ezbft", client_regions=tuple(EXP1_REGIONS),
                            clients_per_region=CLIENTS_PER_REGION,
                            rate_per_client=RATE_PER_CLIENT,
                            duration_ms=DURATION_MS)
    results["ezbft (all regions)"] = \
        cluster.recorder.throughput_per_sec()
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_throughput(benchmark):
    results = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    rows = [[name, f"{tput:8.0f}"] for name, tput in results.items()]
    print_table("Figure 7: peak throughput (requests/second)",
                ["protocol", "req/s"], rows)

    pbft = results["pbft"]
    fab = results["fab"]
    zyzzyva = results["zyzzyva"]
    ez_us = results["ezbft (US only)"]
    ez_all = results["ezbft (all regions)"]

    # US-only: ezBFT at par or slightly better than the others.
    assert ez_us >= 0.9 * max(pbft, fab, zyzzyva)

    # All-region clients: throughput increases "by as much as four
    # times" over the single-feed configuration.
    gain = ez_all / ez_us
    print(f"all-region gain over US-only: {gain:.2f}x")
    assert gain >= 2.5
    assert ez_all > 2.5 * max(pbft, fab, zyzzyva)

    # The leaderless configuration spreads the load: no single replica
    # should have done ~all the ordering work (sanity via recorder).
    # (Checked implicitly by the gain: a single bottleneck cannot give
    # a >2.5x gain.)
