"""Batching ablation: open-loop throughput as a function of batch size.

Not a paper figure -- the paper evaluates all protocols *without*
batching (its Section V setup) -- but batching is the standard BFT
throughput lever (PBFT and Zyzzyva both amortize one signature/ordering
step over many requests), so this ablation quantifies what the repo's
batching pipeline buys on top of the paper's configuration.

Setup: the Figure-7 throughput methodology (Experiment-1 regions,
open-loop clients at US-East only, 0% contention, default CpuModel) with
the full batching pipeline enabled end-to-end: clients pack commands
into one signed BatchRequest, and the ordering point (ezBFT owner /
PBFT primary) flushes batched proposals.  ``batch_size=1`` degrades to
the classic unbatched protocol on every path, so it IS the baseline.

Expectation: the client-facing signature verification (~20 cpu units)
dominates the ordering replica's ingress cost, so amortizing it over a
batch should scale ezBFT throughput super-linearly at first --
``batch_size=8`` must deliver at least 2x the unbatched baseline.
"""

import pytest

from bench_util import print_table, run_open_loop_batched

BATCH_SIZES = (1, 2, 4, 8)
#: Offered load well above the unbatched service rate (~580 req/s for
#: the ezBFT owner at 20 units/request) so the ordering replica is the
#: bottleneck at every batch size.
CLIENTS = 8
RATE_PER_CLIENT = 400.0
DURATION_MS = 1500.0


def run_sweep():
    results = {}
    for protocol in ("ezbft", "pbft"):
        for batch_size in BATCH_SIZES:
            cluster = run_open_loop_batched(
                protocol,
                batch_size=batch_size,
                primary_region="virginia",
                client_regions=("virginia",),
                clients_per_region=CLIENTS,
                rate_per_client=RATE_PER_CLIENT,
                duration_ms=DURATION_MS)
            results[(protocol, batch_size)] = \
                cluster.recorder.throughput_per_sec()
    return results


@pytest.mark.benchmark(group="batching")
def test_batching_ablation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for protocol in ("ezbft", "pbft"):
        baseline = results[(protocol, 1)]
        for batch_size in BATCH_SIZES:
            tput = results[(protocol, batch_size)]
            rows.append([protocol, batch_size, f"{tput:8.0f}",
                         f"{tput / baseline:5.2f}x"])
    print_table("Batching ablation: open-loop throughput "
                "(requests/second)",
                ["protocol", "batch", "req/s", "vs batch=1"], rows)

    # The headline claim: amortizing one client signature over 8
    # commands at least doubles ezBFT's ingestion-bound throughput.
    ez_gain = results[("ezbft", 8)] / results[("ezbft", 1)]
    assert ez_gain >= 2.0, f"ezbft batch=8 gain only {ez_gain:.2f}x"

    # Batching must never hurt: throughput is monotone (within noise)
    # in batch size for both batching-capable protocols.
    for protocol in ("ezbft", "pbft"):
        for small, large in zip(BATCH_SIZES, BATCH_SIZES[1:]):
            assert results[(protocol, large)] >= \
                0.9 * results[(protocol, small)], (
                    f"{protocol} throughput regressed from batch="
                    f"{small} to batch={large}")

    # PBFT's primary also amortizes its ordering step.
    pbft_gain = results[("pbft", 8)] / results[("pbft", 1)]
    assert pbft_gain >= 1.3, f"pbft batch=8 gain only {pbft_gain:.2f}x"
