"""Ablations on ezBFT's design choices (DESIGN.md section 3).

1. **Interference relation granularity** -- ezBFT's commutativity-aware
   relation vs Q/U-style read/write conflicts: commuting increments stay
   on the fast path under the fine relation but conflict under the
   coarse one (the paper's Section VI comparison with Q/U).
2. **Nearest-replica targeting** -- what the leaderless design buys: the
   same ezBFT protocol with clients pinned to one fixed replica loses
   the first-hop saving.
3. **Contention sweep** -- fast-path fraction and latency as contention
   grows, quantifying the fast/slow-path trade-off of Table II.
"""

import pytest

from repro.cluster.builder import build_cluster
from repro.sim.latency import EXPERIMENT1
from repro.statemachine.interference import (
    KVInterference,
    ReadWriteInterference,
)
from repro.workload.drivers import ClosedLoopDriver
from repro.workload.generator import KVWorkload

from bench_util import (
    EXP1_REGIONS,
    fmt_ms,
    print_table,
    run_closed_loop,
)


def run_incr_workload(interference):
    """Four clients concurrently incrementing the same counter."""
    cluster = build_cluster("ezbft", EXP1_REGIONS, EXPERIMENT1,
                            interference=interference,
                            slow_path_timeout=400.0)
    done = []
    for i, region in enumerate(EXP1_REGIONS):
        state = {"left": 4, "client": None}

        def on_delivery(command, result, latency, path, state=state):
            state["left"] -= 1
            client = state["client"]
            if state["left"] > 0:
                client.submit(client.next_command("incr", "counter", 1))
            else:
                done.append(client.client_id)

        client = cluster.add_client(f"c{i}", region,
                                    on_delivery=on_delivery)
        state["client"] = client
        client.submit(client.next_command("incr", "counter", 1))
    cluster.run_until_idle()
    assert len(done) == 4
    return cluster


def run_ablations():
    results = {}

    # 1. Interference granularity with commuting increments.
    fine = run_incr_workload(KVInterference())
    coarse = run_incr_workload(ReadWriteInterference())
    results["incr-fine"] = (fine.recorder.fast_path_fraction(),
                            fine.recorder.overall().mean)
    results["incr-coarse"] = (coarse.recorder.fast_path_fraction(),
                              coarse.recorder.overall().mean)
    # Counter must equal 16 under both relations at every replica.
    for cluster in (fine, coarse):
        for replica in cluster.replicas.values():
            value = replica.statemachine.get_final("counter")
            assert value == 16, value

    # 2. Nearest-replica targeting vs pinned-to-one-replica.
    nearest = run_closed_loop("ezbft", requests_per_client=5)
    cluster = build_cluster("ezbft", EXP1_REGIONS, EXPERIMENT1)
    drivers = []
    for i, region in enumerate(EXP1_REGIONS):
        client = cluster.add_client(f"c{i}", region,
                                    target_replica="r0")  # pinned
        drivers.append(ClosedLoopDriver(
            client, KVWorkload(f"c{i}", seed=i), num_requests=5))
    for driver in drivers:
        driver.start()
    cluster.run_until_idle()
    results["nearest"] = nearest.recorder.overall().mean
    results["pinned"] = cluster.recorder.overall().mean

    # 3. Contention sweep.
    sweep = {}
    for contention in (0.0, 0.1, 0.25, 0.5, 0.75, 1.0):
        run = run_closed_loop("ezbft", contention=contention,
                              clients_per_region=2,
                              requests_per_client=4)
        sweep[contention] = (run.recorder.fast_path_fraction(),
                             run.recorder.overall().mean)
    results["sweep"] = sweep
    return results


@pytest.mark.benchmark(group="ablations")
def test_ablations(benchmark):
    results = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    fine_fast, fine_lat = results["incr-fine"]
    coarse_fast, coarse_lat = results["incr-coarse"]
    print_table(
        "Ablation 1: interference granularity (4 clients x 4 incrs on "
        "one counter)",
        ["relation", "fast-path fraction", "mean latency"],
        [["commutativity-aware (ezBFT)", f"{fine_fast:.2f}",
          fmt_ms(fine_lat)],
         ["read/write (Q/U-style)", f"{coarse_fast:.2f}",
          fmt_ms(coarse_lat)]])
    # The fine relation keeps commuting increments on the fast path.
    assert fine_fast > coarse_fast
    assert fine_lat < coarse_lat

    print_table(
        "Ablation 2: nearest-replica targeting",
        ["client targeting", "mean latency"],
        [["nearest replica (leaderless)", fmt_ms(results["nearest"])],
         ["pinned to r0 (primary-like)", fmt_ms(results["pinned"])]])
    assert results["nearest"] < results["pinned"]

    rows = [[f"{int(c * 100)}%", f"{fast:.2f}", fmt_ms(lat)]
            for c, (fast, lat) in results["sweep"].items()]
    print_table("Ablation 3: contention sweep (2 clients/region)",
                ["contention", "fast fraction", "mean latency"], rows)
    sweep = results["sweep"]
    assert sweep[0.0][0] == pytest.approx(1.0)
    assert sweep[1.0][0] < 0.3
    assert sweep[1.0][1] > sweep[0.0][1]
