"""Table I: Zyzzyva's client-side latency in the Experiment-1 geo
deployment, sweeping the primary across all four regions.

Paper values (ms), columns = primary location, rows = client location::

              Virginia  Japan  India  Australia
    Virginia       198    238    306        303
    Japan          236    167    239        246
    India          304    242    229        305
    Australia      303    232    304        229

The diagonal (client co-located with the primary) is the per-primary
minimum -- that is the qualitative claim this benchmark re-checks.
"""

import pytest

from bench_util import (
    EXP1_REGIONS,
    fmt_ms,
    print_table,
    region_means,
    run_closed_loop,
)

PAPER_TABLE1 = {
    # (client, primary) -> paper ms
    ("virginia", "virginia"): 198, ("virginia", "tokyo"): 238,
    ("virginia", "mumbai"): 306, ("virginia", "sydney"): 303,
    ("tokyo", "virginia"): 236, ("tokyo", "tokyo"): 167,
    ("tokyo", "mumbai"): 239, ("tokyo", "sydney"): 246,
    ("mumbai", "virginia"): 304, ("mumbai", "tokyo"): 242,
    ("mumbai", "mumbai"): 229, ("mumbai", "sydney"): 305,
    ("sydney", "virginia"): 303, ("sydney", "tokyo"): 232,
    ("sydney", "mumbai"): 304, ("sydney", "sydney"): 229,
}


def run_table1():
    measured = {}
    for primary in EXP1_REGIONS:
        cluster = run_closed_loop("zyzzyva", primary_region=primary,
                                  requests_per_client=6)
        for client_region, mean in region_means(
                cluster.recorder).items():
            measured[(client_region, primary)] = mean
    return measured


@pytest.mark.benchmark(group="table1")
def test_table1_zyzzyva_primary_sweep(benchmark):
    measured = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    columns = ["client \\ primary"] + EXP1_REGIONS
    rows = []
    for client_region in EXP1_REGIONS:
        row = [client_region]
        for primary in EXP1_REGIONS:
            sim = measured[(client_region, primary)]
            paper = PAPER_TABLE1[(client_region, primary)]
            row.append(f"{sim:6.0f} (paper {paper})")
        rows.append(row)
    print_table("Table I: Zyzzyva latency (ms), primary swept",
                columns, rows)

    # Shape check 1: co-located client is the minimum for each primary.
    for primary in EXP1_REGIONS:
        colocated = measured[(primary, primary)]
        for client_region in EXP1_REGIONS:
            assert colocated <= measured[(client_region, primary)] + 1e-6

    # Shape check 2: within 25% of the paper's absolute numbers.
    for key, paper in PAPER_TABLE1.items():
        assert measured[key] == pytest.approx(paper, rel=0.25), key
