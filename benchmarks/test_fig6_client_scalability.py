"""Figure 6: client scalability -- per-region latency as the number of
closed-loop clients per region grows.

Paper deployment: Virginia, Japan (Tokyo), Mumbai, Australia (Sydney);
clients per region swept 1..100; Zyzzyva primary in Virginia; ezBFT at
50% contention.

Paper claims: Zyzzyva's latency explodes as it approaches ~100 clients
per region (every request funnels through one primary, whose CPU
saturates on client-facing work), while ezBFT -- even at 50% contention
-- stays fairly flat because each region's replica absorbs its own
clients (the paper highlights Mumbai staying stable).

The grid is one :class:`~repro.sweep.SweepSpec`: a cartesian ``clients``
axis times a zipped protocol block (each protocol travels with its own
primary placement, contention, and slow-path timeout), exactly the
methodology knobs the figure varies.
"""

import pytest

from bench_util import (
    EXP1_REGIONS,
    assert_all_delivered,
    fmt_ms,
    print_table,
    report_region_means,
)
from repro.scenario import Scenario, WorkloadSpec
from repro.sweep import SweepRunner, SweepSpec

CLIENT_COUNTS = (1, 10, 25, 100)
REQUESTS_PER_CLIENT = 3

FIG6_SWEEP = SweepSpec(
    base=Scenario(
        name="fig6",
        replica_regions=tuple(EXP1_REGIONS),
        latency="experiment1",
        workload=WorkloadSpec(mode="closed",
                              requests_per_client=REQUESTS_PER_CLIENT),
    ),
    grid={"clients": CLIENT_COUNTS},
    zipped={
        "protocol": ("zyzzyva", "ezbft"),
        "primary_region": ("virginia", None),
        "contention": (0.0, 0.5),
        "slow_path_timeout": (400.0, 600.0),
    },
)


def run_fig6():
    sweep_report = SweepRunner().run(FIG6_SWEEP)
    results = {}
    for cell in sweep_report.cells:
        params = cell.param_dict
        assert_all_delivered(
            cell.report,
            len(EXP1_REGIONS) * params["clients"] * REQUESTS_PER_CLIENT)
        results[(params["protocol"], params["clients"])] = \
            report_region_means(cell.report)
    return results


@pytest.mark.benchmark(group="fig6")
def test_fig6_client_scalability(benchmark):
    results = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    columns = (["series / clients-per-region"] +
               [str(c) for c in CLIENT_COUNTS])
    rows = []
    for protocol in ("zyzzyva", "ezbft"):
        for region in EXP1_REGIONS:
            rows.append(
                [f"{protocol:8s} {region}"] +
                [fmt_ms(results[(protocol, c)][region])
                 for c in CLIENT_COUNTS])
    print_table("Figure 6: latency (ms) vs clients per region "
                "(Zyzzyva primary=Virginia, ezBFT@50% contention)",
                columns, rows)

    def avg(protocol, count):
        return sum(results[(protocol, count)][r]
                   for r in EXP1_REGIONS) / len(EXP1_REGIONS)

    z_small, z_large = avg("zyzzyva", 1), avg("zyzzyva",
                                              CLIENT_COUNTS[-1])
    e_small, e_large = avg("ezbft", 1), avg("ezbft", CLIENT_COUNTS[-1])
    print(f"zyzzyva: {z_small:.0f} -> {z_large:.0f} ms "
          f"({z_large / z_small:.1f}x)")
    print(f"ezbft:   {e_small:.0f} -> {e_large:.0f} ms "
          f"({e_large / e_small:.1f}x)")

    # Zyzzyva degrades substantially with client count (closed-loop
    # equilibrium: RTT ~= N_clients x per-request CPU at the primary)...
    assert z_large > 1.8 * z_small
    # ...while ezBFT stays comparatively flat...
    assert (e_large / e_small) < 0.75 * (z_large / z_small)
    # ...and is absolutely faster at the top of the sweep.
    assert e_large < 0.85 * z_large

    # The paper calls out Mumbai specifically: stable under load.
    mumbai_growth = (results[("ezbft", CLIENT_COUNTS[-1])]["mumbai"] /
                     results[("ezbft", 1)]["mumbai"])
    zyz_mumbai_growth = (
        results[("zyzzyva", CLIENT_COUNTS[-1])]["mumbai"] /
        results[("zyzzyva", 1)]["mumbai"])
    assert mumbai_growth < zyz_mumbai_growth
