#!/usr/bin/env python3
"""Run a scenario over real TCP sockets on localhost.

Everything else in this repository drives the protocol objects with the
deterministic simulator; the TCP backend wires the *same* replica and
client classes to the asyncio transport: replicas listening on
OS-assigned localhost ports, clients dialing them, real length-prefixed
JSON frames on real sockets.  The Scenario API makes the backend a
one-word switch -- the spec below is identical to a simulator run.

Run:  python examples/asyncio_cluster.py
"""

from repro import ScenarioRunner, preset


def main() -> None:
    scenario = preset("smoke")
    print(f"running preset {scenario.name!r} "
          f"({scenario.workload.clients_per_region * 4} clients x "
          f"{scenario.workload.requests_per_client} requests) over "
          f"real TCP sockets...\n")

    report = ScenarioRunner(backend="tcp").run(scenario)
    print(report.format_text())

    expected = (scenario.workload.clients_per_region *
                len(scenario.client_regions()) *
                scenario.workload.requests_per_client)
    assert report.delivered == expected, (report.delivered, expected)
    assert report.fast_path_ratio == 1.0  # healthy LAN: all fast path
    print(f"\n{report.network['frames_received']} TCP frames received "
          f"across the cluster; every request committed on the fast "
          f"path in {report.duration_ms:.0f}ms wall time.")

    # The same spec runs on all four protocols -- over sockets -- by
    # swapping one field (the registry supplies the wiring):
    for protocol in ("pbft", "zyzzyva", "fab"):
        variant = scenario.with_overrides(
            protocol=protocol, name=f"smoke-{protocol}")
        result = ScenarioRunner(backend="tcp").run(variant)
        print(f"{protocol:10s} delivered {result.delivered} requests, "
              f"mean {result.latency.mean:.1f}ms over TCP")


if __name__ == "__main__":
    main()
