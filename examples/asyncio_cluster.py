#!/usr/bin/env python3
"""Run ezBFT over real TCP sockets on localhost.

Everything else in this repository drives the protocol objects with the
deterministic simulator; this example wires the *same* replica and
client classes to the asyncio TCP transport: four replicas listening on
localhost ports, a client dialing them, real length-prefixed JSON frames
on real sockets.

Run:  python examples/asyncio_cluster.py
"""

import asyncio

from repro.transport.asyncio_tcp import AsyncioCluster


async def main() -> None:
    cluster = AsyncioCluster(num_replicas=4)
    await cluster.start()
    print(f"started {len(cluster.replicas)} ezBFT replicas on "
          f"localhost ports "
          f"{[addr[1] for addr in list(cluster.addresses.values())[:4]]}")

    client = await cluster.add_client("c0")
    print(f"client c0 targets {client.target_replica}\n")

    operations = [
        ("put", "greeting", "hello over TCP"),
        ("get", "greeting", None),
        ("incr", "counter", 7),
        ("incr", "counter", 35),
        ("get", "counter", None),
    ]
    for op, key, value in operations:
        result, latency, path = await cluster.request(
            client, op, key, value)
        print(f"{op:5s} {key:10s} -> {str(result):18s} "
              f"{latency:7.2f}ms  [{path}]")

    # All four replicas converged on the same state.
    states = [replica.statemachine.final_items()
              for replica in cluster.replicas.values()]
    assert all(s == states[0] for s in states), states
    print(f"\nreplicated state on all 4 replicas: {states[0]}")

    totals = {rid: node.frames_received
              for rid, node in cluster.nodes.items()}
    print(f"frames received per node: {totals}")
    await cluster.stop()


if __name__ == "__main__":
    asyncio.run(main())
