#!/usr/bin/env python3
"""Sweep engine: reproduce a (scaled-down) Figure 6 in ~15 lines.

Figure 6 is a parameter sweep -- per-region latency as closed-loop
clients per region grow, Zyzzyva vs ezBFT -- and ``repro.sweep`` makes
such figures declarative: a base scenario, a cartesian ``clients``
axis, and a zipped protocol block whose knobs (primary placement,
contention, timeouts) travel in lockstep.  The same spec runs from the
shell::

    python -m repro sweep --preset smoke --grid clients=2,4 \
        --grid seed=1,2 --csv out.csv

Run:  python examples/sweep_figure6.py
"""

import os
import tempfile

from repro import Scenario, SweepRunner, SweepSpec, WorkloadSpec

FIG6 = SweepSpec(
    base=Scenario(
        name="fig6-example",
        replica_regions=("virginia", "tokyo", "mumbai", "sydney"),
        latency="experiment1",
        workload=WorkloadSpec(mode="closed", requests_per_client=3),
    ),
    grid={"clients": (1, 5, 10)},
    zipped={
        "protocol": ("zyzzyva", "ezbft"),
        "primary_region": ("virginia", None),
        "contention": (0.0, 0.5),
    },
)


def main() -> None:
    report = SweepRunner().run(FIG6)
    print(report.format_text())

    # Grouped mean curves: one line per protocol, the figure's shape.
    print("\nmean latency (ms) vs clients per region:")
    for protocol, points in report.series(
            "clients", y="latency_mean_ms",
            group_by="protocol").items():
        curve = "  ".join(f"{p.x:3d}: {p.mean:6.1f}" for p in points)
        print(f"  {protocol:8s} {curve}")

    # Tabular export: one CSV row per (cell, phase), stable columns.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-sweep-"),
                        "fig6.csv")
    report.to_csv(path)
    with open(path) as fh:
        lines = fh.read().strip().splitlines()
    print(f"\nwrote {path}: {len(lines) - 1} rows, "
          f"{len(lines[0].split(','))} columns")

    # At one client per region the leaderless fast path wins: remote
    # clients order through their local replica instead of a Virginia
    # primary.  (The full divergence -- Zyzzyva's primary saturating
    # toward 100 clients/region -- is the real benchmark's job:
    # benchmarks/test_fig6_client_scalability.py runs this same
    # SweepSpec shape at paper scale.)
    series = report.series("clients", y="latency_mean_ms",
                           group_by="protocol")
    zyz = series["zyzzyva"]
    ez = series["ezbft"]
    assert ez[0].mean < zyz[0].mean
    print(f"latency growth 1 -> {zyz[-1].x} clients/region: "
          f"zyzzyva {zyz[-1].mean / zyz[0].mean:.2f}x, "
          f"ezbft {ez[-1].mean / ez[0].mean:.2f}x")


if __name__ == "__main__":
    main()
