#!/usr/bin/env python3
"""Geo-distributed ordering service: what leaderless buys remote sites.

Four organizations (one per continent) run a permissioned ordering
service -- the Hyperledger-style scenario from the paper's
introduction.  One Scenario describes the deployment and workload; the
`with_overrides` hook swaps the protocol, so the ezBFT-vs-Zyzzyva
comparison is a two-line loop instead of two hand-wired scripts.

Run:  python examples/geo_ledger.py
"""

from repro import Scenario, ScenarioRunner, WorkloadSpec

REGIONS = ("virginia", "tokyo", "mumbai", "sydney")


def ledger_scenario() -> Scenario:
    return Scenario(
        name="geo-ledger",
        protocol="ezbft",
        replica_regions=REGIONS,
        latency="experiment1",
        # Every org's gateway submits to its local replica; ~10% of
        # transfers hit the shared clearing account (contended key).
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=10,
                              contention=0.10),
        primary_region="virginia",  # single-leader baselines only
        seed=21,
    )


def main() -> None:
    runner = ScenarioRunner()
    reports = {}
    for protocol in ("ezbft", "zyzzyva"):
        scenario = ledger_scenario().with_overrides(
            protocol=protocol, name=f"geo-ledger-{protocol}")
        reports[protocol] = runner.run(scenario)

    ez, zy = reports["ezbft"], reports["zyzzyva"]
    print("mean client latency per site (ms):")
    print(f"{'site':10s} {'ezbft':>8s} {'zyzzyva':>9s} {'saving':>8s}")
    print("-" * 40)
    ez_regions = ez.phases[0].per_region
    zy_regions = zy.phases[0].per_region
    for region in REGIONS:
        ez_mean = ez_regions[region].mean
        zy_mean = zy_regions[region].mean
        saving = (zy_mean - ez_mean) / zy_mean
        print(f"{region:10s} {ez_mean:8.1f} {zy_mean:9.1f} "
              f"{saving:7.0%}")

    print(f"\nezbft fast-path ratio: {ez.fast_path_ratio:.0%} "
          f"(interfering transfers are ordered, the rest commit in "
          f"three one-way delays)")
    # The leaderless protocol serves every remote site at local-quorum
    # latency; the primary-based baseline taxes everyone who is far
    # from Virginia.
    assert ez_regions["sydney"].mean < zy_regions["sydney"].mean


if __name__ == "__main__":
    main()
