#!/usr/bin/env python3
"""Geo-distributed permissioned ledger: the paper's motivating workload.

Four independent organizations (one per continent) run a permissioned
ordering service -- the Hyperledger-style scenario from the paper's
introduction.  Each organization's gateway submits transactions to its
*local* replica; ezBFT orders interfering transfers globally while
non-interfering ones commit on the three-step fast path.

The demo then repeats the workload on Zyzzyva with the primary pinned in
Virginia to show what the leaderless design buys the remote sites.

Run:  python examples/geo_ledger.py
"""

from collections import defaultdict

from repro import EXPERIMENT1, build_cluster

REGIONS = ["virginia", "tokyo", "mumbai", "sydney"]
ORGS = {
    "virginia": "BankOfVirginia",
    "tokyo": "TokyoTrust",
    "mumbai": "MumbaiMutual",
    "sydney": "SydneySavings",
}


def run_ledger(protocol: str) -> dict:
    cluster = build_cluster(protocol, REGIONS, EXPERIMENT1,
                            primary_region="virginia")
    latencies = defaultdict(list)
    clients = {}
    for region in REGIONS:
        org = ORGS[region]
        client = cluster.add_client(
            org, region,
            on_delivery=lambda cmd, res, lat, path, r=region:
                latencies[r].append((lat, path)))
        clients[region] = client

    # Round 1: every org credits its own settlement account --
    # disjoint keys, so under ezBFT all four commit on the fast path
    # concurrently.
    for region, client in clients.items():
        client.submit(client.next_command(
            "incr", f"balance/{ORGS[region]}", 1_000))
    cluster.run_until_idle()

    # Round 2: everyone pays into the shared clearing account --
    # interfering increments still commute under ezBFT's relation, so
    # they stay fast; a read then interferes and must be ordered.
    for client in clients.values():
        client.submit(client.next_command("incr", "balance/clearing",
                                          250))
    cluster.run_until_idle()
    auditor = clients["virginia"]
    auditor.submit(auditor.next_command("get", "balance/clearing"))
    cluster.run_until_idle()

    # Consistency across the four organizations' replicas.  ezBFT's
    # fast path finalizes via COMMITFAST; Zyzzyva's fast path leaves
    # state speculative until a later checkpoint, so compare the
    # speculative view there.
    if protocol == "ezbft":
        states = [kv.final_items()
                  for kv in cluster.kvstores().values()]
    else:
        states = [kv.speculative_items()
                  for kv in cluster.kvstores().values()]
    assert all(s == states[0] for s in states), "ledger diverged!"
    assert states[0]["balance/clearing"] == 1_000
    return {"latencies": latencies, "state": states[0]}


def main() -> None:
    print("ezBFT (leaderless) " + "=" * 42)
    ez = run_ledger("ezbft")
    print(f"{'site':10s} {'mean latency':>13s}  paths")
    for region in REGIONS:
        samples = ez["latencies"][region]
        mean = sum(lat for lat, _ in samples) / len(samples)
        paths = ",".join(path for _, path in samples)
        print(f"{region:10s} {mean:11.1f}ms  {paths}")

    print("\nZyzzyva (primary = Virginia) " + "=" * 32)
    zy = run_ledger("zyzzyva")
    print(f"{'site':10s} {'mean latency':>13s}")
    for region in REGIONS:
        samples = zy["latencies"][region]
        mean = sum(lat for lat, _ in samples) / len(samples)
        print(f"{region:10s} {mean:11.1f}ms")

    print("\nleaderless saving per remote site:")
    for region in REGIONS:
        ez_mean = sum(l for l, _ in ez["latencies"][region]) / \
            len(ez["latencies"][region])
        zy_mean = sum(l for l, _ in zy["latencies"][region]) / \
            len(zy["latencies"][region])
        saving = (zy_mean - ez_mean) / zy_mean
        print(f"  {region:10s} {saving:6.0%}")

    print(f"\nfinal ledger: {ez['state']}")


if __name__ == "__main__":
    main()
