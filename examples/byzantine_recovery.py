#!/usr/bin/env python3
"""Byzantine-failure walkthrough as declarative fault schedules
(paper Sections IV-D / IV-E).

Scenario 1 -- an equivocating command-leader: the Tokyo replica sends
conflicting SPECORDERs for the same request.  The client catches it
red-handed (the signed SPECORDERs become the proof of misbehavior), the
correct replicas freeze its instance space and hand it to the next
owner, and the client's commands still commit.

Scenario 2 -- a crash and recovery: the Tokyo replica fail-stops under
its own client's load, the retry -> RESENDREQ -> suspicion-timeout path
triggers an owner change, and the replica later rejoins.

Both are presets: the fault schedule is data (`SwapByzantine`,
`CrashReplica`, `RecoverReplica` events on a timeline), not bespoke
wiring, so the same specs run from the CLI:

    python -m repro run --preset equivocation
    python -m repro run --preset crash-recovery

Run:  python examples/byzantine_recovery.py
"""

from repro import ScenarioRunner, preset


def banner(text: str) -> None:
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def main() -> None:
    runner = ScenarioRunner()

    banner("Scenario 1: equivocating command-leader (r1, Tokyo)")
    report = runner.run(preset("equivocation"))
    print(report.format_text())
    print(f"\nproofs of misbehavior sent: "
          f"{report.client_stats['poms_sent']}")
    print(f"owner changes: {report.owner_changes}")
    assert report.delivered == 4          # every command still commits
    assert report.client_stats["poms_sent"] >= 1
    assert report.owner_changes >= 1      # r1's space changed hands

    banner("Scenario 2: crash (r1) -> owner change -> recover")
    report = runner.run(preset("crash-recovery"))
    print(report.format_text())
    assert report.delivered == 6
    assert report.owner_changes >= 1
    assert report.client_stats["retries"] >= 1
    # With one replica dead the 3f+1 fast quorum is unreachable: ezBFT
    # degrades gracefully to the 2f+1 slow path, like Zyzzyva.
    assert report.fast_path_ratio < 1.0

    print("\nboth fault schedules recovered with f=1 faulty replica, "
          "as the protocol guarantees for N=4.")


if __name__ == "__main__":
    main()
