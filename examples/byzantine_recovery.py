#!/usr/bin/env python3
"""Byzantine-failure walkthrough: equivocation, proof of misbehavior,
and the owner-change protocol (paper Sections IV-D / IV-E).

Scenario 1 -- an equivocating command-leader: the Tokyo replica sends
conflicting SPECORDERs for the same request.  The client catches it red-
handed (the signed SPECORDERs it equivocated with become the proof of
misbehavior), the correct replicas freeze its instance space and hand it
to the next replica, and the client's command still commits through a
correct leader.

Scenario 2 -- a crashed replica: the client's retry triggers the
RESENDREQ / suspicion-timeout path, the space is frozen, and the client
permanently fails over to a live replica.

Run:  python examples/byzantine_recovery.py
"""

from repro import EXPERIMENT1, build_cluster
from repro.byzantine import (
    EquivocatingLeaderReplica,
    SilentReplica,
    install_byzantine,
)

REGIONS = ["virginia", "tokyo", "mumbai", "sydney"]


def banner(text: str) -> None:
    print("\n" + "=" * 64)
    print(text)
    print("=" * 64)


def scenario_equivocation() -> None:
    banner("Scenario 1: equivocating command-leader (r1, Tokyo)")
    cluster = build_cluster("ezbft", REGIONS, EXPERIMENT1,
                            slow_path_timeout=300.0,
                            retry_timeout=900.0,
                            suspicion_timeout=400.0)
    install_byzantine(cluster, "r1", EquivocatingLeaderReplica)

    client = cluster.add_client("c0", region="tokyo")  # nearest = r1!
    outcome = []
    client.on_delivery = (lambda cmd, res, lat, path:
                          outcome.append((res, lat, path)))
    client.submit(client.next_command("put", "k", "v"))
    cluster.run_until_idle()

    result, latency, path = outcome[0]
    print(f"command delivered anyway: result={result!r} "
          f"after {latency:.0f}ms via the {path} path")
    print(f"proofs of misbehavior sent by the client: "
          f"{client.stats['poms_sent']}")
    print(f"client failed over from r1 to {client.target_replica}")
    for rid in ("r0", "r2", "r3"):
        space = cluster.replicas[rid].spaces["r1"]
        print(f"  at {rid}: r1's instance space frozen={space.frozen}, "
              f"owner number now {space.owner_number} "
              f"(owner: {cluster.config.owner_for_number(space.owner_number)})")
    states = [cluster.kvstores()[r].final_items()
              for r in ("r0", "r2", "r3")]
    assert all(s == {"k": "v"} for s in states)
    print("correct replicas consistent:", states[0])


def scenario_crash() -> None:
    banner("Scenario 2: crashed replica (r1, Tokyo) -- client failover")
    cluster = build_cluster("ezbft", REGIONS, EXPERIMENT1,
                            slow_path_timeout=300.0,
                            retry_timeout=900.0,
                            suspicion_timeout=400.0)
    install_byzantine(cluster, "r1", SilentReplica)

    client = cluster.add_client("c0", region="tokyo")
    outcome = []
    client.on_delivery = (lambda cmd, res, lat, path:
                          outcome.append((res, lat, path)))

    client.submit(client.next_command("put", "account", "funded"))
    cluster.run_until_idle()
    result, latency, path = outcome[0]
    print(f"first request: {latency:.0f}ms ({path} path, "
          f"{client.stats['retries']} retries) -- slow, the target was "
          "dead and the client had to time out and re-broadcast")

    client.submit(client.next_command("get", "account"))
    cluster.run_until_idle()
    result, latency, path = outcome[1]
    print(f"second request: {latency:.0f}ms ({path} path) -- the client "
          f"now talks to {client.target_replica} directly")
    print(f"read returned {result!r}")
    # With one replica dead, the 3f+1 fast quorum is unreachable: ezBFT
    # degrades gracefully to the 2f+1 slow path, like Zyzzyva.
    assert path == "slow"


def main() -> None:
    scenario_equivocation()
    scenario_crash()
    print("\nboth scenarios recovered with f=1 byzantine replica, as "
          "the protocol guarantees for N=4.")


if __name__ == "__main__":
    main()
