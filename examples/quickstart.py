#!/usr/bin/env python3
"""Quickstart: a 4-replica ezBFT deployment across four AWS regions.

Builds the paper's Experiment-1 topology on the deterministic WAN
simulator, runs a handful of reads and writes from a Tokyo client, and
prints the client-side latency and consensus path of each request.

Run:  python examples/quickstart.py
"""

from repro import EXPERIMENT1, build_cluster


def main() -> None:
    # One replica per region; latencies calibrated against the paper's
    # own Table I measurement.
    cluster = build_cluster(
        "ezbft",
        replica_regions=["virginia", "tokyo", "mumbai", "sydney"],
        latency=EXPERIMENT1,
    )

    # ezBFT is leaderless: the client just talks to its nearest replica
    # (Tokyo), which becomes the command-leader for its requests.
    client = cluster.add_client("alice", region="tokyo")
    print(f"client 'alice' (tokyo) targets replica "
          f"{client.target_replica} "
          f"({cluster.replica_regions[client.target_replica]})\n")

    deliveries = []
    client.on_delivery = (
        lambda cmd, result, latency, path:
        deliveries.append((cmd, result, latency, path)))

    operations = [
        ("put", "language", "python"),
        ("put", "paper", "ezBFT @ ICDCS 2019"),
        ("get", "language", None),
        ("incr", "visits", 1),
        ("incr", "visits", 41),
        ("get", "visits", None),
    ]
    for op, key, value in operations:
        client.submit(client.next_command(op, key, value))
        cluster.run_until_idle()  # deterministic: drains the WAN

    print(f"{'op':18s} {'result':22s} {'latency':>9s}  path")
    print("-" * 60)
    for command, result, latency, path in deliveries:
        op = f"{command.op} {command.key}"
        print(f"{op:18s} {str(result):22s} {latency:8.1f}ms  {path}")

    # Every replica holds the same final state.
    print("\nreplicated state (identical at all 4 replicas):")
    state = cluster.replicas["r0"].statemachine.final_items()
    for key, value in sorted(state.items()):
        print(f"  {key} = {value!r}")
    for rid, kv in cluster.kvstores().items():
        assert kv.final_items() == state, f"{rid} diverged!"
    print("\nall replicas consistent; "
          f"{cluster.network.messages_delivered} messages simulated in "
          f"{cluster.sim.now:.0f}ms of virtual time")


if __name__ == "__main__":
    main()
