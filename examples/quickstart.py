#!/usr/bin/env python3
"""Quickstart: declare a scenario, run it, read the report.

The Scenario API is the one entrypoint for experiments: pick a protocol
and topology, describe the workload, and the runner wires the cluster,
drives the clients, and hands back a structured report.  This is the
paper's Experiment-1 deployment (four AWS regions, latencies calibrated
against Table I) under a small closed-loop load.

Run:  python examples/quickstart.py
"""

from repro import Scenario, ScenarioRunner, WorkloadSpec


def main() -> None:
    scenario = Scenario(
        name="quickstart",
        protocol="ezbft",
        replica_regions=("virginia", "tokyo", "mumbai", "sydney"),
        latency="experiment1",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=8,
                              warmup_requests=1),
        seed=42,
    )

    # The same scenario compiles onto the deterministic WAN simulator
    # (here) or real TCP sockets (ScenarioRunner(backend="tcp")).
    report, cluster = ScenarioRunner().run_with_cluster(scenario)
    print(report.format_text())

    print("\nper-region mean latency (ms):")
    for phase in report.phases:
        for region, summary in sorted(phase.per_region.items()):
            print(f"  {region:10s} {summary.mean:7.1f}  "
                  f"(p99 {summary.p99:.1f})")

    # The run_with_cluster variant also exposes the live cluster for
    # inspection: every replica converged on the same state.
    states = [sm.final_items() for sm in cluster.statemachines().values()]
    assert all(state == states[0] for state in states), "diverged!"
    print(f"\nall {len(states)} replicas consistent; "
          f"{cluster.network.messages_delivered} messages simulated in "
          f"{cluster.sim.now:.0f}ms of virtual time")

    # ezBFT is leaderless: everything committed on the 3-step fast path.
    assert report.fast_path_ratio == 1.0
    print(f"fast-path ratio: {report.fast_path_ratio:.0%}")


if __name__ == "__main__":
    main()
