"""Key-value workload generator implementing the paper's contention model.

Section V: "a 2% contention means that roughly 2% of the requests issued
by clients target the same key, and the remaining requests target
clients' own (non-overlapping) set of keys."  Requests are small writes
(8-byte key, 16-byte value in the throughput experiment).
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from repro.statemachine.base import Command


class KVWorkload:
    """Per-client command generator.

    ``contention`` is the probability a request targets the shared hot
    key; other requests target a fresh client-private key so they never
    interfere with anything (including the client's own history).
    """

    def __init__(self, client_id: str, contention: float = 0.0,
                 hot_key: str = "hotkey__",
                 value_size: int = 16,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= contention <= 1.0:
            raise ValueError(f"contention must be in [0,1]: {contention}")
        self.client_id = client_id
        self.contention = contention
        self.hot_key = hot_key
        self.value_size = value_size
        # The unseeded default must still be deterministic across
        # *processes* (str hash is salted per interpreter), or two runs
        # of the same scenario would draw different key streams.
        self._rng = random.Random(
            seed if seed is not None
            else zlib.crc32(client_id.encode("utf-8")) & 0xFFFF)
        self._counter = 0
        self.hot_requests = 0
        self.total_requests = 0

    def next_op(self, client) -> Command:
        """Build the next command using ``client.next_command`` (so the
        exactly-once timestamp comes from the protocol client)."""
        self._counter += 1
        self.total_requests += 1
        value = self._value()
        if self.contention > 0.0 and \
                self._rng.random() < self.contention:
            self.hot_requests += 1
            return client.next_command("put", self.hot_key, value)
        key = f"{self.client_id}/k{self._counter}"
        return client.next_command("put", key, value)

    def _value(self) -> str:
        alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
        return "".join(self._rng.choice(alphabet)
                       for _ in range(self.value_size))
