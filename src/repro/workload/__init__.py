"""Workload generation: the paper's contention model and the closed-loop
and open-loop client drivers used in the evaluation."""

from repro.workload.generator import KVWorkload
from repro.workload.drivers import ClosedLoopDriver, OpenLoopDriver

__all__ = ["KVWorkload", "ClosedLoopDriver", "OpenLoopDriver"]
