"""Client drivers: closed-loop (latency experiments), open-loop
(throughput experiment, mirroring the paper's Section V methodology),
and a batching-aware open-loop variant for the batching ablations."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.core.batching import RequestBatcher
from repro.statemachine.base import Command
from repro.workload.generator import KVWorkload


class ClosedLoopDriver:
    """Closed loop: "a client will wait for a reply to its previous
    request before sending another one" (Section V).

    ``num_requests`` bounds the run.  Warmup exclusion is first-class
    and recorder-side: construct the cluster's
    :class:`~repro.cluster.metrics.LatencyRecorder` with
    ``discard_first=N`` (or set the attribute before the run) and the
    first N samples of every group are dropped from all statistics --
    no hand-filtering in benchmarks.  Phase tagging
    (:meth:`~repro.cluster.metrics.LatencyRecorder.begin_phase`) slices
    the remaining samples along the scenario timeline.
    """

    def __init__(self, client: Any, workload: KVWorkload,
                 num_requests: int, think_time_ms: float = 0.0) -> None:
        self.client = client
        self.workload = workload
        self.num_requests = num_requests
        self.think_time_ms = think_time_ms
        self.completed = 0
        self._issued = 0
        self._prev_delivery = client.on_delivery
        client.on_delivery = self._on_delivery

    def start(self) -> None:
        self._submit_next()

    def _submit_next(self) -> None:
        if self._issued >= self.num_requests:
            return
        self._issued += 1
        command = self.workload.next_op(self.client)
        self.client.submit(command)

    def _on_delivery(self, command, result, latency, path) -> None:
        self.completed += 1
        if self._prev_delivery is not None:
            self._prev_delivery(command, result, latency, path)
        if self.completed >= self.num_requests:
            return
        if self.think_time_ms > 0:
            self.client.ctx.set_timer(self.think_time_ms,
                                      self._submit_next)
        else:
            self._submit_next()

    @property
    def done(self) -> bool:
        return self.completed >= self.num_requests

    def stop(self) -> None:
        """Stop issuing new requests (in-flight ones still complete)."""
        self.num_requests = min(self.num_requests, self._issued)


class _IssuePacer:
    """Token-bucket pacing for open-loop issue loops.

    The naive loop -- issue one request, ``set_timer(interval)``,
    repeat -- is exact on the discrete-event simulator (timers fire at
    precisely the scheduled instant) but *drifts* on the TCP backend:
    every late ``call_later`` under load pushes all subsequent issues
    back, so the achieved rate sags below the configured one.

    The pacer instead accrues credit on an absolute schedule: each
    request is due at ``start + k * interval``, and a tick that fires
    late issues every request whose due-time has passed (a catch-up
    burst, bounded by the driver's ``max_outstanding`` window) before
    sleeping until the next due-time.  On the simulator each tick
    lands exactly on its due-time, so behaviour (and seeded results)
    are identical to the naive loop; on TCP the long-run arrival rate
    now matches the simulator's exactly.
    """

    def __init__(self, interval_ms: float) -> None:
        self.interval_ms = interval_ms
        self._next_due_ms: Optional[float] = None

    def start(self, now_ms: float) -> None:
        self._next_due_ms = now_ms

    def due(self, now_ms: float) -> bool:
        """One credit available? Consuming advances the schedule."""
        return self._next_due_ms is not None and \
            self._next_due_ms <= now_ms

    def consume(self) -> None:
        assert self._next_due_ms is not None
        self._next_due_ms += self.interval_ms

    def delay_until_next(self, now_ms: float) -> float:
        """How long to sleep until the next credit accrues."""
        if self._next_due_ms is None:
            return self.interval_ms
        return max(0.0, self._next_due_ms - now_ms)


class OpenLoopDriver:
    """Open loop: "clients continuously and asynchronously send requests
    before receiving replies" (Section V).

    Issues requests at a fixed rate for ``duration_ms`` of simulated
    time, paced by a token-bucket schedule (see :class:`_IssuePacer`)
    so wall-clock timer drift on the TCP backend does not sag the
    arrival rate.  ``max_outstanding`` caps the in-flight window so a
    saturated system queues at the replicas (where the CPU model
    meters it) rather than accumulating unbounded client state.
    """

    def __init__(self, client: Any, workload: KVWorkload,
                 rate_per_sec: float, duration_ms: float,
                 max_outstanding: int = 10_000) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        self.client = client
        self.workload = workload
        self.interval_ms = 1000.0 / rate_per_sec
        self.duration_ms = duration_ms
        self.max_outstanding = max_outstanding
        self.issued = 0
        self.skipped = 0
        self._deadline: Optional[float] = None
        self._pacer = _IssuePacer(self.interval_ms)

    def start(self) -> None:
        now = self.client.ctx.now
        self._deadline = now + self.duration_ms
        self._pacer.start(now)
        self._tick()

    def _tick(self) -> None:
        now = self.client.ctx.now
        if self._deadline is None or now >= self._deadline:
            return
        while self._pacer.due(now):
            self._pacer.consume()
            if self.client.in_flight < self.max_outstanding:
                self.issued += 1
                command = self.workload.next_op(self.client)
                self.client.submit(command)
            else:
                self.skipped += 1
        self.client.ctx.set_timer(
            self._pacer.delay_until_next(now), self._tick)

    def stop(self) -> None:
        """Stop issuing new requests (the next tick sees the deadline
        in the past and returns)."""
        self._deadline = self.client.ctx.now


class BatchingOpenLoopDriver:
    """Open loop with client-side request batching.

    Generates commands at a fixed rate like :class:`OpenLoopDriver`, but
    accumulates them in a :class:`~repro.core.batching.RequestBatcher`
    and submits each flush through the client's ``submit_batch`` (one
    signature for the whole batch).  Clients without ``submit_batch``
    (protocols whose spec lacks ``supports_batching``) and single-item
    flushes degrade to per-command :meth:`submit`, so a ``batch_size``
    of 1 reproduces :class:`OpenLoopDriver` behaviour exactly.
    """

    def __init__(self, client: Any, workload: KVWorkload,
                 rate_per_sec: float, duration_ms: float,
                 batch_size: int = 1, batch_timeout_ms: float = 10.0,
                 max_outstanding: int = 10_000) -> None:
        if rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        self.client = client
        self.workload = workload
        self.interval_ms = 1000.0 / rate_per_sec
        self.duration_ms = duration_ms
        self.max_outstanding = max_outstanding
        self.issued = 0
        self.skipped = 0
        self.batches_sent = 0
        self._deadline: Optional[float] = None
        self._pacer = _IssuePacer(self.interval_ms)
        self._batcher = RequestBatcher(
            batch_size=batch_size,
            batch_timeout_ms=batch_timeout_ms,
            flush_fn=self._submit_commands,
            set_timer_fn=client.ctx.set_timer)

    def start(self) -> None:
        now = self.client.ctx.now
        self._deadline = now + self.duration_ms
        self._pacer.start(now)
        self._tick()

    def _tick(self) -> None:
        now = self.client.ctx.now
        if self._deadline is None or now >= self._deadline:
            self._batcher.flush()  # don't strand a partial batch
            return
        while self._pacer.due(now):
            self._pacer.consume()
            if self.client.in_flight + self._batcher.pending < \
                    self.max_outstanding:
                self.issued += 1
                self._batcher.add(self.workload.next_op(self.client))
            else:
                self.skipped += 1
        self.client.ctx.set_timer(
            self._pacer.delay_until_next(now), self._tick)

    def stop(self) -> None:
        """Stop issuing and flush any partial batch."""
        self._deadline = self.client.ctx.now
        self._batcher.flush()

    def _submit_commands(self, commands: List[Command]) -> None:
        self.batches_sent += 1
        submit_batch = getattr(self.client, "submit_batch", None)
        if submit_batch is not None and len(commands) > 1:
            submit_batch(commands)
            return
        for command in commands:
            self.client.submit(command)
