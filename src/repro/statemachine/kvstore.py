"""Replicated key-value store with a speculative overlay.

Execution model (matching Zyzzyva/ezBFT requirements):

- *Final state* is the authoritative map, mutated only by :meth:`apply`.
- *Speculative state* is an overlay on top of the final state, mutated by
  :meth:`apply_speculative`.  Reads during speculation see the overlay
  first, then the final state.  :meth:`rollback_speculative` discards the
  overlay in O(overlay size).

Result conventions: ``get`` returns the value (or ``None``), mutations
(``put``, ``incr``) return the string ``"OK"``.  Mutation results are
deliberately order-independent so that commands that *commute on state*
also produce identical replies regardless of speculative execution order
-- otherwise two non-interfering increments could spuriously knock the
protocol off the fast path.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Optional

from repro.errors import StateMachineError
from repro.statemachine.base import Command, StateMachine

#: Sentinel stored in the overlay for keys without a final value yet.
_MISSING = object()


class KVStore(StateMachine):
    """In-memory deterministic KV state machine."""

    def __init__(self) -> None:
        self._final: Dict[str, Any] = {}
        self._overlay: Dict[str, Any] = {}
        self.final_ops = 0
        self.speculative_ops = 0
        self.rollbacks = 0

    # ------------------------------------------------------------------
    # StateMachine interface
    # ------------------------------------------------------------------
    def apply(self, command: Command) -> Any:
        self.final_ops += 1
        return self._execute(command, self._final, read_through=False)

    def apply_speculative(self, command: Command) -> Any:
        self.speculative_ops += 1
        return self._execute(command, self._overlay, read_through=True)

    def rollback_speculative(self) -> None:
        if self._overlay:
            self.rollbacks += 1
        self._overlay.clear()

    def snapshot(self) -> dict:
        return copy.deepcopy(self._final)

    def restore(self, snapshot: dict) -> None:
        self._final = copy.deepcopy(snapshot)
        self._overlay.clear()

    # ------------------------------------------------------------------
    # Introspection helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def get_final(self, key: str) -> Any:
        """Read a key from the final state only."""
        return self._final.get(key)

    def get_speculative(self, key: str) -> Any:
        """Read a key as speculation sees it (overlay, then final)."""
        if key in self._overlay:
            value = self._overlay[key]
            return None if value is _MISSING else value
        return self._final.get(key)

    @property
    def has_speculative_state(self) -> bool:
        return bool(self._overlay)

    def final_items(self) -> Dict[str, Any]:
        return dict(self._final)

    def speculative_items(self) -> Dict[str, Any]:
        """Final state with the speculative overlay applied on top --
        the state a speculative protocol (Zyzzyva, ezBFT pre-commit)
        exposes before commitment catches up."""
        merged = dict(self._final)
        for key, value in self._overlay.items():
            if value is _MISSING:
                merged.pop(key, None)
            else:
                merged[key] = value
        return merged

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _read(self, key: str, layer: Dict[str, Any],
              read_through: bool) -> Any:
        if key in layer:
            value = layer[key]
            return None if value is _MISSING else value
        if read_through:
            return self._final.get(key)
        return None

    def _execute(self, command: Command, layer: Dict[str, Any],
                 read_through: bool) -> Any:
        op = command.op
        if op == "noop":
            return None
        if op == "get":
            return self._read(command.key, layer, read_through)
        if op == "put":
            layer[command.key] = command.value
            return "OK"
        if op == "incr":
            delta = command.value if command.value is not None else 1
            if not isinstance(delta, int):
                raise StateMachineError(
                    f"incr delta must be int, got {delta!r}")
            current = self._read(command.key, layer, read_through)
            if current is None:
                current = 0
            if not isinstance(current, int):
                raise StateMachineError(
                    f"incr target {command.key!r} holds non-int "
                    f"{current!r}")
            layer[command.key] = current + delta
            return "OK"
        raise StateMachineError(f"unknown op {op!r}")
