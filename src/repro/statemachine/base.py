"""Command wire type and the abstract replicated state machine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class Command:
    """An operation a client asks the replicated service to execute.

    ``client_id`` and ``timestamp`` together identify the command (the
    paper's exactly-once mechanism); ``op``/``key``/``value`` describe the
    operation against the key-value service used in the evaluation.

    Supported ops:

    - ``"get"``    -- read ``key``; result is the current value.
    - ``"put"``    -- write ``value`` to ``key``; result is ``value``.
    - ``"incr"``   -- add ``value`` (int, default 1) to ``key``; result is
      the new total.  Increments commute with each other, which the paper
      uses to contrast ezBFT's interference relation with Q/U's
      read/write conflicts.
    - ``"noop"``   -- does nothing; used by recovery to fill instances.
    """

    client_id: str
    timestamp: int
    op: str
    key: str = ""
    value: Any = None

    @property
    def ident(self) -> Tuple[str, int]:
        """Globally unique command identity."""
        return (self.client_id, self.timestamp)

    @property
    def is_mutation(self) -> bool:
        return self.op in ("put", "incr")

    @property
    def is_noop(self) -> bool:
        return self.op == "noop"

    def to_wire(self) -> dict:
        return {
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "op": self.op,
            "key": self.key,
            "value": self.value,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Command":
        return cls(
            client_id=wire["client_id"],
            timestamp=wire["timestamp"],
            op=wire["op"],
            key=wire.get("key", ""),
            value=wire.get("value"),
        )

    @classmethod
    def noop(cls) -> "Command":
        """The distinguished no-op command used to finalize empty slots."""
        return cls(client_id="__noop__", timestamp=0, op="noop")


class StateMachine(ABC):
    """Deterministic application state machine.

    Implementations must be deterministic: the same sequence of commands
    applied to the same initial state yields the same results and final
    state on every replica.
    """

    @abstractmethod
    def apply(self, command: Command) -> Any:
        """Execute ``command`` against the final state; return its result."""

    @abstractmethod
    def apply_speculative(self, command: Command) -> Any:
        """Execute ``command`` against the speculative overlay."""

    @abstractmethod
    def rollback_speculative(self) -> None:
        """Discard all speculative effects (keep final state)."""

    @abstractmethod
    def snapshot(self) -> dict:
        """Serializable copy of the final state (for checkpoints)."""

    @abstractmethod
    def restore(self, snapshot: dict) -> None:
        """Replace final state with ``snapshot``; clears speculation."""
