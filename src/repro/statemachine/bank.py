"""A replicated bank-account service with balance-dependent results.

A deliberately *non-commutative* application for the
``statemachine_factory`` extension point: a withdrawal's result depends
on the balance at execution time, so interfering commands genuinely
exercise the protocols' ordering guarantees (speculative replies that
were executed against different orders will disagree and push the
protocol onto its slow path, exactly as they should).

Ops (``Command.key`` names the account; amounts are non-negative ints):

- ``"deposit"``  -- add ``value``; result ``"OK"``.
- ``"withdraw"`` -- subtract ``value`` if covered; result ``"OK"`` or
  ``"INSUFFICIENT"`` (the balance is never driven negative).
- ``"balance"``  -- read; result is the current balance (0 for unknown
  accounts).
- ``"noop"``     -- does nothing (recovery filler).
"""

from __future__ import annotations

import copy
from typing import Any, Dict

from repro.errors import StateMachineError
from repro.statemachine.base import Command, StateMachine


class BankMachine(StateMachine):
    """In-memory deterministic account store with a speculative
    overlay."""

    def __init__(self) -> None:
        self._final: Dict[str, int] = {}
        self._overlay: Dict[str, int] = {}
        self.final_ops = 0
        self.speculative_ops = 0
        self.rollbacks = 0
        self.rejected_withdrawals = 0

    # ------------------------------------------------------------------
    # StateMachine interface
    # ------------------------------------------------------------------
    def apply(self, command: Command) -> Any:
        self.final_ops += 1
        return self._execute(command, self._final, read_through=False)

    def apply_speculative(self, command: Command) -> Any:
        self.speculative_ops += 1
        return self._execute(command, self._overlay, read_through=True)

    def rollback_speculative(self) -> None:
        if self._overlay:
            self.rollbacks += 1
        self._overlay.clear()

    def snapshot(self) -> dict:
        return copy.deepcopy(self._final)

    def restore(self, snapshot: dict) -> None:
        self._final = copy.deepcopy(snapshot)
        self._overlay.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def balance(self, account: str) -> int:
        """Final (committed) balance."""
        return self._final.get(account, 0)

    def speculative_balance(self, account: str) -> int:
        if account in self._overlay:
            return self._overlay[account]
        return self._final.get(account, 0)

    def final_items(self) -> Dict[str, int]:
        return dict(self._final)

    def speculative_items(self) -> Dict[str, int]:
        merged = dict(self._final)
        merged.update(self._overlay)
        return merged

    # ------------------------------------------------------------------
    def _read(self, account: str, layer: Dict[str, int],
              read_through: bool) -> int:
        if account in layer:
            return layer[account]
        if read_through:
            return self._final.get(account, 0)
        return 0

    def _amount(self, command: Command) -> int:
        amount = command.value
        if not isinstance(amount, int) or amount < 0:
            raise StateMachineError(
                f"amount must be a non-negative int, got {amount!r}")
        return amount

    def _execute(self, command: Command, layer: Dict[str, int],
                 read_through: bool) -> Any:
        op = command.op
        if op == "noop":
            return None
        if op == "balance":
            return self._read(command.key, layer, read_through)
        if op == "deposit":
            layer[command.key] = \
                self._read(command.key, layer, read_through) + \
                self._amount(command)
            return "OK"
        if op == "withdraw":
            amount = self._amount(command)
            current = self._read(command.key, layer, read_through)
            if current < amount:
                self.rejected_withdrawals += 1
                return "INSUFFICIENT"
            layer[command.key] = current - amount
            return "OK"
        raise StateMachineError(
            f"BankMachine does not support op {command.op!r}")
