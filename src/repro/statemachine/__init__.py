"""Replicated state machine substrate.

Provides the :class:`Command` wire type, the command-interference relation
the protocol uses for dependency collection, and a replicated key-value
store supporting the speculative-execute / rollback / final-execute cycle
that ezBFT and Zyzzyva require.
"""

from repro.statemachine.base import Command, StateMachine
from repro.statemachine.interference import (
    InterferenceRelation,
    KVInterference,
    AlwaysInterfere,
    NeverInterfere,
)
from repro.statemachine.kvstore import KVStore
from repro.statemachine.counter import CounterMachine
from repro.statemachine.bank import BankMachine
from repro.statemachine.checkpoint import Checkpoint, CheckpointStore

__all__ = [
    "Command",
    "StateMachine",
    "InterferenceRelation",
    "KVInterference",
    "AlwaysInterfere",
    "NeverInterfere",
    "KVStore",
    "CounterMachine",
    "BankMachine",
    "Checkpoint",
    "CheckpointStore",
]
