"""Checkpointing: periodic proofs that a prefix of execution is durable.

PBFT garbage-collects its message log at checkpoint boundaries; ezBFT's
owner-change messages carry "instances executed or committed *since the
last checkpoint*".  Both need the same building block: a snapshot of the
application state bound to an execution watermark, plus a quorum of
matching digests proving the snapshot is correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.crypto.digest import digest


@dataclass(frozen=True)
class Checkpoint:
    """A state snapshot at an execution watermark.

    ``watermark`` counts final-executed commands; ``state_digest`` commits
    to the snapshot contents.
    """

    watermark: int
    state_digest: str
    snapshot: dict

    @classmethod
    def capture(cls, watermark: int, snapshot: dict) -> "Checkpoint":
        return cls(watermark=watermark, state_digest=digest(snapshot),
                   snapshot=snapshot)


class CheckpointStore:
    """Tracks local checkpoints and peer attestations.

    A checkpoint becomes *stable* once ``quorum`` distinct replicas
    (including ourselves) have attested to the same (watermark, digest).
    Only the latest stable checkpoint is retained.
    """

    #: Local snapshots retained while waiting for stability.  Bounds
    #: memory if checkpoints stop stabilizing (e.g. a partitioned
    #: minority): a late quorum on a pruned watermark simply waits for
    #: the next boundary.
    MAX_LOCAL = 8
    #: Live votes retained per replica.  A byzantine replica attesting
    #: ever-higher watermarks would otherwise grow the vote and
    #: attestation maps without bound (nothing below them ever
    #: stabilizes, so ``_gc`` never prunes them); evicting its oldest
    #: vote caps the damage at a constant per replica.
    MAX_VOTES_PER_REPLICA = 16

    def __init__(self, quorum: int, interval: int = 128) -> None:
        self.quorum = quorum
        self.interval = interval
        self._local: Dict[int, Checkpoint] = {}
        self._attestations: Dict[tuple, set] = {}
        #: (replica, watermark) -> digest it attested; one live vote per
        #: replica per watermark, first vote wins (a byzantine replica
        #: could otherwise flood arbitrarily many digests per watermark).
        self._votes: Dict[Tuple[str, int], str] = {}
        #: Highest watermark we have captured locally.  ``due`` keys off
        #: this, not ``stable``: stability needs a quorum round-trip, and
        #: measuring from ``stable`` would re-capture a full O(state)
        #: snapshot on every execution until the first quorum forms.
        self.last_captured = 0
        self.stable: Optional[Checkpoint] = None

    @classmethod
    def restore_from(cls, checkpoint: Checkpoint, quorum: int,
                     interval: int = 128) -> "CheckpointStore":
        """Rehydrate a store from a recovered stable checkpoint.

        A restart-from-disk must NOT start from ``last_captured = 0``:
        ``due()`` would fire the first post-restart capture one interval
        after zero instead of one interval after the recovered
        watermark, re-capturing from scratch -- and the fresh (lower)
        stable watermark would regress ``base_slot`` in owner-change
        payloads built from it.
        """
        store = cls(quorum=quorum, interval=interval)
        store._local[checkpoint.watermark] = checkpoint
        store.last_captured = checkpoint.watermark
        store.stable = checkpoint
        return store

    def due(self, executed_count: int) -> bool:
        """True when ``executed_count`` has crossed a checkpoint boundary."""
        if executed_count == 0 or self.interval <= 0:
            return False
        last = self.last_captured
        if self.stable is not None:
            last = max(last, self.stable.watermark)
        return executed_count - last >= self.interval

    def record_local(self, checkpoint: Checkpoint) -> None:
        self._local[checkpoint.watermark] = checkpoint
        self.last_captured = max(self.last_captured, checkpoint.watermark)
        if len(self._local) > self.MAX_LOCAL:
            for watermark in sorted(self._local)[:-self.MAX_LOCAL]:
                del self._local[watermark]
        self.attest(checkpoint.watermark, checkpoint.state_digest,
                    replica_id="__self__")

    def attest(self, watermark: int, state_digest: str,
               replica_id: str) -> bool:
        """Record a peer attestation; returns True if it became stable.

        At most one vote per (replica, watermark) is ever live: the
        first digest a replica attests at a watermark wins, and
        conflicting re-votes are dropped.
        """
        vote_key = (replica_id, watermark)
        prior = self._votes.get(vote_key)
        if prior is not None and prior != state_digest:
            return False  # equivocating re-vote; first vote stands
        if prior is None:
            self._evict_excess_votes(replica_id)
        self._votes[vote_key] = state_digest
        key = (watermark, state_digest)
        voters = self._attestations.setdefault(key, set())
        voters.add(replica_id)
        if len(voters) >= self.quorum and watermark in self._local:
            candidate = self._local[watermark]
            if self.stable is None or \
                    candidate.watermark > self.stable.watermark:
                self.stable = candidate
                self._gc(watermark)
                return True
        return False

    def has_quorum(self, watermark: int, state_digest: str) -> bool:
        """True when ``quorum`` replicas attested (watermark, digest) --
        proof the checkpoint is stable cluster-wide even if we never
        captured it locally (the lagging-replica signal)."""
        voters = self._attestations.get((watermark, state_digest), ())
        return len(voters) >= self.quorum

    def attestation_count(self, watermark: int, state_digest: str) -> int:
        return len(self._attestations.get((watermark, state_digest), ()))

    def vote_of(self, replica_id: str, watermark: int) -> Optional[str]:
        """The digest ``replica_id``'s live vote backs at ``watermark``."""
        return self._votes.get((replica_id, watermark))

    def install_stable(self, checkpoint: Checkpoint) -> None:
        """Adopt an externally proven stable checkpoint (state transfer)."""
        if self.stable is not None and \
                checkpoint.watermark <= self.stable.watermark:
            return
        self._local[checkpoint.watermark] = checkpoint
        self.last_captured = max(self.last_captured, checkpoint.watermark)
        self.stable = checkpoint
        self._gc(checkpoint.watermark)

    def _evict_excess_votes(self, replica_id: str) -> None:
        """Keep at most ``MAX_VOTES_PER_REPLICA`` live votes for one
        replica, dropping its lowest watermarks first."""
        watermarks = sorted(w for (rid, w) in self._votes
                            if rid == replica_id)
        while len(watermarks) >= self.MAX_VOTES_PER_REPLICA:
            oldest = watermarks.pop(0)
            digest_voted = self._votes.pop((replica_id, oldest))
            voters = self._attestations.get((oldest, digest_voted))
            if voters is not None:
                voters.discard(replica_id)
                if not voters:
                    del self._attestations[(oldest, digest_voted)]

    def _gc(self, stable_watermark: int) -> None:
        self._local = {w: c for w, c in self._local.items()
                       if w >= stable_watermark}
        self._attestations = {
            key: voters for key, voters in self._attestations.items()
            if key[0] >= stable_watermark
        }
        self._votes = {
            key: d for key, d in self._votes.items()
            if key[1] >= stable_watermark
        }
