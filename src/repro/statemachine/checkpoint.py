"""Checkpointing: periodic proofs that a prefix of execution is durable.

PBFT garbage-collects its message log at checkpoint boundaries; ezBFT's
owner-change messages carry "instances executed or committed *since the
last checkpoint*".  Both need the same building block: a snapshot of the
application state bound to an execution watermark, plus a quorum of
matching digests proving the snapshot is correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.digest import digest


@dataclass(frozen=True)
class Checkpoint:
    """A state snapshot at an execution watermark.

    ``watermark`` counts final-executed commands; ``state_digest`` commits
    to the snapshot contents.
    """

    watermark: int
    state_digest: str
    snapshot: dict

    @classmethod
    def capture(cls, watermark: int, snapshot: dict) -> "Checkpoint":
        return cls(watermark=watermark, state_digest=digest(snapshot),
                   snapshot=snapshot)


class CheckpointStore:
    """Tracks local checkpoints and peer attestations.

    A checkpoint becomes *stable* once ``quorum`` distinct replicas
    (including ourselves) have attested to the same (watermark, digest).
    Only the latest stable checkpoint is retained.
    """

    def __init__(self, quorum: int, interval: int = 128) -> None:
        self.quorum = quorum
        self.interval = interval
        self._local: Dict[int, Checkpoint] = {}
        self._attestations: Dict[tuple, set] = {}
        self.stable: Optional[Checkpoint] = None

    def due(self, executed_count: int) -> bool:
        """True when ``executed_count`` has crossed a checkpoint boundary."""
        if executed_count == 0 or self.interval <= 0:
            return False
        last = self.stable.watermark if self.stable else 0
        return executed_count - last >= self.interval

    def record_local(self, checkpoint: Checkpoint) -> None:
        self._local[checkpoint.watermark] = checkpoint
        self.attest(checkpoint.watermark, checkpoint.state_digest,
                    replica_id="__self__")

    def attest(self, watermark: int, state_digest: str,
               replica_id: str) -> bool:
        """Record a peer attestation; returns True if it became stable."""
        key = (watermark, state_digest)
        voters = self._attestations.setdefault(key, set())
        voters.add(replica_id)
        if len(voters) >= self.quorum and watermark in self._local:
            candidate = self._local[watermark]
            if self.stable is None or \
                    candidate.watermark > self.stable.watermark:
                self.stable = candidate
                self._gc(watermark)
                return True
        return False

    def _gc(self, stable_watermark: int) -> None:
        self._local = {w: c for w, c in self._local.items()
                       if w >= stable_watermark}
        self._attestations = {
            key: voters for key, voters in self._attestations.items()
            if key[0] >= stable_watermark
        }
