"""A replicated counter service: the simplest pluggable application.

Demonstrates the ``statemachine_factory`` extension point of
:func:`repro.cluster.build_cluster`: scenarios beyond the key-value
store plug in without touching the builder or any protocol code.

Ops (``Command.key`` names the counter):

- ``"incr"`` -- add ``value`` (int, default 1); result ``"OK"``.
- ``"get"``  -- read the counter; result is the current total (0 when
  never incremented).
- ``"noop"`` -- does nothing (recovery filler).

Increment results are order-independent (all return ``"OK"``), so
commuting increments stay on the fast path of speculative protocols
exactly as the KV store's mutations do.
"""

from __future__ import annotations

import copy
from typing import Any, Dict

from repro.errors import StateMachineError
from repro.statemachine.base import Command, StateMachine


class CounterMachine(StateMachine):
    """In-memory deterministic counter state machine with a speculative
    overlay (final state + overlay, like :class:`~repro.statemachine.
    kvstore.KVStore`)."""

    def __init__(self) -> None:
        self._final: Dict[str, int] = {}
        self._overlay: Dict[str, int] = {}
        self.final_ops = 0
        self.speculative_ops = 0
        self.rollbacks = 0

    # ------------------------------------------------------------------
    # StateMachine interface
    # ------------------------------------------------------------------
    def apply(self, command: Command) -> Any:
        self.final_ops += 1
        return self._execute(command, self._final, read_through=False)

    def apply_speculative(self, command: Command) -> Any:
        self.speculative_ops += 1
        return self._execute(command, self._overlay, read_through=True)

    def rollback_speculative(self) -> None:
        if self._overlay:
            self.rollbacks += 1
        self._overlay.clear()

    def snapshot(self) -> dict:
        return copy.deepcopy(self._final)

    def restore(self, snapshot: dict) -> None:
        self._final = copy.deepcopy(snapshot)
        self._overlay.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def value(self, key: str) -> int:
        """Final (committed) total for ``key``."""
        return self._final.get(key, 0)

    def speculative_value(self, key: str) -> int:
        """Total as speculation sees it (overlay, then final)."""
        if key in self._overlay:
            return self._overlay[key]
        return self._final.get(key, 0)

    def final_items(self) -> Dict[str, int]:
        return dict(self._final)

    def speculative_items(self) -> Dict[str, int]:
        merged = dict(self._final)
        merged.update(self._overlay)
        return merged

    # ------------------------------------------------------------------
    def _read(self, key: str, layer: Dict[str, int],
              read_through: bool) -> int:
        if key in layer:
            return layer[key]
        if read_through:
            return self._final.get(key, 0)
        return 0

    def _execute(self, command: Command, layer: Dict[str, int],
                 read_through: bool) -> Any:
        op = command.op
        if op == "noop":
            return None
        if op == "get":
            return self._read(command.key, layer, read_through)
        if op == "incr":
            delta = command.value if command.value is not None else 1
            if not isinstance(delta, int):
                raise StateMachineError(
                    f"incr delta must be int, got {delta!r}")
            layer[command.key] = \
                self._read(command.key, layer, read_through) + delta
            return "OK"
        raise StateMachineError(
            f"CounterMachine does not support op {command.op!r}")
