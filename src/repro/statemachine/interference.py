"""Command-interference relations.

The paper (Section III): two commands interfere if executing them in
different orders from the same state can produce different final states.
For the key-value service used in the evaluation this reduces to:

- commands on different keys never interfere;
- two ``get``\\ s never interfere;
- ``incr``\\ s commute with each other (the paper explicitly calls out that
  "mutative operations such as incrementing a variable" commute under
  ezBFT's relation, unlike Q/U's read/write classification) -- but an
  ``incr`` interferes with a ``get`` (the read sees different values) and
  with a ``put``;
- ``put`` interferes with everything on the same key except... nothing:
  put/put do not commute (last write wins), put/get do not commute,
  put/incr do not commute.

``noop`` commands never interfere with anything.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.statemachine.base import Command


class InterferenceRelation(ABC):
    """Abstract symmetric interference predicate over commands."""

    @abstractmethod
    def interferes(self, a: Command, b: Command) -> bool:
        """True iff ``a`` and ``b`` do not commute."""


class KVInterference(InterferenceRelation):
    """The key-value relation described in the module docstring."""

    def interferes(self, a: Command, b: Command) -> bool:
        if a.is_noop or b.is_noop:
            return False
        if a.key != b.key:
            return False
        ops = {a.op, b.op}
        if ops == {"get"}:
            return False
        if ops == {"incr"}:
            # Commutative mutations: order does not affect the final state
            # *or* each other's results (each incr returns its own delta
            # applied to whatever total precedes it -- to keep results
            # order-independent we define incr's result as the delta
            # itself is NOT what we do; see KVStore.apply).  Two incrs on
            # the same key still produce the same final total in either
            # order, and ezBFT's relation is about final *state*, so they
            # do not interfere.
            return False
        return True


class ReadWriteInterference(InterferenceRelation):
    """Q/U-style classification: reads conflict with writes, writes with
    everything.  Strictly coarser than :class:`KVInterference`; used by the
    ablation benchmarks to quantify what the finer relation buys."""

    def interferes(self, a: Command, b: Command) -> bool:
        if a.is_noop or b.is_noop:
            return False
        if a.key != b.key:
            return False
        return a.is_mutation or b.is_mutation


class AlwaysInterfere(InterferenceRelation):
    """Every pair of non-noop commands interferes.

    Turns ezBFT's per-replica instance spaces into a single totally ordered
    log -- the worst case the 100%-contention experiments exercise.
    """

    def interferes(self, a: Command, b: Command) -> bool:
        return not (a.is_noop or b.is_noop)


class NeverInterfere(InterferenceRelation):
    """No commands interfere; every request takes the fast path."""

    def interferes(self, a: Command, b: Command) -> bool:
        return False
