"""Compact length-prefixed wire codec for the TCP transport.

The previous format serialized every frame with a generic
``json.dumps({"sender": ..., "addr": ..., "message": msg.to_wire()})``,
re-encoding the message wire dict even though the crypto layer had just
produced (and memoized) its canonical bytes to sign it.  This codec
ships the routing envelope as a tiny fixed binary header and reuses the
message's cached canonical encoding verbatim as the frame body.

Frame body layout (the transport's 4-byte outer length prefix is *not*
part of this codec):

    kind:       1 byte   -- HELLO (address announcement), MESSAGE, or
                            TRACED (a MESSAGE carrying trace context)
    sender_len: 2 bytes  big-endian
    sender:     UTF-8 node id
    host_len:   2 bytes  big-endian
    host:       UTF-8 listen host of the sender
    port:       2 bytes  big-endian listen port of the sender
    trace_len:  2 bytes  big-endian       (TRACED frames only)
    trace:      compact JSON trace context (TRACED frames only; see
                :mod:`repro.messages.trace`)
    body:       canonical JSON bytes of the message wire dict
                (MESSAGE/TRACED frames only)

The body is exactly :func:`repro.crypto.digest.canonical_bytes` of the
message, which is itself valid JSON, so the receive side decodes it with
``json.loads`` and the ordinary message registry -- anything that round
trips through the simulator round trips here unchanged.

TRACED is strictly additive: a deployment with tracing off never emits
it, old frames decode exactly as before, and the trace section never
touches the signed message bytes (certificate splicing and digest memos
stay valid).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Tuple

from repro.crypto.digest import canonical_bytes
from repro.errors import TransportError

#: Frame kinds.
HELLO = 0
MESSAGE = 1
TRACED = 2

_LEN = struct.Struct(">H")
_PORT = struct.Struct(">H")

Address = Tuple[str, int]


def encode_frame(sender: str, addr: Address,
                 message: Optional[Any] = None,
                 trace: Optional[bytes] = None) -> bytes:
    """Encode one frame body.  ``message=None`` makes a HELLO frame;
    ``trace`` (pre-encoded context bytes) upgrades a MESSAGE frame to
    TRACED and is ignored for HELLOs."""
    sender_b = sender.encode("utf-8")
    host, port = addr
    host_b = str(host).encode("utf-8")
    if len(sender_b) > 0xFFFF or len(host_b) > 0xFFFF:
        raise TransportError("sender/host name exceeds 65535 bytes")
    if not 0 <= int(port) <= 0xFFFF:
        raise TransportError(f"port {port!r} out of range")
    traced = message is not None and trace is not None
    if traced and len(trace) > 0xFFFF:
        raise TransportError("trace context exceeds 65535 bytes")
    kind = HELLO if message is None else (TRACED if traced else MESSAGE)
    parts = [
        bytes((kind,)),
        _LEN.pack(len(sender_b)), sender_b,
        _LEN.pack(len(host_b)), host_b,
        _PORT.pack(int(port)),
    ]
    if message is None:
        return b"".join(parts)
    if traced:
        parts.append(_LEN.pack(len(trace)))
        parts.append(trace)
    # The cached canonical encoding of the (usually just-signed)
    # message: no second serialization pass over its wire dict.
    parts.append(canonical_bytes(message))
    return b"".join(parts)


def decode_frame(body: bytes) -> Tuple[str, Address, Optional[dict]]:
    """Decode one frame body to ``(sender, addr, wire_dict_or_None)``.

    HELLO frames decode with ``None`` in the message slot; any trace
    context on a TRACED frame is dropped (use
    :func:`decode_frame_traced` to keep it).  Malformed input raises
    :class:`TransportError` (corrupt peer guard).
    """
    sender, addr, wire, _ = decode_frame_traced(body)
    return sender, addr, wire


def decode_frame_traced(body: bytes) -> Tuple[str, Address,
                                              Optional[dict],
                                              Optional[bytes]]:
    """Decode one frame body to ``(sender, addr, wire_dict_or_None,
    trace_bytes_or_None)`` -- the transport's dispatch entry point."""
    try:
        kind = body[0]
        offset = 1
        (sender_len,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        sender = body[offset:offset + sender_len].decode("utf-8")
        offset += sender_len
        (host_len,) = _LEN.unpack_from(body, offset)
        offset += _LEN.size
        host = body[offset:offset + host_len].decode("utf-8")
        offset += host_len
        (port,) = _PORT.unpack_from(body, offset)
        offset += _PORT.size
        trace: Optional[bytes] = None
        if kind == TRACED:
            (trace_len,) = _LEN.unpack_from(body, offset)
            offset += _LEN.size
            trace = body[offset:offset + trace_len]
            if len(trace) != trace_len:
                raise TransportError("truncated trace context")
            offset += trace_len
    except (IndexError, struct.error, UnicodeDecodeError) as exc:
        raise TransportError(f"malformed frame header: {exc}") from None
    if kind == HELLO:
        if offset != len(body):
            raise TransportError("hello frame carries trailing bytes")
        return sender, (host, port), None, None
    if kind not in (MESSAGE, TRACED):
        raise TransportError(f"unknown frame kind {kind}")
    try:
        wire = json.loads(body[offset:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed frame body: {exc}") from None
    if not isinstance(wire, dict):
        raise TransportError(
            f"frame body is {type(wire).__name__}, expected an object")
    return sender, (host, port), wire, trace
