"""Live transports.

The simulator is the primary substrate for experiments; this package
provides a real asyncio TCP transport so the same protocol objects can
run as actual networked processes (see ``examples/asyncio_cluster.py``).
"""

from repro.transport.asyncio_tcp import AsyncioCluster, AsyncioNode

__all__ = ["AsyncioCluster", "AsyncioNode"]
