"""Asyncio TCP transport: run the protocol objects over real sockets.

Wire format: 4-byte big-endian length prefix + the compact frame body
of :mod:`repro.transport.codec` (a small binary routing header followed
by the message's canonical JSON bytes).  Messages are reconstructed
through the same :func:`repro.messages.decode` registry the simulator's
round-trip tests exercise, so anything that runs on the simulator runs
here unchanged.

The protocol classes are synchronous event handlers, so the adapter is
thin: incoming frames invoke ``handler(sender, message)`` on the event
loop; ``NodeContext.set_timer`` maps to ``loop.call_later``; the clock
is ``loop.time()`` scaled to milliseconds.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.cluster.node import NodeContext
from repro.errors import TransportError
from repro.messages.base import decode
from repro.messages.trace import (
    trace_context_from_bytes,
    trace_context_to_bytes,
)
from repro.obs.instruments import NULL
from repro.trace.tracer import NULL_TRACER
from repro.transport.codec import decode_frame_traced, encode_frame

_HEADER = struct.Struct(">I")
#: Frames above this size are rejected (corrupt peer / DoS guard).
MAX_FRAME_BYTES = 16 * 1024 * 1024

Address = Tuple[str, int]


def parse_hostport(value: Any) -> Address:
    """Normalize a host-map entry: ``"host:port"`` or ``(host, port)``.

    Host maps come from scenario spec files (strings) and Python
    callers (tuples); both forms must name an explicit port -- a
    remote peer cannot be dialed at an OS-assigned one.
    """
    if isinstance(value, (tuple, list)) and len(value) == 2:
        host, port = value
    elif isinstance(value, str):
        host, _, port = value.rpartition(":")
        if not host:
            raise TransportError(
                f"host map entry {value!r} must be 'host:port'")
    else:
        raise TransportError(
            f"host map entry {value!r} must be 'host:port' or "
            f"(host, port)")
    try:
        port = int(port)
    except (TypeError, ValueError):
        raise TransportError(
            f"host map entry {value!r} has a non-integer port") \
            from None
    if not 0 < port < 65536:
        raise TransportError(
            f"host map entry {value!r} needs an explicit port in "
            f"1..65535")
    return (str(host), port)


class _AsyncioTimer:
    """Adapts ``asyncio.TimerHandle`` to the NodeContext Timer protocol."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._fired = False

    def mark_fired(self) -> None:
        self._fired = True

    def cancel(self) -> None:
        self._handle.cancel()
        self._fired = True

    @property
    def pending(self) -> bool:
        return not self._fired and not self._handle.cancelled()


class AsyncioNode:
    """One protocol node bound to a TCP listening socket."""

    #: Observability seam.  Per-frame sites guard on
    #: ``instruments.enabled`` so a disabled deployment pays a single
    #: attribute test; ``repro serve`` swaps in a live set.
    instruments = NULL
    #: Tracing seam, same discipline: the no-op singleton by default;
    #: traced deployments swap in a live :class:`ActiveTracer` so
    #: frames carry causal context (the TRACED frame kind).
    tracer = NULL_TRACER

    def __init__(self, node_id: str, address: Address,
                 addresses: Dict[str, Address],
                 loop: Optional[asyncio.AbstractEventLoop] = None,
                 shaper: Optional[Any] = None,
                 strict_destinations: bool = True) -> None:
        self.node_id = node_id
        self.address = address
        self.addresses = addresses
        self._loop = loop
        #: Optional :class:`repro.netem.LinkShaper` shared by the whole
        #: deployment: sends are delayed / dropped / duplicated per the
        #: live profile before hitting the socket.
        self.shaper = shaper
        #: With a host map (multi-process deployments) an unknown
        #: destination is a peer we have not learned yet, not a bug:
        #: drop like a quasi-reliable network instead of raising.
        self.strict_destinations = strict_destinations
        self.handler: Optional[Callable[[str, Any], None]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        #: Per-destination dial lock: two concurrent sends to an
        #: uncached destination must not open duplicate connections
        #: (the loser's writer would leak, never closed).
        self._dial_locks: Dict[str, asyncio.Lock] = {}
        #: Strong references to in-flight send tasks.  The event loop
        #: only keeps weak references to tasks, so a fire-and-forget
        #: ``create_task`` can be garbage-collected mid-send.
        self._send_tasks: Set[asyncio.Task] = set()
        self._closed = False
        self.frames_received = 0
        self.frames_sent = 0
        self.frames_dropped = 0
        #: When each peer was last heard from (loop-clock ms), kept
        #: only while instruments are live -- the health monitor's
        #: quorum-reachability signal.
        self.last_rx_ms: Dict[str, float] = {}

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The bound event loop, resolved lazily from the running loop
        (``asyncio.get_event_loop`` outside a running loop is
        deprecated and binds to the wrong loop under ``asyncio.run``)."""
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    # ------------------------------------------------------------------
    # NodeContext glue
    # ------------------------------------------------------------------
    def context(self) -> NodeContext:
        return NodeContext(
            self.node_id,
            send_fn=lambda src, dst, msg: self.send(dst, msg),
            schedule_fn=self._schedule,
            now_fn=lambda: self.loop.time() * 1000.0,
        )

    def _schedule(self, delay_ms: float, callback: Callable[..., None],
                  *args: Any) -> _AsyncioTimer:
        timer_box: Dict[str, _AsyncioTimer] = {}

        def fire() -> None:
            timer_box["timer"].mark_fired()
            callback(*args)

        handle = self.loop.call_later(delay_ms / 1000.0, fire)
        timer = _AsyncioTimer(handle)
        timer_box["timer"] = timer
        return timer

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen.  Port 0 requests an OS-assigned (ephemeral)
        port; the node's entry in the shared address map is updated with
        the real port so peers that dial later reach it.  Fixed ports in
        the ephemeral range (32768+ on Linux) collide with the kernel's
        own outgoing-port allocation under load, so port 0 is the
        reliable choice for tests and local scenario runs."""
        host, port = self.address
        self._server = await asyncio.start_server(
            self._on_connection, host, port)
        if port == 0:
            port = self._server.sockets[0].getsockname()[1]
            self.address = (host, port)
            self.addresses[self.node_id] = self.address

    async def flush_sends(self, timeout: float = 2.0) -> None:
        """Wait (bounded) for in-flight send tasks to finish -- the
        graceful-drain half of shutdown, before :meth:`stop` cancels
        whatever is still pending."""
        pending = {task for task in self._send_tasks
                   if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=timeout)

    async def stop(self) -> None:
        self._closed = True
        for task in list(self._send_tasks):
            task.cancel()
        self._send_tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise TransportError(
                        f"frame of {length} bytes exceeds limit")
                body = await reader.readexactly(length)
                self._dispatch(body)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Normal at shutdown: asyncio.run cancels the per-connection
            # reader tasks; swallowing keeps the loop teardown quiet.
            pass
        finally:
            writer.close()

    def _dispatch(self, body: bytes) -> None:
        sender, learned, wire, trace = decode_frame_traced(body)
        # Frames carry the sender's *listen* address so multi-process
        # deployments (host maps) learn routes from traffic instead of
        # needing every ephemeral port configured up front.
        if self.addresses.get(sender) != learned:
            self.addresses[sender] = learned
        if self.instruments.enabled:
            # Hello frames count as "heard from" too: reachability is
            # about the peer being alive, not about payload traffic.
            self.last_rx_ms[sender] = self.loop.time() * 1000.0
        if wire is None:
            return  # address announcement only; no protocol payload
        message = decode(wire)
        self.frames_received += 1
        if self.instruments.enabled:
            self.instruments.frame_received()
        if self.handler is None:
            return
        tracer = self.tracer
        if trace is not None and tracer.enabled:
            # Restore the sender's causal context around delivery so
            # handler-side spans parent to the right request.
            prev = tracer.set_current(trace_context_from_bytes(trace))
            try:
                self.handler(sender, message)
            finally:
                tracer.set_current(prev)
        else:
            self.handler(sender, message)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def send(self, dst: str, message: Any) -> None:
        """Fire-and-forget send (queued on the event loop)."""
        if self._closed:
            # A late protocol timer firing after teardown must not
            # spawn fresh send tasks into a stopped deployment.
            return
        if dst not in self.addresses:
            if not self.strict_destinations:
                # Multi-process deployment: the peer's address has not
                # been learned yet; the network is quasi-reliable, so
                # drop and let protocol retries recover.
                self.frames_dropped += 1
                if self.instruments.enabled:
                    self.instruments.frame_dropped()
                return
            raise TransportError(f"unknown destination {dst!r}")
        trace: Optional[bytes] = None
        tracer = self.tracer
        if tracer.enabled:
            # Capture the causal context *now*, synchronously -- by
            # the time the send task runs, the handler that caused
            # this send has long since restored a different context.
            ctx = tracer.current()
            if ctx is not None:
                trace = trace_context_to_bytes(ctx)
        task = self.loop.create_task(self._send(dst, message,
                                                trace=trace))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    def announce(self, dst: str) -> None:
        """Send an address-only hello frame to ``dst`` so it learns
        this node's listen address before any protocol traffic."""
        if self._closed or dst not in self.addresses:
            return
        task = self.loop.create_task(self._send(dst, None, hello=True))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send(self, dst: str, message: Any,
                    hello: bool = False,
                    trace: Optional[bytes] = None) -> None:
        frame = encode_frame(self.node_id, self.address,
                             None if hello else message, trace=trace)
        if self.shaper is not None and not hello:
            # The netem seam: one send becomes zero, one, or two
            # deliveries, each delayed on the event loop.  Per-send
            # tasks make delayed frames genuinely overtake each other
            # (reordering) like a real lossy path.
            plan = self.shaper.plan(self.node_id, dst, len(frame),
                                    self.loop.time() * 1000.0)
            if not plan:
                self.frames_dropped += 1
                if self.instruments.enabled:
                    self.instruments.frame_dropped()
                return
            for extra in plan[1:]:  # duplicated copies ride alone
                self._spawn_copy(dst, frame, extra)
            if plan[0] > 0.0:
                await asyncio.sleep(plan[0] / 1000.0)
            if self._closed:
                return
        await self._write_frame(dst, frame)

    def _spawn_copy(self, dst: str, frame: bytes,
                    delay_ms: float) -> None:
        """Schedule a duplicated frame as its own send task."""

        async def copy() -> None:
            if delay_ms > 0.0:
                await asyncio.sleep(delay_ms / 1000.0)
            if not self._closed:
                await self._write_frame(dst, frame)

        task = self.loop.create_task(copy())
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _write_frame(self, dst: str, frame: bytes) -> None:
        try:
            writer = await self._writer_for(dst)
            writer.write(_HEADER.pack(len(frame)) + frame)
            await writer.drain()
            self.frames_sent += 1
            if self.instruments.enabled:
                self.instruments.frame_sent()
        except (ConnectionError, OSError):
            # Quasi-reliable network: a dead peer just loses messages;
            # protocol timeouts recover.  Drop the cached writer so the
            # next send re-dials.
            self._writers.pop(dst, None)

    async def _writer_for(self, dst: str) -> asyncio.StreamWriter:
        lock = self._dial_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is not None and not writer.is_closing():
                return writer
            host, port = self.addresses[dst]
            _, writer = await asyncio.open_connection(host, port)
            self._writers[dst] = writer
            return writer


class AsyncioCluster:
    """Convenience wrapper: a full protocol deployment on localhost.

    Registry-driven exactly like the simulator's cluster builder: any
    protocol registered in :mod:`repro.protocols.registry` deploys on
    real sockets with no per-protocol branching here.

    >>> cluster = AsyncioCluster(protocol="pbft", num_replicas=4)
    >>> await cluster.start()
    >>> client = await cluster.add_client("c0")
    >>> result = await cluster.request(client, "put", "k", "v")

    ``base_port=0`` (the default) binds every node to an OS-assigned
    port, so concurrent clusters never collide; pass a fixed base port
    only when peers outside this process need predictable addresses.
    ``config_overrides`` are forwarded to :class:`ProtocolConfig`
    (timeouts, ``checkpoint_interval``, ``batch_size``, ...).

    **Host maps** lift the localhost-only restriction: ``host_map``
    pins named replicas to explicit ``"host:port"`` addresses; those
    replicas are *not* started in this process by default (another
    process -- ``python -m repro serve`` -- runs them at that address)
    but every local node knows how to dial them.  ``start_replicas``
    overrides which replicas this process instantiates (the serve side
    passes the hosted subset).  Frames carry the sender's listen
    address, so ephemeral-port peers (clients) are learned from
    traffic; :meth:`announce` primes remote replicas before load.

    ``netem`` (a :class:`repro.netem.NetemProfile`) attaches a
    :class:`repro.netem.LinkShaper` shared by every node, seeded from
    ``netem_seed``; ``regions`` labels nodes for region-token rule
    matching.
    """

    BASE_PORT = 41200

    def __init__(self, protocol: str = "ezbft",
                 num_replicas: int = 4,
                 host: str = "127.0.0.1",
                 base_port: int = 0,
                 statemachine_factory: Optional[Callable[[], Any]] = None,
                 host_map: Optional[Dict[str, Any]] = None,
                 start_replicas: Optional[Tuple[str, ...]] = None,
                 regions: Optional[Dict[str, str]] = None,
                 netem: Optional[Any] = None,
                 netem_seed: int = 0,
                 **config_overrides: Any) -> None:
        from repro.config import ProtocolConfig
        from repro.crypto.keys import KeyRegistry
        from repro.protocols.registry import get_protocol
        from repro.statemachine.kvstore import KVStore

        self.protocol = protocol
        self.spec = get_protocol(protocol)
        self.host = host
        self.statemachine_factory = statemachine_factory or KVStore
        self.replica_ids = tuple(f"r{i}" for i in range(num_replicas))
        defaults: Dict[str, Any] = dict(
            slow_path_timeout=300.0, retry_timeout=2000.0,
            suspicion_timeout=1000.0, view_change_timeout=2000.0)
        defaults.update(config_overrides)
        self.config = ProtocolConfig(
            replica_ids=self.replica_ids, **defaults)
        self.registry = KeyRegistry()
        self.host_map: Dict[str, Address] = {
            rid: parse_hostport(value)
            for rid, value in (host_map or {}).items()
        }
        for rid in self.host_map:
            if rid not in self.replica_ids:
                raise TransportError(
                    f"host map names unknown replica {rid!r} "
                    f"(have {self.replica_ids})")
        self.addresses: Dict[str, Address] = {}
        for i, rid in enumerate(self.replica_ids):
            if rid in self.host_map:
                self.addresses[rid] = self.host_map[rid]
            else:
                self.addresses[rid] = (
                    host, base_port + i if base_port else 0)
        if start_replicas is None:
            self.start_replicas = tuple(
                rid for rid in self.replica_ids
                if rid not in self.host_map)
        else:
            self.start_replicas = tuple(start_replicas)
            for rid in self.start_replicas:
                if rid not in self.replica_ids:
                    raise TransportError(
                        f"start_replicas names unknown replica "
                        f"{rid!r} (have {self.replica_ids})")
        #: Replicas expected to run in another process.
        self.remote_replica_ids = tuple(
            rid for rid in self.replica_ids
            if rid not in self.start_replicas)
        #: Node id -> region label (netem rule matching only; TCP has
        #: no latency matrix).
        self.regions: Dict[str, str] = dict(regions or {})
        #: With remote peers, unknown/unlearned destinations drop like
        #: a quasi-reliable network instead of raising.
        self._strict = not self.host_map
        self.shaper: Optional[Any] = None
        if netem is not None:
            from repro.netem import LinkShaper
            self.shaper = LinkShaper(netem, seed=netem_seed,
                                     region_of=self.regions.get)
        self._next_port = base_port + num_replicas if base_port else 0
        self.nodes: Dict[str, AsyncioNode] = {}
        self.replicas: Dict[str, Any] = {}
        self.clients: Dict[str, Any] = {}

    def _wiring(self, target_replica: Optional[str] = None):
        from repro.protocols.registry import WiringContext
        from repro.statemachine.interference import KVInterference

        return WiringContext(
            config=self.config,
            primary_index=0,
            interference=KVInterference(),
            target_replica=target_replica,
        )

    async def start(self) -> None:
        wiring = self._wiring()
        for rid in self.start_replicas:
            node = AsyncioNode(rid, self.addresses[rid], self.addresses,
                               shaper=self.shaper,
                               strict_destinations=self._strict)
            # Key seeds are deterministic, so every process of a
            # multi-machine deployment derives the same registry.
            keypair = self.registry.create(rid, seed=b"tcp-demo")
            replica = self.spec.replica_cls(
                rid, self.config, node.context(), keypair,
                self.registry,
                statemachine=self.statemachine_factory(),
                **self.spec.replica_kwargs(wiring))
            node.handler = replica.on_message
            await node.start()
            self.nodes[rid] = node
            self.replicas[rid] = replica
        for rid in self.remote_replica_ids:
            # Remote replicas still need registry entries so local
            # nodes can verify their signatures.
            self.registry.create(rid, seed=b"tcp-demo")

    async def add_client(self, client_id: str,
                         target_replica: Optional[str] = None,
                         region: Optional[str] = None):
        address = (self.host, self._next_port)
        if self._next_port:
            self._next_port += 1
        self.addresses[client_id] = address
        if region is not None:
            self.regions[client_id] = region
        node = AsyncioNode(client_id, address, self.addresses,
                           shaper=self.shaper,
                           strict_destinations=self._strict)
        keypair = self.registry.create(client_id, seed=b"tcp-demo")
        wiring = self._wiring(
            target_replica=target_replica or self.replica_ids[0])
        client = self.spec.client_cls(
            client_id, self.config, node.context(), keypair,
            self.registry, **self.spec.client_kwargs(wiring))
        node.handler = client.on_message
        await node.start()
        self.nodes[client_id] = node
        self.clients[client_id] = client
        return client

    def attach_shaper(self, shaper: Any) -> None:
        """Install (or replace) the netem seam on every node, live.
        Fault injectors use this to materialize a shaper lazily when a
        chaos event fires on a scenario that declared no profile."""
        self.shaper = shaper
        for node in self.nodes.values():
            node.shaper = shaper

    def announce_remote(self) -> None:
        """Prime every remote replica with every local node's listen
        address (hello frames), so the first protocol message a remote
        replica emits already has somewhere to go."""
        for node in self.nodes.values():
            for rid in self.remote_replica_ids:
                node.announce(rid)

    async def request(self, client, op: str, key: str = "",
                      value: Any = None, timeout: float = 10.0):
        """Submit one command and await its (result, latency, path)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def on_delivery(command, result, latency, path):
            if not future.done():
                future.set_result((result, latency, path))

        client.on_delivery = on_delivery
        client.submit(client.next_command(op, key, value))
        return await asyncio.wait_for(future, timeout=timeout)

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()
