"""Asyncio TCP transport: run the protocol objects over real sockets.

Wire format: 4-byte big-endian length prefix + UTF-8 JSON
``{"sender": <node-id>, "message": <message wire dict>}``.  Messages are
reconstructed through the same :func:`repro.messages.decode` registry
the simulator's round-trip tests exercise, so anything that runs on the
simulator runs here unchanged.

The protocol classes are synchronous event handlers, so the adapter is
thin: incoming frames invoke ``handler(sender, message)`` on the event
loop; ``NodeContext.set_timer`` maps to ``loop.call_later``; the clock
is ``loop.time()`` scaled to milliseconds.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.cluster.node import NodeContext
from repro.errors import TransportError
from repro.messages.base import decode

_HEADER = struct.Struct(">I")
#: Frames above this size are rejected (corrupt peer / DoS guard).
MAX_FRAME_BYTES = 16 * 1024 * 1024

Address = Tuple[str, int]


class _AsyncioTimer:
    """Adapts ``asyncio.TimerHandle`` to the NodeContext Timer protocol."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._fired = False

    def mark_fired(self) -> None:
        self._fired = True

    def cancel(self) -> None:
        self._handle.cancel()
        self._fired = True

    @property
    def pending(self) -> bool:
        return not self._fired and not self._handle.cancelled()


class AsyncioNode:
    """One protocol node bound to a TCP listening socket."""

    def __init__(self, node_id: str, address: Address,
                 addresses: Dict[str, Address],
                 loop: Optional[asyncio.AbstractEventLoop] = None
                 ) -> None:
        self.node_id = node_id
        self.address = address
        self.addresses = addresses
        self._loop = loop
        self.handler: Optional[Callable[[str, Any], None]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Dict[str, asyncio.StreamWriter] = {}
        #: Per-destination dial lock: two concurrent sends to an
        #: uncached destination must not open duplicate connections
        #: (the loser's writer would leak, never closed).
        self._dial_locks: Dict[str, asyncio.Lock] = {}
        #: Strong references to in-flight send tasks.  The event loop
        #: only keeps weak references to tasks, so a fire-and-forget
        #: ``create_task`` can be garbage-collected mid-send.
        self._send_tasks: Set[asyncio.Task] = set()
        self._closed = False
        self.frames_received = 0
        self.frames_sent = 0

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The bound event loop, resolved lazily from the running loop
        (``asyncio.get_event_loop`` outside a running loop is
        deprecated and binds to the wrong loop under ``asyncio.run``)."""
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    # ------------------------------------------------------------------
    # NodeContext glue
    # ------------------------------------------------------------------
    def context(self) -> NodeContext:
        return NodeContext(
            self.node_id,
            send_fn=lambda src, dst, msg: self.send(dst, msg),
            schedule_fn=self._schedule,
            now_fn=lambda: self.loop.time() * 1000.0,
        )

    def _schedule(self, delay_ms: float, callback: Callable[..., None],
                  *args: Any) -> _AsyncioTimer:
        timer_box: Dict[str, _AsyncioTimer] = {}

        def fire() -> None:
            timer_box["timer"].mark_fired()
            callback(*args)

        handle = self.loop.call_later(delay_ms / 1000.0, fire)
        timer = _AsyncioTimer(handle)
        timer_box["timer"] = timer
        return timer

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen.  Port 0 requests an OS-assigned (ephemeral)
        port; the node's entry in the shared address map is updated with
        the real port so peers that dial later reach it.  Fixed ports in
        the ephemeral range (32768+ on Linux) collide with the kernel's
        own outgoing-port allocation under load, so port 0 is the
        reliable choice for tests and local scenario runs."""
        host, port = self.address
        self._server = await asyncio.start_server(
            self._on_connection, host, port)
        if port == 0:
            port = self._server.sockets[0].getsockname()[1]
            self.address = (host, port)
            self.addresses[self.node_id] = self.address

    async def stop(self) -> None:
        self._closed = True
        for task in list(self._send_tasks):
            task.cancel()
        self._send_tasks.clear()
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                header = await reader.readexactly(_HEADER.size)
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_BYTES:
                    raise TransportError(
                        f"frame of {length} bytes exceeds limit")
                body = await reader.readexactly(length)
                self._dispatch(body)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Normal at shutdown: asyncio.run cancels the per-connection
            # reader tasks; swallowing keeps the loop teardown quiet.
            pass
        finally:
            writer.close()

    def _dispatch(self, body: bytes) -> None:
        frame = json.loads(body.decode("utf-8"))
        sender = frame["sender"]
        message = decode(frame["message"])
        self.frames_received += 1
        if self.handler is not None:
            self.handler(sender, message)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def send(self, dst: str, message: Any) -> None:
        """Fire-and-forget send (queued on the event loop)."""
        if self._closed:
            # A late protocol timer firing after teardown must not
            # spawn fresh send tasks into a stopped deployment.
            return
        if dst not in self.addresses:
            raise TransportError(f"unknown destination {dst!r}")
        task = self.loop.create_task(self._send(dst, message))
        self._send_tasks.add(task)
        task.add_done_callback(self._send_tasks.discard)

    async def _send(self, dst: str, message: Any) -> None:
        frame = json.dumps({
            "sender": self.node_id,
            "message": message.to_wire(),
        }).encode("utf-8")
        try:
            writer = await self._writer_for(dst)
            writer.write(_HEADER.pack(len(frame)) + frame)
            await writer.drain()
            self.frames_sent += 1
        except (ConnectionError, OSError):
            # Quasi-reliable network: a dead peer just loses messages;
            # protocol timeouts recover.  Drop the cached writer so the
            # next send re-dials.
            self._writers.pop(dst, None)

    async def _writer_for(self, dst: str) -> asyncio.StreamWriter:
        lock = self._dial_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            writer = self._writers.get(dst)
            if writer is not None and not writer.is_closing():
                return writer
            host, port = self.addresses[dst]
            _, writer = await asyncio.open_connection(host, port)
            self._writers[dst] = writer
            return writer


class AsyncioCluster:
    """Convenience wrapper: a full protocol deployment on localhost.

    Registry-driven exactly like the simulator's cluster builder: any
    protocol registered in :mod:`repro.protocols.registry` deploys on
    real sockets with no per-protocol branching here.

    >>> cluster = AsyncioCluster(protocol="pbft", num_replicas=4)
    >>> await cluster.start()
    >>> client = await cluster.add_client("c0")
    >>> result = await cluster.request(client, "put", "k", "v")

    ``base_port=0`` (the default) binds every node to an OS-assigned
    port, so concurrent clusters never collide; pass a fixed base port
    only when peers outside this process need predictable addresses.
    ``config_overrides`` are forwarded to :class:`ProtocolConfig`
    (timeouts, ``checkpoint_interval``, ``batch_size``, ...).
    """

    BASE_PORT = 41200

    def __init__(self, protocol: str = "ezbft",
                 num_replicas: int = 4,
                 host: str = "127.0.0.1",
                 base_port: int = 0,
                 statemachine_factory: Optional[Callable[[], Any]] = None,
                 **config_overrides: Any) -> None:
        from repro.config import ProtocolConfig
        from repro.crypto.keys import KeyRegistry
        from repro.protocols.registry import get_protocol
        from repro.statemachine.kvstore import KVStore

        self.protocol = protocol
        self.spec = get_protocol(protocol)
        self.host = host
        self.statemachine_factory = statemachine_factory or KVStore
        self.replica_ids = tuple(f"r{i}" for i in range(num_replicas))
        defaults: Dict[str, Any] = dict(
            slow_path_timeout=300.0, retry_timeout=2000.0,
            suspicion_timeout=1000.0, view_change_timeout=2000.0)
        defaults.update(config_overrides)
        self.config = ProtocolConfig(
            replica_ids=self.replica_ids, **defaults)
        self.registry = KeyRegistry()
        self.addresses: Dict[str, Address] = {
            rid: (host, base_port + i if base_port else 0)
            for i, rid in enumerate(self.replica_ids)
        }
        self._next_port = base_port + num_replicas if base_port else 0
        self.nodes: Dict[str, AsyncioNode] = {}
        self.replicas: Dict[str, Any] = {}
        self.clients: Dict[str, Any] = {}

    def _wiring(self, target_replica: Optional[str] = None):
        from repro.protocols.registry import WiringContext
        from repro.statemachine.interference import KVInterference

        return WiringContext(
            config=self.config,
            primary_index=0,
            interference=KVInterference(),
            target_replica=target_replica,
        )

    async def start(self) -> None:
        wiring = self._wiring()
        for rid in self.replica_ids:
            node = AsyncioNode(rid, self.addresses[rid], self.addresses)
            keypair = self.registry.create(rid, seed=b"tcp-demo")
            replica = self.spec.replica_cls(
                rid, self.config, node.context(), keypair,
                self.registry,
                statemachine=self.statemachine_factory(),
                **self.spec.replica_kwargs(wiring))
            node.handler = replica.on_message
            await node.start()
            self.nodes[rid] = node
            self.replicas[rid] = replica

    async def add_client(self, client_id: str,
                         target_replica: Optional[str] = None):
        address = (self.host, self._next_port)
        if self._next_port:
            self._next_port += 1
        self.addresses[client_id] = address
        node = AsyncioNode(client_id, address, self.addresses)
        keypair = self.registry.create(client_id, seed=b"tcp-demo")
        wiring = self._wiring(
            target_replica=target_replica or self.replica_ids[0])
        client = self.spec.client_cls(
            client_id, self.config, node.context(), keypair,
            self.registry, **self.spec.client_kwargs(wiring))
        node.handler = client.on_message
        await node.start()
        self.nodes[client_id] = node
        self.clients[client_id] = client
        return client

    async def request(self, client, op: str, key: str = "",
                      value: Any = None, timeout: float = 10.0):
        """Submit one command and await its (result, latency, path)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def on_delivery(command, result, latency, path):
            if not future.done():
                future.set_result((result, latency, path))

        client.on_delivery = on_delivery
        client.submit(client.next_command(op, key, value))
        return await asyncio.wait_for(future, timeout=timeout)

    async def stop(self) -> None:
        for node in self.nodes.values():
            await node.stop()
