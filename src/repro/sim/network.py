"""Simulated WAN: latency, jitter, per-node CPU queues, drops, partitions.

The network model charges two costs per message:

1. **Propagation** -- one-way latency drawn from a :class:`LatencyMatrix`
   (plus optional jitter) between the source and destination *regions*.
2. **Processing** -- CPU time at the destination, modeled as a single-server
   FIFO queue per node.  This is what makes a single-primary protocol
   saturate as client count grows (Figure 6) and caps per-node throughput
   (Figure 7); without it every protocol would scale indefinitely.

Byzantine *network* behaviour (drops, partitions) is injected here;
byzantine *node* behaviour lives in :mod:`repro.byzantine`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.errors import ConfigurationError, TransportError
from repro.sim.events import Simulator
from repro.sim.latency import LatencyMatrix
from repro.trace.tracer import NULL_TRACER


@dataclass
class CpuModel:
    """Per-message CPU cost model (all values in milliseconds).

    ``base_ms`` is charged for every message; ``per_unit_ms`` is multiplied
    by the message's ``cpu_cost_units`` attribute (defaults to 1) so that
    expensive messages -- e.g. a commit certificate carrying 3f+1 signatures
    to verify -- can be made proportionally costlier.

    The defaults approximate the paper's testbed: an m4.2xlarge verifies an
    HMAC in ~2us and an ECDSA signature in ~100us; protocol messages carry
    one signature plus MAC authenticators, so ~0.1ms/message is the right
    order of magnitude.
    """

    base_ms: float = 0.02
    per_unit_ms: float = 0.08

    def cost(self, message: Any) -> float:
        units = getattr(message, "cpu_cost_units", 1)
        return self.base_ms + self.per_unit_ms * units

    @classmethod
    def free(cls) -> "CpuModel":
        """A zero-cost model; useful for pure latency-shape tests."""
        return cls(base_ms=0.0, per_unit_ms=0.0)


@dataclass
class NetworkConditions:
    """Tunable adverse conditions.

    ``drop_probability`` applies to every message independently.
    ``partitions`` is a set of directed ``(src, dst)`` node-id pairs whose
    messages are silently dropped; use :meth:`SimNetwork.isolate` to cut a
    node off entirely.
    """

    jitter_fraction: float = 0.0
    drop_probability: float = 0.0
    partitions: Set[Tuple[str, str]] = field(default_factory=set)


@dataclass
class _NodeRecord:
    region: str
    handler: Callable[[str, Any], None]
    busy_until: float = 0.0
    messages_received: int = 0
    messages_dropped: int = 0
    cpu_busy_ms: float = 0.0


class SimNetwork:
    """Message fabric connecting simulated nodes.

    Nodes register with a region and a handler ``handler(sender_id, msg)``.
    ``send`` schedules delivery after propagation + queueing + processing.
    The network is *quasi-reliable* exactly as the paper's model: between
    correct nodes each sent message is delivered exactly once (unless drops
    or partitions are explicitly injected).
    """

    def __init__(self, sim: Simulator, latency: LatencyMatrix,
                 cpu: Optional[CpuModel] = None,
                 conditions: Optional[NetworkConditions] = None,
                 seed: int = 0,
                 shaper: Optional[Any] = None) -> None:
        self.sim = sim
        self.latency = latency
        self.cpu = cpu if cpu is not None else CpuModel()
        self.conditions = conditions if conditions is not None \
            else NetworkConditions()
        self._rng = random.Random(seed)
        self._nodes: Dict[str, _NodeRecord] = {}
        #: Optional :class:`repro.netem.LinkShaper`: the link-level
        #: emulation seam (loss / jitter / reorder / duplication /
        #: bandwidth), applied on top of the latency matrix.  Fault
        #: injectors may attach one mid-run.
        self.shaper = shaper
        #: Tracing seam (no-op by default): when live, each send
        #: captures the tracer's current causal context and the fabric
        #: restores it around the destination handler -- the sim
        #: analogue of the TCP codec's TRACED frames.
        self.tracer = NULL_TRACER
        self.messages_sent = 0
        self.messages_delivered = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Registration and topology control
    # ------------------------------------------------------------------
    def register(self, node_id: str, region: str,
                 handler: Callable[[str, Any], None]) -> None:
        """Attach a node to the fabric.  ``region`` must be in the matrix."""
        if node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node_id!r}")
        if region not in self.latency.regions:
            raise ConfigurationError(
                f"region {region!r} not in latency matrix "
                f"{self.latency.name!r}")
        self._nodes[node_id] = _NodeRecord(region=region, handler=handler)

    def region_of(self, node_id: str) -> str:
        return self._record(node_id).region

    def handler_of(self, node_id: str) -> Callable[[str, Any], None]:
        """A node's current message handler (so fault injectors can save
        it before :meth:`set_handler` and restore it on recovery)."""
        return self._record(node_id).handler

    def set_handler(self, node_id: str,
                    handler: Callable[[str, Any], None]) -> None:
        """Replace a node's message handler.

        Used by :mod:`repro.byzantine` to swap a correct replica for a
        faulty one, and by tests that interpose on deliveries.
        """
        self._record(node_id).handler = handler

    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def isolate(self, node_id: str) -> None:
        """Partition ``node_id`` from every other registered node."""
        for other in self._nodes:
            if other != node_id:
                self.conditions.partitions.add((node_id, other))
                self.conditions.partitions.add((other, node_id))

    def heal(self, node_id: str) -> None:
        """Undo :meth:`isolate` for ``node_id``."""
        self.conditions.partitions = {
            (a, b) for (a, b) in self.conditions.partitions
            if a != node_id and b != node_id
        }

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Any,
             size_bytes: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        Unknown destinations raise :class:`TransportError` -- a correct
        protocol never addresses a nonexistent node, so this surfaces bugs
        early instead of silently losing messages.
        """
        src_rec = self._record(src)
        dst_rec = self._record(dst)
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        if (src, dst) in self.conditions.partitions:
            dst_rec.messages_dropped += 1
            return
        if self.conditions.drop_probability > 0.0 and \
                self._rng.random() < self.conditions.drop_probability:
            dst_rec.messages_dropped += 1
            return

        tracer = self.tracer
        tctx = tracer.current() if tracer.enabled else None
        propagation = self.latency.sample_one_way(
            src_rec.region, dst_rec.region, self._rng,
            self.conditions.jitter_fraction)
        if self.shaper is not None:
            # Link-level emulation: the shaper turns one send into
            # zero (lost), one, or two (duplicated) deliveries, each
            # with an extra delay on top of propagation.  All its
            # randomness is a seeded stream, so the run stays
            # deterministic.
            plan = self.shaper.plan(src, dst, size_bytes, self.sim.now)
            if not plan:
                dst_rec.messages_dropped += 1
                return
            for extra in plan:
                self.sim.schedule(propagation + extra, self._arrive,
                                  src, dst, message, tctx)
            return
        # CPU queueing is decided when the message *arrives*, not when it
        # is sent -- otherwise a distant message sent earlier would
        # reserve the CPU ahead of a nearby message that physically
        # arrives first.
        self.sim.schedule(propagation, self._arrive, src, dst, message,
                          tctx)

    def _arrive(self, src: str, dst: str, message: Any,
                tctx: Any = None) -> None:
        """Message hits the destination NIC: enter the CPU FIFO queue."""
        rec = self._nodes.get(dst)
        if rec is None:  # node deregistered mid-flight; drop silently
            return
        proc = self.cpu.cost(message)
        start = max(self.sim.now, rec.busy_until)
        finish = start + proc
        rec.busy_until = finish
        rec.cpu_busy_ms += proc
        self.sim.schedule_at(finish, self._deliver, src, dst, message,
                             tctx)

    def broadcast(self, src: str, dsts: Tuple[str, ...], message: Any,
                  size_bytes: int = 0) -> None:
        """Send the same message to several destinations."""
        for dst in dsts:
            self.send(src, dst, message, size_bytes=size_bytes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self, node_id: str) -> Dict[str, float]:
        rec = self._record(node_id)
        return {
            "messages_received": rec.messages_received,
            "messages_dropped": rec.messages_dropped,
            "cpu_busy_ms": rec.cpu_busy_ms,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, node_id: str) -> _NodeRecord:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TransportError(f"unknown node {node_id!r}") from None

    def _deliver(self, src: str, dst: str, message: Any,
                 tctx: Any = None) -> None:
        rec = self._nodes.get(dst)
        if rec is None:  # node deregistered mid-flight; drop silently
            return
        rec.messages_received += 1
        self.messages_delivered += 1
        tracer = self.tracer
        if tctx is not None and tracer.enabled:
            # Restore the sender's causal context around delivery (the
            # sim fabric's analogue of a TRACED frame).
            prev = tracer.set_current(tctx)
            try:
                rec.handler(src, message)
            finally:
                tracer.set_current(prev)
        else:
            rec.handler(src, message)
