"""Discrete-event simulation kernel.

The kernel is a classic calendar queue: callbacks are scheduled at absolute
virtual times and executed in time order.  Ties are broken by insertion
order, which keeps runs fully deterministic.  Virtual time is a ``float``
in **milliseconds** throughout the library, matching the unit the paper
reports latencies in.

The dispatch loops are the innermost frames of every simulated run, so
they are written for low constant overhead: one shared push path (no
args-tuple re-wrapping between :meth:`Simulator.schedule` and
:meth:`Simulator.schedule_at`), a single "dead entry" predicate
(``callback is None`` covers both fired and cancelled events, so the
outer run loop and :meth:`Simulator.step` can never disagree on what
counts as executed), and local aliasing of the heap primitives.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    reaches the front.  This keeps ``cancel`` O(1), which matters because
    protocol timers are cancelled far more often than they fire.

    ``callback is None`` is the kernel's single liveness predicate: it
    holds exactly when the event has fired or been cancelled, so every
    skip path tests one attribute instead of two.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers do not pin large closures.
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """True until the event has fired or been cancelled."""
        return self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        # Hand-rolled instead of tuple comparison: this runs O(log n)
        # times per heap operation and tuple construction dominates it.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else \
            "pending" if self.callback is not None else "fired"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[EventHandle] = []
        self._seq = count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (possibly cancelled) heap entries."""
        return len(self._queue)

    def _push(self, time: float, callback: Callable[..., None],
              args: tuple) -> EventHandle:
        """Shared push path: both schedule flavors land here with the
        args tuple intact (no *args unpack/repack round trip)."""
        handle = EventHandle(time, next(self._seq), callback, args)
        heappush(self._queue, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay:
            if delay < 0:
                raise SimulationError(
                    f"cannot schedule into the past: {delay}")
            time = self._now + delay
        else:
            # Zero-delay fast path: same-instant chaining (CPU queues,
            # immediate sends) is the most common schedule call.
            time = self._now
        return self._push(time, callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})")
        return self._push(time, callback, args)

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``False`` when the queue holds no live events.
        """
        queue = self._queue
        while queue:
            handle = heappop(queue)
            callback = handle.callback
            if callback is None:  # fired or cancelled: not an event
                continue
            self._now = handle.time
            handle.callback = None  # mark as fired
            self._events_processed += 1
            callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed in this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        observe a consistent timeline.

        Dead heap entries (cancelled timers) are discarded by the same
        predicate :meth:`step` uses and are never counted, so the
        per-call ``max_events`` budget and the global
        :attr:`events_processed` counter move in lockstep.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        queue = self._queue
        executed = 0
        try:
            while queue:
                head = queue[0]
                callback = head.callback
                if callback is None:  # fired or cancelled: not an event
                    heappop(queue)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    return
                heappop(queue)
                self._now = head.time
                head.callback = None  # mark as fired
                self._events_processed += 1
                executed += 1
                callback(*head.args)
        finally:
            if until is not None and self._now < until:
                self._now = until
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; returns the number of events run.

        ``max_events`` guards against livelock in buggy protocols: exceeding
        it raises :class:`SimulationError` instead of spinning forever.
        """
        executed = 0
        queue = self._queue
        while queue:
            handle = heappop(queue)
            callback = handle.callback
            if callback is None:
                continue
            self._now = handle.time
            handle.callback = None
            self._events_processed += 1
            executed += 1
            callback(*handle.args)
            if executed > max_events:
                raise SimulationError(
                    f"simulation did not converge within {max_events} events")
        return executed
