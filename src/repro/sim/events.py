"""Discrete-event simulation kernel.

The kernel is a classic calendar queue: callbacks are scheduled at absolute
virtual times and executed in time order.  Ties are broken by insertion
order, which keeps runs fully deterministic.  Virtual time is a ``float``
in **milliseconds** throughout the library, matching the unit the paper
reports latencies in.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the entry stays in the heap but is skipped when it
    reaches the front.  This keeps ``cancel`` O(1), which matters because
    protocol timers are cancelled far more often than they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers do not pin large closures.
        self.callback = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """True until the event has fired or been cancelled."""
        return not self.cancelled and self.callback is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, fired.append, "a")
    >>> _ = sim.schedule(1.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired (possibly cancelled) heap entries."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        handle = EventHandle(self._now + delay, next(self._seq),
                             callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})")
        return self.schedule(time - self._now, callback, *args)

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``False`` when the queue holds no live events.
        """
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled or handle.callback is None:
                continue
            self._now = handle.time
            callback, args = handle.callback, handle.args
            handle.callback = None  # mark as fired
            self._events_processed += 1
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed in this call.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the queue drains earlier, so back-to-back ``run`` calls
        observe a consistent timeline.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    return
                head = self._queue[0]
                if head.cancelled or head.callback is None:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if self.step():
                    executed += 1
        finally:
            if until is not None and self._now < until:
                self._now = until
            self._running = False

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Drain the queue completely; returns the number of events run.

        ``max_events`` guards against livelock in buggy protocols: exceeding
        it raises :class:`SimulationError` instead of spinning forever.
        """
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"simulation did not converge within {max_events} events")
        return executed
