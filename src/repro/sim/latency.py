"""Inter-region one-way latency matrices for the paper's AWS deployments.

The paper evaluates on two EC2 region sets:

- **Experiment 1** (Table I, Figures 4, 6, 7): US-East-1 (Virginia),
  ap-northeast-1 (Japan/Tokyo), ap-south-1 (India/Mumbai),
  ap-southeast-2 (Australia/Sydney).
- **Experiment 2** (Figure 5): US-East-2 (Ohio), eu-west-1 (Ireland),
  eu-central-1 (Frankfurt), ap-south-1 (India/Mumbai).

We cannot re-run on EC2, so the Experiment-1 matrix is *calibrated against
the paper's own Table I*: Table I reports Zyzzyva's client latency, which in
a fault-free run equals::

    lat(client -> primary) + max over replicas R of
        (lat(primary -> R) + lat(R -> client))

plus a few milliseconds of per-hop processing.  Solving that system for the
one-way latencies yields the values below, which also agree with publicly
documented AWS inter-region RTTs (halved) to within ~10%.  The
Experiment-2 matrix uses the same public RTT data.

All values are one-way delays in **milliseconds**.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.errors import ConfigurationError

# Region name constants -- Experiment 1 (Table I, Fig. 4, 6, 7).
VIRGINIA = "virginia"
TOKYO = "tokyo"
MUMBAI = "mumbai"
SYDNEY = "sydney"

# Region name constants -- Experiment 2 (Fig. 5).
OHIO = "ohio"
IRELAND = "ireland"
FRANKFURT = "frankfurt"
# Mumbai appears in both deployments.

#: Default one-way latency between two nodes in the same region (ms).
INTRA_REGION_MS = 0.4


@dataclass(frozen=True)
class LatencyMatrix:
    """Symmetric one-way latency matrix between named regions.

    ``pairs`` maps an unordered region pair to the one-way latency in ms.
    Lookups for ``(a, a)`` return :attr:`intra_region_ms`.
    """

    name: str
    regions: Tuple[str, ...]
    pairs: Mapping[Tuple[str, str], float]
    intra_region_ms: float = INTRA_REGION_MS

    def one_way(self, src: str, dst: str) -> float:
        """One-way latency in ms from ``src`` to ``dst``."""
        if src == dst:
            return self.intra_region_ms
        key = (src, dst) if (src, dst) in self.pairs else (dst, src)
        try:
            return self.pairs[key]
        except KeyError:
            raise ConfigurationError(
                f"latency matrix {self.name!r} has no entry for "
                f"{src!r} <-> {dst!r}") from None

    def rtt(self, src: str, dst: str) -> float:
        """Round-trip time in ms between ``src`` and ``dst``."""
        return 2.0 * self.one_way(src, dst)

    def validate(self) -> None:
        """Check that every region pair is present."""
        for a in self.regions:
            for b in self.regions:
                self.one_way(a, b)

    def sample_one_way(self, src: str, dst: str, rng: random.Random,
                       jitter_fraction: float = 0.0) -> float:
        """One-way latency with multiplicative uniform jitter.

        ``jitter_fraction=0.05`` yields latencies uniform in
        ``[0.95 * base, 1.05 * base]``.
        """
        base = self.one_way(src, dst)
        if jitter_fraction <= 0.0:
            return base
        low = 1.0 - jitter_fraction
        high = 1.0 + jitter_fraction
        return base * rng.uniform(low, high)


def _symmetrize(entries: Iterable[Tuple[str, str, float]]
                ) -> Dict[Tuple[str, str], float]:
    out: Dict[Tuple[str, str], float] = {}
    for a, b, ms in entries:
        out[(a, b)] = ms
    return out


#: Experiment 1 deployment: Virginia, Tokyo, Mumbai, Sydney.
#:
#: Calibration check against Table I (Zyzzyva, primary = Virginia):
#: client in Virginia observes ~0.4 + max(100 + 100, 91 + 91, 75 + 75) + eps
#: ~= 200ms -- the paper reports 198ms.
EXPERIMENT1 = LatencyMatrix(
    name="experiment1",
    regions=(VIRGINIA, TOKYO, MUMBAI, SYDNEY),
    pairs=_symmetrize([
        (VIRGINIA, TOKYO, 75.0),
        (VIRGINIA, MUMBAI, 91.0),
        (VIRGINIA, SYDNEY, 100.0),
        (TOKYO, MUMBAI, 62.0),
        (TOKYO, SYDNEY, 52.0),
        (MUMBAI, SYDNEY, 112.0),
    ]),
)

#: Experiment 2 deployment: Ohio, Ireland, Frankfurt, Mumbai.
#:
#: Unlike Experiment 1, these regions have strongly overlapping paths
#: (transatlantic + Europe-India), which is exactly the property the paper
#: calls out when explaining why Zyzzyva-with-Ireland-primary nearly matches
#: ezBFT in Fig. 5a.
EXPERIMENT2 = LatencyMatrix(
    name="experiment2",
    regions=(OHIO, IRELAND, FRANKFURT, MUMBAI),
    pairs=_symmetrize([
        (OHIO, IRELAND, 44.0),
        (OHIO, FRANKFURT, 50.0),
        (OHIO, MUMBAI, 110.0),
        (IRELAND, FRANKFURT, 13.0),
        (IRELAND, MUMBAI, 61.0),
        (FRANKFURT, MUMBAI, 56.0),
    ]),
)

#: Single-region (LAN) deployment used by unit and integration tests.
LOCAL = LatencyMatrix(
    name="local",
    regions=("local",),
    pairs={},
    intra_region_ms=0.1,
)


def scaled_matrix(matrix: LatencyMatrix, factor: float,
                  name: str = "") -> LatencyMatrix:
    """A copy of ``matrix`` with every latency multiplied by ``factor``.

    Used by scenario ``LatencyShift`` fault events to model a WAN-wide
    slowdown (congestion) or speedup mid-run.
    """
    if factor <= 0:
        raise ConfigurationError(
            f"latency scale factor must be positive, got {factor}")
    return LatencyMatrix(
        name=name or f"{matrix.name}*{factor:g}",
        regions=matrix.regions,
        pairs={pair: ms * factor for pair, ms in matrix.pairs.items()},
        intra_region_ms=matrix.intra_region_ms * factor,
    )


def uniform_matrix(regions: Iterable[str], one_way_ms: float,
                   name: str = "uniform",
                   intra_region_ms: float = INTRA_REGION_MS) -> LatencyMatrix:
    """Build a matrix where every cross-region link has the same latency.

    Useful for tests and for ablations isolating step-count effects from
    geography.
    """
    regions = tuple(regions)
    pairs = {}
    for i, a in enumerate(regions):
        for b in regions[i + 1:]:
            pairs[(a, b)] = one_way_ms
    return LatencyMatrix(name=name, regions=regions, pairs=pairs,
                         intra_region_ms=intra_region_ms)
