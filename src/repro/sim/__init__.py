"""Deterministic discrete-event simulation substrate.

This package replaces the paper's AWS EC2 testbed.  It provides:

- :class:`repro.sim.events.Simulator` -- the event-queue kernel with
  cancellable timers and a monotonically advancing virtual clock,
- :mod:`repro.sim.latency` -- calibrated inter-region one-way latency
  matrices for the paper's two AWS deployments,
- :class:`repro.sim.network.SimNetwork` -- the WAN model: latency, jitter,
  per-node CPU queues, message drops and partitions.

All randomness is drawn from seeded :class:`random.Random` instances, so a
simulation run is a pure function of its configuration and seed.
"""

from repro.sim.events import EventHandle, Simulator
from repro.sim.latency import (
    EXPERIMENT1,
    EXPERIMENT2,
    LOCAL,
    LatencyMatrix,
    uniform_matrix,
)
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork

__all__ = [
    "EventHandle",
    "Simulator",
    "LatencyMatrix",
    "EXPERIMENT1",
    "EXPERIMENT2",
    "LOCAL",
    "uniform_matrix",
    "SimNetwork",
    "NetworkConditions",
    "CpuModel",
]
