"""PBFT replica: pre-prepare / prepare / commit three-phase ordering.

Client-visible latency is five communication steps: REQUEST ->
PRE-PREPARE -> PREPARE -> COMMIT -> REPLY, which is why PBFT sits at the
top of Figure 4's latency bars.

Includes checkpointing with log garbage collection and a view-change
protocol (timer-driven, 2f+1 VIEW-CHANGE certificate, NEW-VIEW with
re-issued pre-prepares).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.core.batching import (
    RequestBatcher,
    batch_request_is_authentic,
    fresh_batch_commands,
)
from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.messages.base import SignedPayload
from repro.messages.batching import BatchPrePrepare, BatchRequest
from repro.messages.pbft import (
    NewView,
    PBFTCheckpoint,
    PBFTCommit,
    PBFTReply,
    PBFTRequest,
    PrePrepare,
    Prepare,
    ViewChange,
)
from repro.protocols.base import BaseReplica
from repro.statemachine.base import StateMachine
from repro.statemachine.checkpoint import Checkpoint, CheckpointStore


@dataclass
class _Slot:
    request: Optional[PBFTRequest] = None
    request_digest: Optional[str] = None
    pre_prepare: Optional[PrePrepare] = None
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    executed: bool = False


class PBFTReplica(BaseReplica):
    """One PBFT replica."""

    def __init__(self, node_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, statemachine: StateMachine,
                 initial_view: int = 0) -> None:
        super().__init__(node_id, config, ctx, keypair, registry,
                         statemachine, initial_view)
        self._slots: Dict[int, _Slot] = {}
        self._next_seqno = 0       # primary-side allocator
        self._last_executed = -1   # highest contiguously executed seqno
        self._client_ts: Dict[str, int] = {}
        self._reply_cache: Dict[str, Tuple[int, SignedPayload]] = {}
        self._request_timers: Dict[str, Timer] = {}
        self._view_change_votes: Dict[int, Dict[str, SignedPayload]] = {}
        self._view_changing = False
        self.checkpoints = CheckpointStore(
            quorum=config.slow_quorum_size,
            interval=config.checkpoint_interval)
        #: Primary-path batcher: requests this replica proposes while
        #: primary are accumulated and flushed as one BATCHPREPREPARE
        #: (pass-through when ``config.batch_size == 1``).
        self.batcher = RequestBatcher(
            batch_size=config.batch_size,
            batch_timeout_ms=config.batch_timeout_ms,
            flush_fn=self._flush_proposals,
            set_timer_fn=ctx.set_timer)
        self.stats.update({
            "pre_prepares": 0,
            "batches_proposed": 0,
            "view_changes": 0,
            "checkpoints": 0,
        })

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, SignedPayload):
            if not message.verify(self.registry):
                self.stats["invalid_messages"] += 1
                return
            payload = message.payload
            if isinstance(payload, PBFTRequest):
                self._on_request(payload, message)
            elif isinstance(payload, BatchRequest):
                self._on_batch_request(payload, message)
            elif isinstance(payload, PrePrepare):
                self._on_pre_prepare(message.signer, payload)
            elif isinstance(payload, BatchPrePrepare):
                self._on_batch_pre_prepare(message.signer, payload)
            elif isinstance(payload, Prepare):
                self._on_prepare(payload)
            elif isinstance(payload, PBFTCommit):
                self._on_commit(payload)
            elif isinstance(payload, PBFTCheckpoint):
                self._on_checkpoint(payload)
            elif isinstance(payload, ViewChange):
                self._on_view_change(payload, message)
            elif isinstance(payload, NewView):
                self._on_new_view(payload)
            else:
                self.stats["invalid_messages"] += 1

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def _on_request(self, request: PBFTRequest,
                    envelope: SignedPayload) -> None:
        if envelope.signer != request.client_id:
            self.stats["invalid_messages"] += 1
            return
        client = request.client_id
        t = request.timestamp
        cached_t = self._client_ts.get(client, -1)
        if t < cached_t:
            return
        if t == cached_t:
            cached = self._reply_cache.get(client)
            if cached is not None and cached[0] == t:
                self.ctx.send(client, cached[1])
            return
        if self.is_primary:
            self.batcher.add(request)
        else:
            # Forward to the primary and watch for progress.
            self.ctx.send(self.primary, envelope)
            key = digest(request)
            if key not in self._request_timers:
                self._request_timers[key] = self.ctx.set_timer(
                    self.config.view_change_timeout,
                    self._on_progress_timeout, key)

    def _on_batch_request(self, batch: BatchRequest,
                          envelope: SignedPayload) -> None:
        """A client's batched submission: one signature, many commands.

        The primary unpacks it into its proposal batcher; backups
        forward the whole envelope to the primary (retries fall back to
        singleton requests, which carry the progress timers).
        """
        if not batch_request_is_authentic(batch, envelope):
            self.stats["invalid_messages"] += 1
            return
        if not self.is_primary:
            self.ctx.send(self.primary, envelope)
            return
        for command in fresh_batch_commands(
                batch, self._client_ts, self._reply_cache,
                lambda cached: self.ctx.send(batch.client_id, cached)):
            self.batcher.add(PBFTRequest(command=command))

    def _flush_proposals(self, requests) -> None:
        """Batcher flush: order the accumulated requests.

        Singletons degrade to the classic per-request PRE-PREPARE;
        larger flushes are proposed as one signed BATCHPREPREPARE over
        consecutive sequence numbers.  Duplicates that slipped in during
        the batch window are dropped here.
        """
        if self._view_changing:
            return  # clients will retry into the new view
        fresh = []
        seen = set()
        for request in requests:
            if request.command.ident in seen:
                continue
            seen.add(request.command.ident)
            fresh.append(request)
        if not fresh:
            return
        if len(fresh) == 1:
            self._propose(fresh[0])
            return
        inner = []
        for request in fresh:
            inner.append(self._order_request(request))
        batch = BatchPrePrepare(view=self.view,
                                pre_prepares=tuple(inner))
        self.stats["batches_proposed"] += 1
        self.broadcast_others(self.sign(batch))
        # The primary counts as having pre-prepared + prepared.
        for pre_prepare in inner:
            self._broadcast_prepare(pre_prepare.seqno,
                                    pre_prepare.request_digest)

    def _order_request(self, request: PBFTRequest) -> PrePrepare:
        """Assign the next sequence number and record the slot."""
        seqno = self._next_seqno
        self._next_seqno += 1
        d = digest(request)
        pre_prepare = PrePrepare(view=self.view, seqno=seqno,
                                 request_digest=d, request=request)
        self.stats["pre_prepares"] += 1
        slot = self._slot(seqno)
        slot.request = request
        slot.request_digest = d
        slot.pre_prepare = pre_prepare
        return pre_prepare

    def _propose(self, request: PBFTRequest) -> None:
        pre_prepare = self._order_request(request)
        self.broadcast_others(self.sign(pre_prepare))
        # The primary counts as having pre-prepared + prepared.
        self._broadcast_prepare(pre_prepare.seqno,
                                pre_prepare.request_digest)

    # ------------------------------------------------------------------
    # Three-phase commit
    # ------------------------------------------------------------------
    def _on_batch_pre_prepare(self, sender: str,
                              batch: BatchPrePrepare) -> None:
        """The primary's batched ordering: verify once, process each
        inner PRE-PREPARE exactly as a singleton."""
        if batch.view != self.view or self._view_changing:
            return
        if sender != self.config.primary_for_view(batch.view):
            self.stats["invalid_messages"] += 1
            return
        for pre_prepare in batch.pre_prepares:
            if pre_prepare.view != batch.view:
                self.stats["invalid_messages"] += 1
                return
        for pre_prepare in sorted(batch.pre_prepares,
                                  key=lambda p: p.seqno):
            self._on_pre_prepare(sender, pre_prepare)

    def _on_pre_prepare(self, sender: str, msg: PrePrepare) -> None:
        if msg.view != self.view or self._view_changing:
            return
        if sender != self.config.primary_for_view(msg.view):
            self.stats["invalid_messages"] += 1
            return
        if digest(msg.request) != msg.request_digest:
            self.stats["invalid_messages"] += 1
            return
        slot = self._slot(msg.seqno)
        if slot.pre_prepare is not None and \
                slot.request_digest != msg.request_digest:
            # Equivocating primary; vote it out.
            self._start_view_change()
            return
        slot.request = msg.request
        slot.request_digest = msg.request_digest
        slot.pre_prepare = msg
        self._cancel_request_timer(msg.request_digest)
        self._broadcast_prepare(msg.seqno, msg.request_digest)

    def _broadcast_prepare(self, seqno: int, request_digest: str) -> None:
        prepare = Prepare(view=self.view, seqno=seqno,
                          request_digest=request_digest,
                          replica=self.node_id)
        self._record_prepare(prepare)
        self.broadcast_others(self.sign(prepare))

    def _on_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view or self._view_changing:
            return
        self._record_prepare(msg)

    def _record_prepare(self, msg: Prepare) -> None:
        slot = self._slot(msg.seqno)
        if slot.request_digest is not None and \
                slot.request_digest != msg.request_digest:
            return
        slot.prepares.add(msg.replica)
        # prepared == pre-prepare + 2f matching prepares (own included).
        if not slot.prepared and slot.pre_prepare is not None and \
                len(slot.prepares) >= self.config.slow_quorum_size:
            slot.prepared = True
            commit = PBFTCommit(view=self.view, seqno=msg.seqno,
                                request_digest=msg.request_digest,
                                replica=self.node_id)
            self._record_commit(commit)
            self.broadcast_others(self.sign(commit))

    def _on_commit(self, msg: PBFTCommit) -> None:
        if msg.view != self.view or self._view_changing:
            return
        self._record_commit(msg)

    def _record_commit(self, msg: PBFTCommit) -> None:
        slot = self._slot(msg.seqno)
        if slot.request_digest is not None and \
                slot.request_digest != msg.request_digest:
            return
        slot.commits.add(msg.replica)
        if not slot.committed and slot.prepared and \
                len(slot.commits) >= self.config.slow_quorum_size:
            slot.committed = True
            self._execute_ready()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_ready(self) -> None:
        while True:
            nxt = self._slots.get(self._last_executed + 1)
            if nxt is None or not nxt.committed or nxt.executed or \
                    nxt.request is None:
                return
            nxt.executed = True
            self._last_executed += 1
            result = self.statemachine.apply(nxt.request.command)
            self.stats["executed"] += 1
            self.instruments.commit("slow")
            self.instruments.execute()
            client = nxt.request.client_id
            self._client_ts[client] = max(
                self._client_ts.get(client, -1), nxt.request.timestamp)
            reply = PBFTReply(view=self.view,
                              timestamp=nxt.request.timestamp,
                              client_id=client, replica=self.node_id,
                              result=result)
            envelope = self.sign(reply)
            self._reply_cache[client] = (nxt.request.timestamp, envelope)
            self.ctx.send(client, envelope)
            self._cancel_request_timer(nxt.request_digest)
            self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        executed = self._last_executed + 1
        if not self.checkpoints.due(executed):
            return
        checkpoint = Checkpoint.capture(executed,
                                        self.statemachine.snapshot())
        self.checkpoints.record_local(checkpoint)
        self.stats["checkpoints"] += 1
        msg = PBFTCheckpoint(seqno=executed,
                             state_digest=checkpoint.state_digest,
                             replica=self.node_id)
        self.broadcast_others(self.sign(msg))

    def _on_checkpoint(self, msg: PBFTCheckpoint) -> None:
        became_stable = self.checkpoints.attest(
            msg.seqno, msg.state_digest, msg.replica)
        if became_stable:
            self.instruments.checkpoint_stable(msg.seqno)
            self._gc_log(msg.seqno)

    def _gc_log(self, stable_seqno: int) -> None:
        for seqno in [s for s in self._slots if s < stable_seqno - 1]:
            if self._slots[seqno].executed:
                del self._slots[seqno]

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _on_progress_timeout(self, request_key: str) -> None:
        self._request_timers.pop(request_key, None)
        self._start_view_change()

    def _start_view_change(self) -> None:
        if self._view_changing:
            return
        self._view_changing = True
        self.stats["view_changes"] += 1
        self.instruments.view_change()
        new_view = self.view + 1
        stable = self.checkpoints.stable
        stable_seqno = stable.watermark if stable else 0
        prepared = []
        requests = []
        for seqno in sorted(self._slots):
            slot = self._slots[seqno]
            if slot.prepared and not slot.executed and \
                    slot.request is not None:
                prepared.append((seqno, slot.request_digest, self.view))
                requests.append(slot.request)
        msg = ViewChange(new_view=new_view,
                         last_stable_seqno=stable_seqno,
                         prepared=tuple(prepared),
                         requests=tuple(requests),
                         replica=self.node_id)
        signed = self.sign(msg)
        self._on_view_change(msg, signed)  # count our own vote
        self.broadcast_others(signed)

    def _on_view_change(self, msg: ViewChange,
                        envelope: SignedPayload) -> None:
        if msg.new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(msg.new_view, {})
        votes[msg.replica] = envelope
        # Join the view change once f+1 replicas demand it.
        if len(votes) >= self.config.weak_quorum_size and \
                not self._view_changing:
            self._start_view_change()
        if len(votes) >= self.config.slow_quorum_size and \
                self.config.primary_for_view(msg.new_view) == self.node_id:
            self._become_primary(msg.new_view, votes)

    def _become_primary(self, new_view: int,
                        votes: Dict[str, SignedPayload]) -> None:
        if self.view >= new_view:
            return
        # Re-issue pre-prepares for every prepared request reported.
        reissued: Dict[int, PrePrepare] = {}
        for envelope in votes.values():
            vc: ViewChange = envelope.payload
            for (seqno, req_digest, _view), request in zip(
                    vc.prepared, vc.requests):
                if seqno not in reissued:
                    reissued[seqno] = PrePrepare(
                        view=new_view, seqno=seqno,
                        request_digest=req_digest, request=request)
        proof = tuple(votes.values())
        new_view_msg = NewView(new_view=new_view,
                               view_change_proof=proof,
                               pre_prepares=tuple(reissued.values()),
                               primary=self.node_id)
        self.broadcast_others(self.sign(new_view_msg))
        self._adopt_view(new_view)
        # Continue sequence numbering after everything we have executed
        # or seen ordered -- re-using an occupied seqno would look like
        # equivocation to the backups and trigger another view change.
        occupied = max(self._slots) if self._slots else -1
        self._next_seqno = max(self._next_seqno, self._last_executed + 1,
                               occupied + 1)
        seqnos = [p.seqno for p in reissued.values()]
        if seqnos:
            self._next_seqno = max(self._next_seqno, max(seqnos) + 1)
        for pre_prepare in reissued.values():
            slot = self._slot(pre_prepare.seqno)
            slot.request = pre_prepare.request
            slot.request_digest = pre_prepare.request_digest
            slot.pre_prepare = pre_prepare
            self._broadcast_prepare(pre_prepare.seqno,
                                    pre_prepare.request_digest)

    def _on_new_view(self, msg: NewView) -> None:
        if msg.new_view <= self.view:
            return
        if self.config.primary_for_view(msg.new_view) != msg.primary:
            self.stats["invalid_messages"] += 1
            return
        if len(msg.view_change_proof) < self.config.slow_quorum_size:
            self.stats["invalid_messages"] += 1
            return
        self._adopt_view(msg.new_view)
        for pre_prepare in msg.pre_prepares:
            self._on_pre_prepare(msg.primary, pre_prepare)

    def _adopt_view(self, new_view: int) -> None:
        self.view = new_view
        self._view_changing = False
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()
        # Reset per-view vote state for lower views.
        self._view_change_votes = {
            v: votes for v, votes in self._view_change_votes.items()
            if v > new_view
        }

    # ------------------------------------------------------------------
    def _slot(self, seqno: int) -> _Slot:
        return self._slots.setdefault(seqno, _Slot())

    def _cancel_request_timer(self, request_digest: Optional[str]) -> None:
        if request_digest is None:
            return
        timer = self._request_timers.pop(request_digest, None)
        if timer is not None:
            timer.cancel()
