"""PBFT (Castro & Liskov, OSDI '99) on the shared substrate."""

from repro.protocols.pbft.replica import PBFTReplica
from repro.protocols.pbft.client import PBFTClient
from repro.protocols.registry import ProtocolSpec, register_protocol

SPEC = register_protocol(ProtocolSpec(
    name="pbft",
    replica_cls=PBFTReplica,
    client_cls=PBFTClient,
    leaderless=False,
    speculative=False,
    supports_batching=True,
    supports_checkpointing=True,
    description="Primary-based three-phase BFT: "
                "pre-prepare / prepare / commit, 5-step latency.",
))

__all__ = ["SPEC", "PBFTReplica", "PBFTClient"]
