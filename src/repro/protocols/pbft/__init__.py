"""PBFT (Castro & Liskov, OSDI '99) on the shared substrate."""

from repro.protocols.pbft.replica import PBFTReplica
from repro.protocols.pbft.client import PBFTClient

__all__ = ["PBFTReplica", "PBFTClient"]
