"""PBFT client: sends to the primary, accepts f+1 matching replies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import ProtocolError
from repro.messages.base import SignedPayload
from repro.messages.batching import BatchRequest
from repro.messages.pbft import PBFTReply, PBFTRequest
from repro.protocols.base import BaseClient, DeliveryCallback
from repro.statemachine.base import Command


@dataclass
class _Pending:
    command: Command
    start_time: float
    replies: Dict[str, PBFTReply] = field(default_factory=dict)
    retry_timer: Optional[Timer] = None
    done: bool = False


class PBFTClient(BaseClient):
    """One PBFT client."""

    def __init__(self, client_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, initial_view: int = 0,
                 on_delivery: Optional[DeliveryCallback] = None) -> None:
        super().__init__(client_id, config, ctx, keypair, registry,
                         initial_view, on_delivery)
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self.stats["batches_submitted"] = 0

    def submit(self, command: Command) -> None:
        self._register_pending(command)
        request = PBFTRequest(command=command)
        self.ctx.send(self.primary, self.sign(request))

    def _register_pending(self, command: Command) -> _Pending:
        """Record a command as in flight and arm its retry timer (shared
        by the singleton and batched submission paths)."""
        pending = _Pending(command=command, start_time=self.ctx.now)
        self._pending[command.ident] = pending
        self.stats["submitted"] += 1
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry, command.ident)
        return pending

    def submit_batch(self, commands) -> None:
        """Submit several of this client's commands under one signature.

        One :class:`~repro.messages.batching.BatchRequest` travels to
        the primary; each command keeps its own pending state and retry
        timer (retries degrade to singleton broadcast requests).  A
        batch of one degrades to :meth:`submit`.
        """
        commands = list(commands)
        if not commands:
            return
        if len(commands) == 1:
            self.submit(commands[0])
            return
        for command in commands:
            if command.client_id != self.client_id:
                raise ProtocolError(
                    "command does not belong to this client")
        for command in commands:
            self._register_pending(command)
        self.stats["batches_submitted"] += 1
        batch = BatchRequest(commands=tuple(commands))
        self.ctx.send(self.primary, self.sign(batch))

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, SignedPayload) or \
                not message.verify(self.registry):
            return
        reply = message.payload
        if not isinstance(reply, PBFTReply):
            return
        if message.signer != reply.replica:
            return
        pending = self._pending.get((reply.client_id, reply.timestamp))
        if pending is None or pending.done:
            return
        # Track the view so retries reach the new primary after a change.
        self.view = max(self.view, reply.view)
        pending.replies[reply.replica] = reply
        by_result: Dict[str, list] = {}
        for rep in pending.replies.values():
            by_result.setdefault(repr(rep.result), []).append(rep)
        for group in by_result.values():
            if len(group) >= self.config.weak_quorum_size:
                self._deliver(pending, group[0].result)
                return

    def _on_retry(self, ident: Tuple[str, int]) -> None:
        pending = self._pending.get(ident)
        if pending is None or pending.done:
            return
        self.stats["retries"] += 1
        # Classic PBFT fallback: broadcast to every replica; backups
        # forward to the primary and start view-change timers.
        request = PBFTRequest(command=pending.command)
        signed = self.sign(request)
        self.ctx.broadcast(self.config.replica_ids, signed)
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry, ident)

    def _deliver(self, pending: _Pending, result: Any) -> None:
        pending.done = True
        if pending.retry_timer is not None:
            pending.retry_timer.cancel()
        latency = self.ctx.now - pending.start_time
        self.stats["delivered"] += 1
        del self._pending[pending.command.ident]
        if self.on_delivery is not None:
            self.on_delivery(pending.command, result, latency, "pbft")
