"""ezBFT (Arun, Peluso, Ravindran -- ICDCS 2019) registry entry.

The implementation lives in :mod:`repro.core` (it is the paper's primary
contribution); this package gives it the same pluggable registration
surface as the baselines so the cluster builder treats all four
protocols uniformly.
"""

from repro.core.client import EzBFTClient
from repro.core.replica import EzBFTReplica
from repro.protocols.registry import ProtocolSpec, register_protocol

SPEC = register_protocol(ProtocolSpec(
    name="ezbft",
    replica_cls=EzBFTReplica,
    client_cls=EzBFTClient,
    leaderless=True,
    speculative=True,
    supports_batching=True,
    supports_checkpointing=True,
    description="Leaderless speculative BFT: every replica is a "
                "command-leader; 2-step fast path, 3-step slow path.",
))

__all__ = ["SPEC", "EzBFTReplica", "EzBFTClient"]
