"""Parameterized FaB replica (common case, t = 0, N = 3f+1).

The proposer (primary) broadcasts PROPOSE; every replica acts as acceptor
and learner: acceptors broadcast ACCEPT, and a learner that collects the
accept quorum ceil((N + f + 1) / 2) executes in sequence order and
replies to the client.  Client-visible steps: REQUEST -> PROPOSE ->
ACCEPT -> REPLY = 4 (one fewer than PBFT, one more than Zyzzyva/ezBFT).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.messages.base import SignedPayload
from repro.messages.fab import FabAccept, FabPropose, FabReply, FabRequest
from repro.protocols.base import BaseReplica
from repro.statemachine.base import StateMachine


@dataclass
class _Slot:
    request: Optional[FabRequest] = None
    request_digest: Optional[str] = None
    accepts: Set[str] = field(default_factory=set)
    accepted_digest: Optional[str] = None
    learned: bool = False
    executed: bool = False


class FabReplica(BaseReplica):
    """One FaB replica (proposer + acceptor + learner roles)."""

    def __init__(self, node_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, statemachine: StateMachine,
                 initial_view: int = 0) -> None:
        super().__init__(node_id, config, ctx, keypair, registry,
                         statemachine, initial_view)
        self._slots: Dict[int, _Slot] = {}
        self._next_seqno = 0
        self._last_executed = -1
        self._client_ts: Dict[str, int] = {}
        self._reply_cache: Dict[str, Tuple[int, SignedPayload]] = {}
        self.stats.update({"proposals": 0})

    @property
    def accept_quorum(self) -> int:
        """FaB learning quorum: ceil((N + f + 1) / 2)."""
        return max(math.ceil((self.config.n + self.config.f + 1) / 2),
                   self.config.slow_quorum_size)

    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, SignedPayload):
            if not message.verify(self.registry):
                self.stats["invalid_messages"] += 1
                return
            payload = message.payload
            if isinstance(payload, FabRequest):
                self._on_request(payload, message)
            elif isinstance(payload, FabPropose):
                self._on_propose(message.signer, payload)
            elif isinstance(payload, FabAccept):
                self._on_accept(payload)
            else:
                self.stats["invalid_messages"] += 1

    # ------------------------------------------------------------------
    def _on_request(self, request: FabRequest,
                    envelope: SignedPayload) -> None:
        if envelope.signer != request.client_id:
            self.stats["invalid_messages"] += 1
            return
        client = request.client_id
        t = request.timestamp
        cached_t = self._client_ts.get(client, -1)
        if t < cached_t:
            return
        if t == cached_t:
            cached = self._reply_cache.get(client)
            if cached is not None and cached[0] == t:
                self.ctx.send(client, cached[1])
            return
        if not self.is_primary:
            self.ctx.send(self.primary, envelope)
            return
        seqno = self._next_seqno
        self._next_seqno += 1
        d = digest(request)
        propose = FabPropose(proposal_number=self.view, seqno=seqno,
                             request_digest=d, request=request)
        self.stats["proposals"] += 1
        signed = self.sign(propose)
        self.broadcast_others(signed)
        self._on_propose(self.node_id, propose)

    def _on_propose(self, sender: str, propose: FabPropose) -> None:
        if propose.proposal_number != self.view:
            return
        if sender != self.config.primary_for_view(
                propose.proposal_number):
            self.stats["invalid_messages"] += 1
            return
        if digest(propose.request) != propose.request_digest:
            self.stats["invalid_messages"] += 1
            return
        slot = self._slots.setdefault(propose.seqno, _Slot())
        if slot.accepted_digest is not None and \
                slot.accepted_digest != propose.request_digest:
            return  # acceptors accept at most one value per slot
        slot.request = propose.request
        slot.request_digest = propose.request_digest
        slot.accepted_digest = propose.request_digest
        accept = FabAccept(proposal_number=propose.proposal_number,
                           seqno=propose.seqno,
                           request_digest=propose.request_digest,
                           acceptor=self.node_id)
        self._record_accept(accept)
        self.broadcast_others(self.sign(accept))

    def _on_accept(self, accept: FabAccept) -> None:
        if accept.proposal_number != self.view:
            return
        self._record_accept(accept)

    def _record_accept(self, accept: FabAccept) -> None:
        slot = self._slots.setdefault(accept.seqno, _Slot())
        if slot.request_digest is not None and \
                slot.request_digest != accept.request_digest:
            return
        slot.accepts.add(accept.acceptor)
        if not slot.learned and slot.request is not None and \
                len(slot.accepts) >= self.accept_quorum:
            slot.learned = True
            self._execute_ready()

    def _execute_ready(self) -> None:
        while True:
            slot = self._slots.get(self._last_executed + 1)
            if slot is None or not slot.learned or slot.executed or \
                    slot.request is None:
                return
            slot.executed = True
            self._last_executed += 1
            command = slot.request.command
            result = self.statemachine.apply(command)
            self.stats["executed"] += 1
            self.instruments.commit("fast")
            self.instruments.execute()
            self._client_ts[command.client_id] = max(
                self._client_ts.get(command.client_id, -1),
                command.timestamp)
            reply = FabReply(seqno=self._last_executed,
                             client_id=command.client_id,
                             timestamp=command.timestamp,
                             replica=self.node_id, result=result)
            envelope = self.sign(reply)
            self._reply_cache[command.client_id] = \
                (command.timestamp, envelope)
            self.ctx.send(command.client_id, envelope)
