"""FaB Paxos (Martin & Alvisi) on the shared substrate."""

from repro.protocols.fab.replica import FabReplica
from repro.protocols.fab.client import FabClient

__all__ = ["FabReplica", "FabClient"]
