"""FaB Paxos (Martin & Alvisi) on the shared substrate."""

from repro.protocols.fab.replica import FabReplica
from repro.protocols.fab.client import FabClient
from repro.protocols.registry import ProtocolSpec, register_protocol

SPEC = register_protocol(ProtocolSpec(
    name="fab",
    replica_cls=FabReplica,
    client_cls=FabClient,
    leaderless=False,
    speculative=False,
    supports_batching=False,
    description="Fast Byzantine Paxos: 2-step common case, "
                "primary-based proposal with larger fast quorums.",
))

__all__ = ["SPEC", "FabReplica", "FabClient"]
