"""Shared plumbing for the baseline protocol implementations."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.cluster.node import NodeContext
from repro.config import ProtocolConfig
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import ProtocolError
from repro.messages.base import SignedPayload
from repro.obs.instruments import NULL
from repro.statemachine.base import Command, StateMachine

#: Delivery callback shared by all protocol clients:
#: (command, result, latency_ms, path).
DeliveryCallback = Callable[[Command, Any, float, str], None]


class BaseReplica:
    """Common replica state: identity, config, transport, crypto, app."""

    #: Observability seam: the shared no-op singleton by default;
    #: ``repro serve`` swaps in a live registry-backed instrument set.
    instruments = NULL

    def __init__(self, node_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, statemachine: StateMachine,
                 initial_view: int = 0) -> None:
        if node_id not in config.replica_ids:
            raise ProtocolError(f"{node_id!r} not in replica set")
        self.node_id = node_id
        self.config = config
        self.ctx = ctx
        self.keypair = keypair
        self.registry = registry
        self.statemachine = statemachine
        self.view = initial_view
        self.stats: Dict[str, int] = {
            "executed": 0,
            "invalid_messages": 0,
        }

    @property
    def primary(self) -> str:
        return self.config.primary_for_view(self.view)

    @property
    def is_primary(self) -> bool:
        return self.primary == self.node_id

    def sign(self, payload: Any) -> SignedPayload:
        return SignedPayload.create(payload, self.keypair)

    def broadcast_others(self, message: Any) -> None:
        self.ctx.broadcast(self.config.others(self.node_id), message)

    def broadcast_all(self, message: Any) -> None:
        self.ctx.broadcast(self.config.replica_ids, message)


class BaseClient:
    """Common client state for primary-based protocols."""

    def __init__(self, client_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry,
                 initial_view: int = 0,
                 on_delivery: Optional[DeliveryCallback] = None) -> None:
        self.client_id = client_id
        self.config = config
        self.ctx = ctx
        self.keypair = keypair
        self.registry = registry
        self.view = initial_view
        self.on_delivery = on_delivery
        self._next_timestamp = 1
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "delivered": 0,
            "retries": 0,
        }

    @property
    def primary(self) -> str:
        return self.config.primary_for_view(self.view)

    def next_command(self, op: str, key: str = "",
                     value: Any = None) -> Command:
        command = Command(client_id=self.client_id,
                          timestamp=self._next_timestamp,
                          op=op, key=key, value=value)
        self._next_timestamp += 1
        return command

    def sign(self, payload: Any) -> SignedPayload:
        return SignedPayload.create(payload, self.keypair)
