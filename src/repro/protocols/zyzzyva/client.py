"""Zyzzyva client: 3f+1 matching speculative responses complete a request
in three steps; otherwise a commit certificate closes it in five."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.messages.base import SignedPayload
from repro.messages.zyzzyva import (
    LocalCommit,
    SpecResponse,
    ZCommit,
    ZRequest,
)
from repro.protocols.base import BaseClient, DeliveryCallback
from repro.statemachine.base import Command


@dataclass
class _Pending:
    command: Command
    start_time: float
    responses: Dict[str, Tuple[SpecResponse, SignedPayload]] = \
        field(default_factory=dict)
    local_commits: Dict[str, LocalCommit] = field(default_factory=dict)
    phase: str = "spec"  # spec -> commit -> done
    slow_timer: Optional[Timer] = None
    retry_timer: Optional[Timer] = None


class ZyzzyvaClient(BaseClient):
    """One Zyzzyva client."""

    def __init__(self, client_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, initial_view: int = 0,
                 on_delivery: Optional[DeliveryCallback] = None) -> None:
        super().__init__(client_id, config, ctx, keypair, registry,
                         initial_view, on_delivery)
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        self.stats.update({"delivered_fast": 0, "delivered_slow": 0})

    def submit(self, command: Command) -> None:
        pending = _Pending(command=command, start_time=self.ctx.now)
        self._pending[command.ident] = pending
        self.stats["submitted"] += 1
        request = ZRequest(command=command)
        self.ctx.send(self.primary, self.sign(request))
        pending.slow_timer = self.ctx.set_timer(
            self.config.slow_path_timeout, self._on_slow_timeout,
            command.ident)
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry, command.ident)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if not isinstance(message, SignedPayload) or \
                not message.verify(self.registry):
            return
        payload = message.payload
        if isinstance(payload, SpecResponse):
            self._on_spec_response(payload, message)
        elif isinstance(payload, LocalCommit):
            self._on_local_commit(payload)

    def _on_spec_response(self, resp: SpecResponse,
                          envelope: SignedPayload) -> None:
        if envelope.signer != resp.replica:
            return
        pending = self._pending.get((resp.client_id, resp.timestamp))
        if pending is None or pending.phase != "spec":
            return
        self.view = max(self.view, resp.view)
        pending.responses[resp.replica] = (resp, envelope)
        group = self._largest_matching_group(pending)
        if len(group) >= self.config.fast_quorum_size:
            self._deliver(pending, group[0].result, "fast")
            return
        if len(pending.responses) == self.config.n:
            self._try_commit(pending)

    def _largest_matching_group(self, pending: _Pending):
        responses = [r for r, _ in pending.responses.values()]
        best: list = []
        for anchor in responses:
            group = [r for r in responses if anchor.matches(r)]
            if len(group) > len(best):
                best = group
        return best

    # ------------------------------------------------------------------
    def _on_slow_timeout(self, ident: Tuple[str, int]) -> None:
        pending = self._pending.get(ident)
        if pending is None or pending.phase != "spec":
            return
        self._try_commit(pending)

    def _try_commit(self, pending: _Pending) -> None:
        group = self._largest_matching_group(pending)
        if len(group) < self.config.slow_quorum_size:
            return  # wait for the retry timer
        certificate = tuple(
            envelope for replica, (resp, envelope)
            in sorted(pending.responses.items())
            if any(resp is g for g in group)
        )[:self.config.slow_quorum_size]
        commit = ZCommit(client_id=self.client_id,
                         seqno=group[0].seqno,
                         certificate=certificate)
        pending.phase = "commit"
        self.ctx.broadcast(self.config.replica_ids, commit)

    def _on_local_commit(self, ack: LocalCommit) -> None:
        # LOCAL-COMMITs carry no client timestamp; match on the digest of
        # the pending command's request via seqno bookkeeping.
        for pending in list(self._pending.values()):
            if pending.phase != "commit":
                continue
            matching = [r for r, _ in pending.responses.values()
                        if r.seqno == ack.seqno]
            if not matching:
                continue
            pending.local_commits[ack.replica] = ack
            if len(pending.local_commits) >= \
                    self.config.slow_quorum_size:
                self._deliver(pending, matching[0].result, "slow")
            return

    # ------------------------------------------------------------------
    def _on_retry(self, ident: Tuple[str, int]) -> None:
        pending = self._pending.get(ident)
        if pending is None or pending.phase == "done":
            return
        self.stats["retries"] += 1
        request = ZRequest(command=pending.command)
        signed = self.sign(request)
        pending.responses.clear()
        pending.local_commits.clear()
        pending.phase = "spec"
        self.ctx.broadcast(self.config.replica_ids, signed)
        pending.retry_timer = self.ctx.set_timer(
            self.config.retry_timeout, self._on_retry, ident)
        pending.slow_timer = self.ctx.set_timer(
            self.config.slow_path_timeout, self._on_slow_timeout, ident)

    def _deliver(self, pending: _Pending, result: Any,
                 path: str) -> None:
        if pending.phase == "done":
            return
        pending.phase = "done"
        for timer in (pending.slow_timer, pending.retry_timer):
            if timer is not None:
                timer.cancel()
        latency = self.ctx.now - pending.start_time
        self.stats["delivered"] += 1
        self.stats["delivered_fast" if path == "fast"
                   else "delivered_slow"] += 1
        del self._pending[pending.command.ident]
        if self.on_delivery is not None:
            self.on_delivery(pending.command, result, latency, path)
