"""Zyzzyva replica: speculative execution off the primary's order.

Fast path (3 client-visible steps): the primary assigns a sequence number
and broadcasts ORDER-REQ; replicas speculatively execute in sequence
order and respond directly to the client.  Slow path: the client
broadcasts a commit certificate (2f+1 matching SPEC-RESPONSEs) and
replicas acknowledge with LOCAL-COMMIT.

Includes FILL-HOLE recovery for gaps and an I-HATE-THE-PRIMARY /
NEW-VIEW change driven by progress timeouts or primary equivocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.messages.base import SignedPayload
from repro.messages.zyzzyva import (
    FillHole,
    IHateThePrimary,
    LocalCommit,
    OrderReq,
    SpecResponse,
    ZCommit,
    ZNewView,
    ZRequest,
)
from repro.protocols.base import BaseReplica
from repro.statemachine.base import StateMachine


@dataclass
class _Slot:
    order_req: Optional[OrderReq] = None
    signed_order: Optional[SignedPayload] = None
    history_digest: str = ""
    spec_result: Any = None
    executed: bool = False
    committed: bool = False


class ZyzzyvaReplica(BaseReplica):
    """One Zyzzyva replica."""

    def __init__(self, node_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, statemachine: StateMachine,
                 initial_view: int = 0) -> None:
        super().__init__(node_id, config, ctx, keypair, registry,
                         statemachine, initial_view)
        self._slots: Dict[int, _Slot] = {}
        self._next_seqno = 0          # primary allocator
        self._next_to_execute = 0     # replicas execute in seqno order
        self._history_digest = ""     # rolling history hash h_n
        self._max_committed = -1
        self._client_ts: Dict[str, int] = {}
        self._reply_cache: Dict[str, Tuple[int, SignedPayload]] = {}
        self._request_timers: Dict[str, Timer] = {}
        self._fill_hole_timer: Optional[Timer] = None
        self._ihtp_votes: Dict[int, Set[str]] = {}
        self._hated_views: Set[int] = set()
        self.stats.update({
            "order_reqs": 0,
            "fill_holes": 0,
            "view_changes": 0,
        })

    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        if isinstance(message, SignedPayload):
            if not message.verify(self.registry):
                self.stats["invalid_messages"] += 1
                return
            payload = message.payload
            if isinstance(payload, ZRequest):
                self._on_request(payload, message)
            elif isinstance(payload, OrderReq):
                self._on_order_req(message.signer, payload, message)
            elif isinstance(payload, IHateThePrimary):
                self._on_ihtp(payload)
            elif isinstance(payload, ZNewView):
                self._on_new_view(payload)
            else:
                self.stats["invalid_messages"] += 1
            return
        if isinstance(message, ZCommit):
            self._on_commit(sender, message)
        elif isinstance(message, FillHole):
            self._on_fill_hole(message)
        else:
            self.stats["invalid_messages"] += 1

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def _on_request(self, request: ZRequest,
                    envelope: SignedPayload) -> None:
        if envelope.signer != request.client_id:
            self.stats["invalid_messages"] += 1
            return
        client = request.client_id
        t = request.timestamp
        cached_t = self._client_ts.get(client, -1)
        if t < cached_t:
            return
        if t == cached_t:
            cached = self._reply_cache.get(client)
            if cached is not None and cached[0] == t:
                self.ctx.send(client, cached[1])
            return
        if not self.is_primary:
            # Forward to the primary; suspect it if no ORDER-REQ follows.
            self.ctx.send(self.primary, envelope)
            key = digest(request)
            if key not in self._request_timers:
                self._request_timers[key] = self.ctx.set_timer(
                    self.config.view_change_timeout,
                    self._on_progress_timeout, key)
            return
        seqno = self._next_seqno
        self._next_seqno += 1
        d = digest(request)
        history = digest([self._history_digest, d])
        order = OrderReq(view=self.view, seqno=seqno,
                         history_digest=history, request_digest=d,
                         request=request)
        signed_order = self.sign(order)
        self.stats["order_reqs"] += 1
        self.broadcast_others(signed_order)
        self._accept_order(order, signed_order)

    def _on_order_req(self, sender: str, order: OrderReq,
                      envelope: SignedPayload) -> None:
        if order.view != self.view:
            return
        if sender != self.config.primary_for_view(order.view):
            self.stats["invalid_messages"] += 1
            return
        if digest(order.request) != order.request_digest:
            self.stats["invalid_messages"] += 1
            return
        existing = self._slots.get(order.seqno)
        if existing is not None and existing.order_req is not None:
            if existing.order_req.request_digest != order.request_digest:
                # Primary equivocation.
                self._hate_primary()
            return
        self._accept_order(order, envelope)

    def _accept_order(self, order: OrderReq,
                      envelope: SignedPayload) -> None:
        slot = self._slots.setdefault(order.seqno, _Slot())
        slot.order_req = order
        slot.signed_order = envelope
        self._cancel_request_timer(order.request_digest)
        self._execute_ready()
        if order.seqno > self._next_to_execute and \
                self._fill_hole_timer is None:
            # There is a gap; ask the primary to fill it.
            self._fill_hole_timer = self.ctx.set_timer(
                self.config.view_change_timeout / 2.0,
                self._request_fill_hole)

    def _execute_ready(self) -> None:
        """Speculatively execute contiguous slots in sequence order."""
        while True:
            slot = self._slots.get(self._next_to_execute)
            if slot is None or slot.order_req is None or slot.executed:
                return
            order = slot.order_req
            # Verify the history chain: our rolling digest must match the
            # primary's claim, otherwise our histories diverged.
            expected = digest([self._history_digest,
                               order.request_digest])
            if order.history_digest != expected:
                self._hate_primary()
                return
            self._history_digest = expected
            slot.history_digest = expected
            slot.executed = True
            command = order.request.command
            slot.spec_result = self.statemachine.apply_speculative(command)
            self.stats["executed"] += 1
            self.instruments.commit("fast")
            self.instruments.execute()
            self._client_ts[command.client_id] = max(
                self._client_ts.get(command.client_id, -1),
                command.timestamp)
            response = SpecResponse(
                view=self.view, seqno=order.seqno,
                history_digest=expected,
                request_digest=order.request_digest,
                client_id=command.client_id,
                timestamp=command.timestamp,
                replica=self.node_id,
                result=slot.spec_result,
                order_req=slot.signed_order,
            )
            signed = self.sign(response)
            self._reply_cache[command.client_id] = \
                (command.timestamp, signed)
            self.ctx.send(command.client_id, signed)
            self._next_to_execute += 1
            if self._fill_hole_timer is not None and \
                    not self._has_gap():
                self._fill_hole_timer.cancel()
                self._fill_hole_timer = None

    def _has_gap(self) -> bool:
        return any(s > self._next_to_execute for s in self._slots)

    # ------------------------------------------------------------------
    # Slow path
    # ------------------------------------------------------------------
    def _on_commit(self, sender: str, commit: ZCommit) -> None:
        if len(commit.certificate) < self.config.slow_quorum_size:
            self.stats["invalid_messages"] += 1
            return
        first: Optional[SpecResponse] = None
        signers = set()
        for signed in commit.certificate:
            if not signed.verify(self.registry):
                self.stats["invalid_messages"] += 1
                return
            resp = signed.payload
            if not isinstance(resp, SpecResponse) or \
                    signed.signer != resp.replica:
                self.stats["invalid_messages"] += 1
                return
            signers.add(resp.replica)
            if first is None:
                first = resp
            elif not first.matches(resp):
                self.stats["invalid_messages"] += 1
                return
        if first is None or len(signers) < self.config.slow_quorum_size:
            return
        slot = self._slots.get(first.seqno)
        if slot is not None:
            slot.committed = True
        self._max_committed = max(self._max_committed, first.seqno)
        ack = LocalCommit(view=self.view, seqno=first.seqno,
                          request_digest=first.request_digest,
                          history_digest=first.history_digest,
                          replica=self.node_id,
                          client_id=commit.client_id)
        self.ctx.send(commit.client_id, self.sign(ack))

    # ------------------------------------------------------------------
    # Fill-hole
    # ------------------------------------------------------------------
    def _request_fill_hole(self) -> None:
        self._fill_hole_timer = None
        if not self._has_gap():
            return
        self.stats["fill_holes"] += 1
        msg = FillHole(view=self.view, seqno=self._next_to_execute,
                       replica=self.node_id)
        self.ctx.send(self.primary, msg)
        # If the hole persists, the primary is suspect.
        self._fill_hole_timer = self.ctx.set_timer(
            self.config.view_change_timeout, self._on_fill_hole_failed)

    def _on_fill_hole_failed(self) -> None:
        self._fill_hole_timer = None
        if self._has_gap():
            self._hate_primary()

    def _on_fill_hole(self, msg: FillHole) -> None:
        if not self.is_primary or msg.view != self.view:
            return
        slot = self._slots.get(msg.seqno)
        if slot is not None and slot.signed_order is not None:
            self.ctx.send(msg.replica, slot.signed_order)

    # ------------------------------------------------------------------
    # View change
    # ------------------------------------------------------------------
    def _on_progress_timeout(self, request_key: str) -> None:
        self._request_timers.pop(request_key, None)
        self._hate_primary()

    def _hate_primary(self) -> None:
        if self.view in self._hated_views:
            return
        self._hated_views.add(self.view)
        vote = IHateThePrimary(view=self.view, replica=self.node_id)
        self._record_ihtp(vote)
        self.broadcast_others(self.sign(vote))

    def _on_ihtp(self, vote: IHateThePrimary) -> None:
        if vote.view < self.view:
            return
        self._record_ihtp(vote)

    def _record_ihtp(self, vote: IHateThePrimary) -> None:
        votes = self._ihtp_votes.setdefault(vote.view, set())
        votes.add(vote.replica)
        if len(votes) >= self.config.weak_quorum_size:
            # Join the mutiny (at least one correct replica voted).
            if self.view == vote.view and \
                    vote.view not in self._hated_views:
                self._hate_primary()
        if len(votes) >= self.config.slow_quorum_size:
            new_view = vote.view + 1
            if self.config.primary_for_view(new_view) == self.node_id \
                    and self.view <= vote.view:
                self._become_primary(new_view)

    def _become_primary(self, new_view: int) -> None:
        self.stats["view_changes"] += 1
        self.instruments.view_change()
        msg = ZNewView(new_view=new_view, primary=self.node_id,
                       max_committed_seqno=self._max_committed)
        self.broadcast_others(self.sign(msg))
        self._adopt_view(new_view)
        occupied = max(self._slots) if self._slots else -1
        self._next_seqno = max(self._next_seqno, self._next_to_execute,
                               occupied + 1)

    def _on_new_view(self, msg: ZNewView) -> None:
        if msg.new_view <= self.view:
            return
        if self.config.primary_for_view(msg.new_view) != msg.primary:
            self.stats["invalid_messages"] += 1
            return
        self._adopt_view(msg.new_view)

    def _adopt_view(self, new_view: int) -> None:
        self.view = new_view
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()

    # ------------------------------------------------------------------
    def _cancel_request_timer(self, request_digest: str) -> None:
        timer = self._request_timers.pop(request_digest, None)
        if timer is not None:
            timer.cancel()
