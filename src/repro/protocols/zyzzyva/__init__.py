"""Zyzzyva (Kotla et al., SOSP '07) on the shared substrate."""

from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient
from repro.protocols.registry import ProtocolSpec, register_protocol

SPEC = register_protocol(ProtocolSpec(
    name="zyzzyva",
    replica_cls=ZyzzyvaReplica,
    client_cls=ZyzzyvaClient,
    leaderless=False,
    speculative=True,
    supports_batching=False,
    description="Primary-based speculative BFT: 3-step fast path off "
                "the primary's order, client-driven commit fallback.",
))

__all__ = ["SPEC", "ZyzzyvaReplica", "ZyzzyvaClient"]
