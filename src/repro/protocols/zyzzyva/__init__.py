"""Zyzzyva (Kotla et al., SOSP '07) on the shared substrate."""

from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient

__all__ = ["ZyzzyvaReplica", "ZyzzyvaClient"]
