"""Declarative protocol registry: plug a protocol in, never edit the
builder.

Every protocol in the repository describes itself with a
:class:`ProtocolSpec` -- its replica/client classes, capability flags,
and (optionally) custom wiring hooks -- and registers it with
:func:`register_protocol` from its own package.  The cluster builder
(:mod:`repro.cluster.builder`) is purely registry-driven: it looks the
spec up by name and lets the spec decide its own constructor keyword
arguments, so adding a fifth protocol (or a new scenario/state machine)
never touches the builder again.

This module is deliberately dependency-light (errors + stdlib only) so
any protocol package can import it without cycles; the builtin specs are
registered as a side effect of importing :mod:`repro.protocols`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Registered name -> spec, in registration order.
_REGISTRY: Dict[str, "ProtocolSpec"] = {}


@dataclass(frozen=True)
class WiringContext:
    """Everything a spec's wiring hooks may need to construct a node.

    The builder fills this in; specs read from it.  ``target_replica``
    and ``region`` are only meaningful for client wiring.
    """

    config: Any
    primary_index: int = 0
    interference: Any = None
    target_replica: Optional[str] = None
    region: Optional[str] = None


#: Wiring hook signature: ``hook(spec, wiring) -> extra kwargs``.
WiringHook = Callable[["ProtocolSpec", WiringContext], Dict[str, Any]]


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol's construction recipe and capability surface.

    Capability flags:

    - ``leaderless``: no distinguished primary -- clients target their
      nearest replica and replicas take an interference relation (the
      ezBFT shape).  Primary-based protocols instead take an
      ``initial_view``.
    - ``speculative``: replies may be speculative (Zyzzyva/ezBFT), i.e.
      the state machine needs the speculative-overlay interface.
    - ``supports_batching``: the replica/client pair understands the
      batched messages in :mod:`repro.messages.batching`; the batching
      workload drivers check this flag (via the client's
      ``submit_batch``) and degrade to per-command submission otherwise.
    - ``supports_checkpointing``: the replica garbage-collects its log
      at stable checkpoints (``config.checkpoint_interval``) and keeps
      resident state bounded; long-running deployments should prefer
      protocols with this flag.

    ``replica_wiring``/``client_wiring`` override the default
    capability-derived constructor kwargs for protocols whose
    constructors deviate from both builtin shapes.
    """

    name: str
    replica_cls: Any
    client_cls: Any
    leaderless: bool = False
    speculative: bool = False
    supports_batching: bool = False
    supports_checkpointing: bool = False
    description: str = ""
    replica_wiring: Optional[WiringHook] = field(default=None, repr=False)
    client_wiring: Optional[WiringHook] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.name or not self.name.islower():
            raise ConfigurationError(
                f"protocol name must be a non-empty lowercase string, "
                f"got {self.name!r}")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def replica_kwargs(self, wiring: WiringContext) -> Dict[str, Any]:
        """Extra constructor kwargs for ``replica_cls`` beyond the
        universal ``(node_id, config, ctx, keypair, registry,
        statemachine)`` prefix."""
        if self.replica_wiring is not None:
            return dict(self.replica_wiring(self, wiring))
        if self.leaderless:
            return {"interference": wiring.interference}
        return {"initial_view": wiring.primary_index}

    def client_kwargs(self, wiring: WiringContext) -> Dict[str, Any]:
        """Extra constructor kwargs for ``client_cls`` beyond the
        universal ``(client_id, config, ctx, keypair, registry)`` prefix
        and ``on_delivery``."""
        if self.client_wiring is not None:
            return dict(self.client_wiring(self, wiring))
        if self.leaderless:
            return {"target_replica": wiring.target_replica}
        return {"initial_view": wiring.primary_index}


# ----------------------------------------------------------------------
# Registry operations
# ----------------------------------------------------------------------
def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Register ``spec`` under ``spec.name``; duplicate names raise."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"protocol {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_protocol(name: str) -> None:
    """Remove a registered protocol (primarily for tests and plugins)."""
    if name not in _REGISTRY:
        raise ConfigurationError(f"protocol {name!r} is not registered")
    del _REGISTRY[name]


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a spec by name, raising with the available choices."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown protocol {name!r}; choose from "
            f"{available_protocols()}")
    return spec


def available_protocols() -> Tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return tuple(_REGISTRY)
