"""Baseline BFT protocols the paper evaluates against: PBFT, Zyzzyva,
FaB.  All run on the same substrate (crypto, network, state machine) as
ezBFT so latency/throughput comparisons isolate protocol structure."""

from repro.protocols.pbft.replica import PBFTReplica
from repro.protocols.pbft.client import PBFTClient
from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient
from repro.protocols.fab.replica import FabReplica
from repro.protocols.fab.client import FabClient

__all__ = [
    "PBFTReplica",
    "PBFTClient",
    "ZyzzyvaReplica",
    "ZyzzyvaClient",
    "FabReplica",
    "FabClient",
]
