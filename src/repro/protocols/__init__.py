"""Protocol registry and implementations.

All four builtin protocols -- the paper's ezBFT plus the PBFT, Zyzzyva
and FaB baselines -- run on the same substrate (crypto, network, state
machine) so latency/throughput comparisons isolate protocol structure.
Each protocol package registers a
:class:`~repro.protocols.registry.ProtocolSpec` on import; the cluster
builder constructs nodes purely from the registry, so new protocols plug
in by registering a spec of their own (see README "Adding a protocol").
"""

from repro.protocols.registry import (
    ProtocolSpec,
    WiringContext,
    available_protocols,
    get_protocol,
    register_protocol,
    unregister_protocol,
)

# Importing the protocol packages registers their specs (in the
# canonical ezbft-first order the paper's tables use).
from repro.protocols import ezbft  # noqa: E402
from repro.protocols import pbft, zyzzyva, fab  # noqa: E402

from repro.core.replica import EzBFTReplica
from repro.core.client import EzBFTClient
from repro.protocols.pbft.replica import PBFTReplica
from repro.protocols.pbft.client import PBFTClient
from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient
from repro.protocols.fab.replica import FabReplica
from repro.protocols.fab.client import FabClient

__all__ = [
    "ProtocolSpec",
    "WiringContext",
    "register_protocol",
    "unregister_protocol",
    "get_protocol",
    "available_protocols",
    "EzBFTReplica",
    "EzBFTClient",
    "PBFTReplica",
    "PBFTClient",
    "ZyzzyvaReplica",
    "ZyzzyvaClient",
    "FabReplica",
    "FabClient",
]
