"""Cluster builder: wire protocol replicas and clients onto the simulated
WAN with one call.

>>> cluster = build_cluster("ezbft",
...                         replica_regions=["virginia", "tokyo",
...                                          "mumbai", "sydney"],
...                         latency=EXPERIMENT1)
>>> client = cluster.add_client("c0", region="tokyo")
>>> client.submit(client.next_command("put", "k", "v"))
>>> cluster.run_until_idle()

Construction is entirely registry-driven: the builder looks the protocol
up in :mod:`repro.protocols.registry` and lets its
:class:`~repro.protocols.registry.ProtocolSpec` supply the
protocol-specific constructor kwargs.  There is no per-protocol branching
here -- new protocols plug in by registering a spec, and new replicated
applications plug in via ``statemachine_factory``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from repro.cluster.metrics import LatencyRecorder, replica_footprint
from repro.cluster.node import NodeContext
from repro.config import ProtocolConfig
from repro.crypto.keys import KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.registry import (
    ProtocolSpec,
    WiringContext,
    available_protocols,
    get_protocol,
)
from repro.sim.events import Simulator
from repro.sim.latency import LatencyMatrix, LOCAL
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork
from repro.statemachine.base import StateMachine
from repro.statemachine.interference import (
    InterferenceRelation,
    KVInterference,
)
from repro.statemachine.kvstore import KVStore

#: Builtin protocol names (the live list is
#: :func:`repro.protocols.registry.available_protocols`).
PROTOCOLS = available_protocols()


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    protocol: str
    spec: ProtocolSpec
    sim: Simulator
    network: SimNetwork
    registry: KeyRegistry
    config: ProtocolConfig
    latency: LatencyMatrix
    replicas: Dict[str, Any]
    replica_regions: Dict[str, str]
    primary_index: int
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    clients: Dict[str, Any] = field(default_factory=dict)
    client_regions: Dict[str, str] = field(default_factory=dict)
    _seed_counter: int = 0

    # ------------------------------------------------------------------
    def context_for(self, node_id: str) -> NodeContext:
        return NodeContext(
            node_id,
            send_fn=self.network.send,
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
        )

    def nearest_replica(self, region: str) -> str:
        """Replica with the lowest one-way latency from ``region``."""
        return min(
            self.config.replica_ids,
            key=lambda rid: self.latency.one_way(
                region, self.replica_regions[rid]),
        )

    def add_client(self, client_id: str, region: str,
                   target_replica: Optional[str] = None,
                   on_delivery: Optional[Callable] = None,
                   record: bool = True,
                   record_group: Optional[str] = None) -> Any:
        """Create, register and return a protocol client in ``region``.

        The protocol's spec decides the wiring: leaderless clients
        target their nearest replica (the paper's step 1) while
        primary-based clients track the initial primary.
        ``record=True`` wires deliveries into the cluster's
        :class:`LatencyRecorder`, grouped by region (or
        ``record_group``).
        """
        if client_id in self.clients:
            raise ConfigurationError(f"duplicate client id {client_id!r}")
        group = record_group if record_group is not None else region

        def _recording_delivery(command, result, latency, path):
            if record:
                self.recorder.record(group, latency, path, self.sim.now)
            if on_delivery is not None:
                on_delivery(command, result, latency, path)

        keypair = self.registry.create(client_id, seed=b"client-seed")
        ctx = self.context_for(client_id)
        wiring = WiringContext(
            config=self.config,
            primary_index=self.primary_index,
            target_replica=(target_replica
                            or self.nearest_replica(region)),
            region=region,
        )
        client = self.spec.client_cls(
            client_id, self.config, ctx, keypair, self.registry,
            on_delivery=_recording_delivery,
            **self.spec.client_kwargs(wiring))
        self.network.register(client_id, region, client.on_message)
        self.clients[client_id] = client
        self.client_regions[client_id] = region
        return client

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        return self.config.replica_ids[self.primary_index]

    def replica_stats(self) -> Dict[str, Dict[str, int]]:
        return {rid: dict(r.stats) for rid, r in self.replicas.items()}

    def statemachines(self) -> Dict[str, StateMachine]:
        """Each replica's application state machine."""
        return {rid: r.statemachine for rid, r in self.replicas.items()}

    def kvstores(self) -> Dict[str, Any]:
        """Backwards-compatible alias for :meth:`statemachines` (the
        default application is a :class:`~repro.statemachine.KVStore`)."""
        return self.statemachines()

    def log_footprint(self) -> Dict[str, Dict[str, int]]:
        """Per-replica resident log/execution structure sizes (see
        :func:`repro.cluster.metrics.replica_footprint`)."""
        return {rid: replica_footprint(r)
                for rid, r in self.replicas.items()}


def build_cluster(protocol: str,
                  replica_regions: Sequence[str],
                  latency: LatencyMatrix = LOCAL,
                  *,
                  cpu: Optional[CpuModel] = None,
                  conditions: Optional[NetworkConditions] = None,
                  seed: int = 0,
                  primary_region: Optional[str] = None,
                  primary_index: int = 0,
                  interference: Optional[InterferenceRelation] = None,
                  netem: Optional[Any] = None,
                  statemachine_factory: Callable[[], StateMachine]
                  = KVStore,
                  slow_path_timeout: float = 400.0,
                  retry_timeout: float = 1200.0,
                  suspicion_timeout: float = 600.0,
                  view_change_timeout: float = 1500.0,
                  checkpoint_interval: int = 128,
                  batch_size: int = 1,
                  batch_timeout_ms: float = 10.0) -> Cluster:
    """Build a simulated deployment of ``protocol``.

    ``replica_regions`` places one replica per entry (ids r0..rN-1).
    ``primary_region``/``primary_index`` choose the initial primary for
    the single-leader baselines (ignored by leaderless protocols).
    ``statemachine_factory`` is called once per replica to create the
    replicated application (default: a fresh
    :class:`~repro.statemachine.KVStore`); any
    :class:`~repro.statemachine.StateMachine` plugs in here.
    ``netem`` (a :class:`repro.netem.NetemProfile`) attaches link-level
    emulation -- loss, jitter, reordering, duplication, bandwidth caps
    -- on top of the latency matrix, deterministic under ``seed``.
    ``batch_size``/``batch_timeout_ms`` configure the amortizing
    batcher at the protocol's ordering point (see
    :mod:`repro.core.batching`); ``batch_size=1`` disables batching.
    """
    spec = get_protocol(protocol)
    replica_ids = tuple(f"r{i}" for i in range(len(replica_regions)))
    regions_by_id = dict(zip(replica_ids, replica_regions))
    if primary_region is not None:
        candidates = [i for i, region in enumerate(replica_regions)
                      if region == primary_region]
        if not candidates:
            raise ConfigurationError(
                f"no replica in primary region {primary_region!r}")
        primary_index = candidates[0]
    if not 0 <= primary_index < len(replica_ids):
        raise ConfigurationError(
            f"primary_index {primary_index} out of range")

    config = ProtocolConfig(
        replica_ids=replica_ids,
        slow_path_timeout=slow_path_timeout,
        retry_timeout=retry_timeout,
        suspicion_timeout=suspicion_timeout,
        view_change_timeout=view_change_timeout,
        checkpoint_interval=checkpoint_interval,
        batch_size=batch_size,
        batch_timeout_ms=batch_timeout_ms,
    )
    sim = Simulator()
    network = SimNetwork(sim, latency, cpu=cpu, conditions=conditions,
                         seed=seed)
    if netem is not None:
        # The link-level emulation seam (see repro.netem): seeded from
        # the same scenario seed, with its own decorrelated stream.
        from repro.netem import LinkShaper
        network.shaper = LinkShaper(netem, seed=seed,
                                    region_of=network.region_of)
    registry = KeyRegistry()
    relation = interference if interference is not None \
        else KVInterference()

    cluster = Cluster(protocol=protocol, spec=spec, sim=sim,
                      network=network, registry=registry, config=config,
                      latency=latency, replicas={},
                      replica_regions=regions_by_id,
                      primary_index=primary_index)

    wiring = WiringContext(config=config, primary_index=primary_index,
                           interference=relation)
    for rid in replica_ids:
        keypair = registry.create(rid, seed=b"replica-seed")
        ctx = cluster.context_for(rid)
        replica = spec.replica_cls(rid, config, ctx, keypair, registry,
                                   statemachine=statemachine_factory(),
                                   **spec.replica_kwargs(wiring))
        network.register(rid, regions_by_id[rid], replica.on_message)
        cluster.replicas[rid] = replica
    return cluster
