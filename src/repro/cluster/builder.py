"""Cluster builder: wire protocol replicas and clients onto the simulated
WAN with one call.

>>> cluster = build_cluster("ezbft",
...                         replica_regions=["virginia", "tokyo",
...                                          "mumbai", "sydney"],
...                         latency=EXPERIMENT1)
>>> client = cluster.add_client("c0", region="tokyo")
>>> client.submit(client.next_command("put", "k", "v"))
>>> cluster.run_until_idle()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.cluster.metrics import LatencyRecorder
from repro.cluster.node import NodeContext
from repro.config import ProtocolConfig
from repro.core.client import EzBFTClient
from repro.core.replica import EzBFTReplica
from repro.crypto.keys import KeyRegistry
from repro.errors import ConfigurationError
from repro.protocols.fab.client import FabClient
from repro.protocols.fab.replica import FabReplica
from repro.protocols.pbft.client import PBFTClient
from repro.protocols.pbft.replica import PBFTReplica
from repro.protocols.zyzzyva.client import ZyzzyvaClient
from repro.protocols.zyzzyva.replica import ZyzzyvaReplica
from repro.sim.events import Simulator
from repro.sim.latency import LatencyMatrix, LOCAL
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork
from repro.statemachine.interference import (
    InterferenceRelation,
    KVInterference,
)
from repro.statemachine.kvstore import KVStore

PROTOCOLS = ("ezbft", "pbft", "zyzzyva", "fab")

#: Per-protocol (replica class, client class).
_FACTORIES = {
    "ezbft": (EzBFTReplica, EzBFTClient),
    "pbft": (PBFTReplica, PBFTClient),
    "zyzzyva": (ZyzzyvaReplica, ZyzzyvaClient),
    "fab": (FabReplica, FabClient),
}


@dataclass
class Cluster:
    """A fully wired simulated deployment."""

    protocol: str
    sim: Simulator
    network: SimNetwork
    registry: KeyRegistry
    config: ProtocolConfig
    latency: LatencyMatrix
    replicas: Dict[str, Any]
    replica_regions: Dict[str, str]
    primary_index: int
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)
    clients: Dict[str, Any] = field(default_factory=dict)
    client_regions: Dict[str, str] = field(default_factory=dict)
    _seed_counter: int = 0

    # ------------------------------------------------------------------
    def context_for(self, node_id: str) -> NodeContext:
        return NodeContext(
            node_id,
            send_fn=self.network.send,
            schedule_fn=self.sim.schedule,
            now_fn=lambda: self.sim.now,
        )

    def nearest_replica(self, region: str) -> str:
        """Replica with the lowest one-way latency from ``region``."""
        return min(
            self.config.replica_ids,
            key=lambda rid: self.latency.one_way(
                region, self.replica_regions[rid]),
        )

    def add_client(self, client_id: str, region: str,
                   target_replica: Optional[str] = None,
                   on_delivery: Optional[Callable] = None,
                   record: bool = True,
                   record_group: Optional[str] = None) -> Any:
        """Create, register and return a protocol client in ``region``.

        For ezBFT the client targets its nearest replica (the paper's
        step 1); primary-based protocols always target the primary.
        ``record=True`` wires deliveries into the cluster's
        :class:`LatencyRecorder`, grouped by region (or
        ``record_group``).
        """
        if client_id in self.clients:
            raise ConfigurationError(f"duplicate client id {client_id!r}")
        group = record_group if record_group is not None else region

        def _recording_delivery(command, result, latency, path):
            if record:
                self.recorder.record(group, latency, path, self.sim.now)
            if on_delivery is not None:
                on_delivery(command, result, latency, path)

        keypair = self.registry.create(client_id, seed=b"client-seed")
        ctx = self.context_for(client_id)
        _, client_cls = _FACTORIES[self.protocol]
        if self.protocol == "ezbft":
            target = target_replica or self.nearest_replica(region)
            client = client_cls(client_id, self.config, ctx, keypair,
                                self.registry, target_replica=target,
                                on_delivery=_recording_delivery)
        else:
            client = client_cls(client_id, self.config, ctx, keypair,
                                self.registry,
                                initial_view=self.primary_index,
                                on_delivery=_recording_delivery)
        self.network.register(client_id, region, client.on_message)
        self.clients[client_id] = client
        self.client_regions[client_id] = region
        return client

    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        return self.sim.run_until_idle(max_events=max_events)

    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        return self.config.replica_ids[self.primary_index]

    def replica_stats(self) -> Dict[str, Dict[str, int]]:
        return {rid: dict(r.stats) for rid, r in self.replicas.items()}

    def kvstores(self) -> Dict[str, KVStore]:
        return {rid: r.statemachine for rid, r in self.replicas.items()}


def build_cluster(protocol: str,
                  replica_regions: Sequence[str],
                  latency: LatencyMatrix = LOCAL,
                  *,
                  cpu: Optional[CpuModel] = None,
                  conditions: Optional[NetworkConditions] = None,
                  seed: int = 0,
                  primary_region: Optional[str] = None,
                  primary_index: int = 0,
                  interference: Optional[InterferenceRelation] = None,
                  slow_path_timeout: float = 400.0,
                  retry_timeout: float = 1200.0,
                  suspicion_timeout: float = 600.0,
                  view_change_timeout: float = 1500.0,
                  checkpoint_interval: int = 128) -> Cluster:
    """Build a simulated deployment of ``protocol``.

    ``replica_regions`` places one replica per entry (ids r0..rN-1).
    ``primary_region``/``primary_index`` choose the initial primary for
    the single-leader baselines (ignored by ezBFT).
    """
    if protocol not in PROTOCOLS:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")
    replica_ids = tuple(f"r{i}" for i in range(len(replica_regions)))
    regions_by_id = dict(zip(replica_ids, replica_regions))
    if primary_region is not None:
        candidates = [i for i, region in enumerate(replica_regions)
                      if region == primary_region]
        if not candidates:
            raise ConfigurationError(
                f"no replica in primary region {primary_region!r}")
        primary_index = candidates[0]
    if not 0 <= primary_index < len(replica_ids):
        raise ConfigurationError(
            f"primary_index {primary_index} out of range")

    config = ProtocolConfig(
        replica_ids=replica_ids,
        slow_path_timeout=slow_path_timeout,
        retry_timeout=retry_timeout,
        suspicion_timeout=suspicion_timeout,
        view_change_timeout=view_change_timeout,
        checkpoint_interval=checkpoint_interval,
    )
    sim = Simulator()
    network = SimNetwork(sim, latency, cpu=cpu, conditions=conditions,
                         seed=seed)
    registry = KeyRegistry()
    replica_cls, _ = _FACTORIES[protocol]
    relation = interference if interference is not None \
        else KVInterference()

    cluster = Cluster(protocol=protocol, sim=sim, network=network,
                      registry=registry, config=config, latency=latency,
                      replicas={}, replica_regions=regions_by_id,
                      primary_index=primary_index)

    for rid in replica_ids:
        keypair = registry.create(rid, seed=b"replica-seed")
        ctx = cluster.context_for(rid)
        if protocol == "ezbft":
            replica = replica_cls(rid, config, ctx, keypair, registry,
                                  statemachine=KVStore(),
                                  interference=relation)
        else:
            replica = replica_cls(rid, config, ctx, keypair, registry,
                                  statemachine=KVStore(),
                                  initial_view=primary_index)
        network.register(rid, regions_by_id[rid], replica.on_message)
        cluster.replicas[rid] = replica
    return cluster
