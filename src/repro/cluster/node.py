"""NodeContext: the only interface protocol code has to its environment.

Protocol replicas and clients never touch the simulator or network
directly; they receive a :class:`NodeContext` exposing send/broadcast,
cancellable timers, and the clock.  This keeps protocol logic
transport-agnostic -- the same replica class runs on the discrete-event
simulator (benchmarks/tests) and on the asyncio TCP transport (examples).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Protocol


class Timer(Protocol):
    """Cancellable timer handle."""

    def cancel(self) -> None: ...

    @property
    def pending(self) -> bool: ...


class NodeContext:
    """Environment handle bound to one node.

    Parameters are callables so the context can wrap any substrate:

    - ``send_fn(src, dst, message)``,
    - ``schedule_fn(delay_ms, callback, *args) -> Timer``,
    - ``now_fn() -> float`` (milliseconds).
    """

    def __init__(self, node_id: str,
                 send_fn: Callable[[str, str, Any], None],
                 schedule_fn: Callable[..., Timer],
                 now_fn: Callable[[], float]) -> None:
        self.node_id = node_id
        self._send = send_fn
        self._schedule = schedule_fn
        self._now = now_fn

    @property
    def now(self) -> float:
        """Current time in milliseconds."""
        return self._now()

    def send(self, dst: str, message: Any) -> None:
        """Send ``message`` to node ``dst``."""
        self._send(self.node_id, dst, message)

    def broadcast(self, dsts: Iterable[str], message: Any) -> None:
        """Send ``message`` to every node in ``dsts``."""
        for dst in dsts:
            self._send(self.node_id, dst, message)

    def set_timer(self, delay_ms: float, callback: Callable[..., None],
                  *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay_ms``; returns a handle."""
        return self._schedule(delay_ms, callback, *args)
