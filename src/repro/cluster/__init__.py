"""Cluster harness: wiring protocol nodes onto a transport, running
scenarios, and collecting metrics."""

from repro.cluster.node import NodeContext
from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.metrics import LatencyRecorder, LatencySummary, summarize

__all__ = [
    "NodeContext",
    "Cluster",
    "build_cluster",
    "LatencyRecorder",
    "LatencySummary",
    "summarize",
]
