"""Latency, throughput, and resident-footprint metrics collection."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def replica_footprint(replica: Any) -> Dict[str, int]:
    """Sizes of a replica's resident log/execution structures.

    Works for any replica shape: counts whatever of the known
    structures the object exposes.  The memory-bound benchmark samples
    this over a long run to prove checkpoint GC keeps every structure
    O(checkpoint interval) instead of O(history)."""
    sizes: Dict[str, int] = {}
    log_index = getattr(replica, "_log_index", None)
    if log_index is not None:
        sizes["log_entries"] = len(log_index)
    spaces = getattr(replica, "spaces", None)
    if spaces is not None:
        sizes["space_slots"] = sum(len(s) for s in spaces.values())
    slots = getattr(replica, "_slots", None)
    if slots is not None:
        sizes["slots"] = len(slots)
    executor = getattr(replica, "executor", None)
    if executor is not None:
        sizes["executed_instances"] = len(executor.executed)
        sizes["history"] = len(executor.history)
        sizes["results"] = len(executor._results)
        sizes["deferred"] = len(executor._deferred)
    pending = getattr(replica, "_pending_spec_orders", None)
    if pending is not None:
        sizes["pending_spec_orders"] = len(pending)
    sizes["total"] = sum(sizes.values())
    return sizes


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency samples (ms)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms "
                f"p50={self.p50:.1f} p90={self.p90:.1f} "
                f"p99={self.p99:.1f}")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(samples: List[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw samples."""
    if not samples:
        return LatencySummary(0, float("nan"), float("nan"),
                              float("nan"), float("nan"),
                              float("nan"), float("nan"))
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


class LatencyRecorder:
    """Accumulates per-request latency samples, tagged by group.

    Groups are free-form strings; the benchmarks use the client's region
    so they can print the per-region rows the paper's figures show.
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}
        self._paths: Dict[str, Dict[str, int]] = {}
        self.first_delivery: Optional[float] = None
        self.last_delivery: Optional[float] = None
        self.total_delivered = 0

    def record(self, group: str, latency_ms: float, path: str,
               now_ms: float) -> None:
        self._samples.setdefault(group, []).append(latency_ms)
        path_counts = self._paths.setdefault(group, {})
        path_counts[path] = path_counts.get(path, 0) + 1
        if self.first_delivery is None:
            self.first_delivery = now_ms
        self.last_delivery = now_ms
        self.total_delivered += 1

    def groups(self) -> Tuple[str, ...]:
        return tuple(sorted(self._samples))

    def samples(self, group: str) -> List[float]:
        return list(self._samples.get(group, []))

    def all_samples(self) -> List[float]:
        out: List[float] = []
        for samples in self._samples.values():
            out.extend(samples)
        return out

    def summary(self, group: str) -> LatencySummary:
        return summarize(self._samples.get(group, []))

    def overall(self) -> LatencySummary:
        return summarize(self.all_samples())

    def path_counts(self, group: str) -> Dict[str, int]:
        return dict(self._paths.get(group, {}))

    def fast_path_fraction(self, group: Optional[str] = None) -> float:
        """Fraction of deliveries that took the fast path."""
        groups = [group] if group is not None else list(self._paths)
        fast = total = 0
        for g in groups:
            for path, count in self._paths.get(g, {}).items():
                total += count
                if path == "fast":
                    fast += count
        return fast / total if total else float("nan")

    def throughput_per_sec(self, window_ms: Optional[float] = None
                           ) -> float:
        """Delivered requests per (simulated) second.

        Uses the observed delivery window unless ``window_ms`` is given.
        """
        if window_ms is None:
            if self.first_delivery is None or \
                    self.last_delivery is None or \
                    self.last_delivery <= self.first_delivery:
                return 0.0
            window_ms = self.last_delivery - self.first_delivery
        if window_ms <= 0:
            return 0.0
        return self.total_delivered * 1000.0 / window_ms
