"""Latency, throughput, and resident-footprint metrics collection."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


def replica_footprint(replica: Any) -> Dict[str, int]:
    """Sizes of a replica's resident log/execution structures.

    Works for any replica shape: counts whatever of the known
    structures the object exposes.  The memory-bound benchmark samples
    this over a long run to prove checkpoint GC keeps every structure
    O(checkpoint interval) instead of O(history)."""
    sizes: Dict[str, int] = {}
    log_index = getattr(replica, "_log_index", None)
    if log_index is not None:
        sizes["log_entries"] = len(log_index)
    spaces = getattr(replica, "spaces", None)
    if spaces is not None:
        sizes["space_slots"] = sum(len(s) for s in spaces.values())
    slots = getattr(replica, "_slots", None)
    if slots is not None:
        sizes["slots"] = len(slots)
    executor = getattr(replica, "executor", None)
    if executor is not None:
        sizes["executed_instances"] = len(executor.executed)
        sizes["history"] = len(executor.history)
        sizes["results"] = len(executor._results)
        sizes["deferred"] = len(executor._deferred)
    pending = getattr(replica, "_pending_spec_orders", None)
    if pending is not None:
        sizes["pending_spec_orders"] = len(pending)
    sizes["total"] = sum(sizes.values())
    return sizes


@dataclass
class LatencySummary:
    """Summary statistics over a set of latency samples (ms)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.1f}ms "
                f"p50={self.p50:.1f} p90={self.p90:.1f} "
                f"p99={self.p99:.1f}")


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list."""
    if not sorted_values:
        return float("nan")
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(samples: List[float]) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw samples."""
    if not samples:
        return LatencySummary(0, float("nan"), float("nan"),
                              float("nan"), float("nan"),
                              float("nan"), float("nan"))
    ordered = sorted(samples)
    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=_percentile(ordered, 0.50),
        p90=_percentile(ordered, 0.90),
        p99=_percentile(ordered, 0.99),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


class LatencyRecorder:
    """Accumulates per-request latency samples, tagged by group and phase.

    Groups are free-form strings; the benchmarks use the client's region
    so they can print the per-region rows the paper's figures show.

    Two scenario-grade facilities sit on top of the raw accumulation:

    - **Warmup exclusion**: ``discard_first`` drops the first N samples
      of every group before they reach any statistic (the classic
      closed-loop warmup transient).  Dropped samples are counted in
      :attr:`warmup_discarded` so reports can show what was excluded.
    - **Phase tagging**: :meth:`begin_phase` opens a named phase; every
      subsequent sample is tagged with it, and the per-phase accessors
      (``summary(group, phase=...)``, ``delivered(phase)``,
      ``fast_path_fraction(phase=...)``, :meth:`phase_window`) slice the
      run along the phase timeline.  Until the first ``begin_phase``
      call, samples land in the implicit ``"main"`` phase.
    """

    DEFAULT_PHASE = "main"

    def __init__(self, discard_first: int = 0) -> None:
        self.discard_first = discard_first
        self.warmup_discarded = 0
        self._seen: Dict[str, int] = {}
        self._samples: Dict[str, List[float]] = {}
        self._paths: Dict[str, Dict[str, int]] = {}
        self._phase_order: List[str] = []
        self._phase_starts: Dict[str, float] = {}
        self._phase_samples: Dict[str, Dict[str, List[float]]] = {}
        self._phase_paths: Dict[str, Dict[str, Dict[str, int]]] = {}
        self._phase_first: Dict[str, float] = {}
        self._phase_last: Dict[str, float] = {}
        self._current_phase: Optional[str] = None
        self.first_delivery: Optional[float] = None
        self.last_delivery: Optional[float] = None
        self.total_delivered = 0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def begin_phase(self, name: str, now_ms: float = 0.0) -> None:
        """Open phase ``name`` at ``now_ms``; later samples are tagged
        with it.  Phase names must be unique within a run."""
        if name in self._phase_starts:
            raise ValueError(f"phase {name!r} already began")
        self._phase_order.append(name)
        self._phase_starts[name] = now_ms
        self._current_phase = name

    def current_phase(self) -> str:
        return self._current_phase or self.DEFAULT_PHASE

    def phases(self) -> Tuple[str, ...]:
        """Phase names in timeline order."""
        return tuple(self._phase_order)

    def phase_window(self, phase: str) -> Tuple[float, float]:
        """``(start_ms, end_ms)`` of a phase: its declared start to the
        next phase's start (or the last delivery for the final phase)."""
        if phase not in self._phase_starts:
            raise KeyError(f"unknown phase {phase!r}")
        start = self._phase_starts[phase]
        index = self._phase_order.index(phase)
        if index + 1 < len(self._phase_order):
            end = self._phase_starts[self._phase_order[index + 1]]
        else:
            end = max(self._phase_last.get(phase, start), start)
        return start, end

    def _ensure_phase(self) -> str:
        if self._current_phase is None:
            self.begin_phase(self.DEFAULT_PHASE, 0.0)
        return self._current_phase  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, group: str, latency_ms: float, path: str,
               now_ms: float) -> None:
        seen = self._seen.get(group, 0)
        self._seen[group] = seen + 1
        if seen < self.discard_first:
            self.warmup_discarded += 1
            return
        phase = self._ensure_phase()
        self._samples.setdefault(group, []).append(latency_ms)
        path_counts = self._paths.setdefault(group, {})
        path_counts[path] = path_counts.get(path, 0) + 1
        by_group = self._phase_samples.setdefault(phase, {})
        by_group.setdefault(group, []).append(latency_ms)
        phase_paths = self._phase_paths.setdefault(phase, {})
        group_paths = phase_paths.setdefault(group, {})
        group_paths[path] = group_paths.get(path, 0) + 1
        if phase not in self._phase_first:
            self._phase_first[phase] = now_ms
        self._phase_last[phase] = now_ms
        if self.first_delivery is None:
            self.first_delivery = now_ms
        self.last_delivery = now_ms
        self.total_delivered += 1

    def groups(self) -> Tuple[str, ...]:
        return tuple(sorted(self._samples))

    def samples(self, group: str,
                phase: Optional[str] = None) -> List[float]:
        if phase is None:
            return list(self._samples.get(group, []))
        return list(self._phase_samples.get(phase, {}).get(group, []))

    def all_samples(self, phase: Optional[str] = None) -> List[float]:
        source = self._samples if phase is None \
            else self._phase_samples.get(phase, {})
        out: List[float] = []
        for samples in source.values():
            out.extend(samples)
        return out

    def summary(self, group: str,
                phase: Optional[str] = None) -> LatencySummary:
        return summarize(self.samples(group, phase=phase))

    def overall(self, phase: Optional[str] = None) -> LatencySummary:
        return summarize(self.all_samples(phase=phase))

    def delivered(self, phase: Optional[str] = None) -> int:
        if phase is None:
            return self.total_delivered
        return sum(len(s)
                   for s in self._phase_samples.get(phase, {}).values())

    def path_counts(self, group: str,
                    phase: Optional[str] = None) -> Dict[str, int]:
        if phase is None:
            return dict(self._paths.get(group, {}))
        return dict(self._phase_paths.get(phase, {}).get(group, {}))

    def fast_path_fraction(self, group: Optional[str] = None,
                           phase: Optional[str] = None) -> float:
        """Fraction of deliveries that took the fast path."""
        source = self._paths if phase is None \
            else self._phase_paths.get(phase, {})
        groups = [group] if group is not None else list(source)
        fast = total = 0
        for g in groups:
            for path, count in source.get(g, {}).items():
                total += count
                if path == "fast":
                    fast += count
        return fast / total if total else float("nan")

    def throughput_per_sec(self, window_ms: Optional[float] = None,
                           phase: Optional[str] = None) -> float:
        """Delivered requests per (simulated) second.

        Uses the observed delivery window (of ``phase``, when given)
        unless ``window_ms`` overrides it.
        """
        delivered = self.delivered(phase=phase)
        if window_ms is None:
            if phase is not None:
                first = self._phase_first.get(phase)
                last = self._phase_last.get(phase)
            else:
                first, last = self.first_delivery, self.last_delivery
            if first is None or last is None or last <= first:
                return 0.0
            window_ms = last - first
        if window_ms <= 0:
            return 0.0
        return delivered * 1000.0 / window_ms
