"""On-disk durability: WAL + snapshot store behind the replica seam.

``repro.storage`` is the only layer (besides the operational surfaces:
sweep cache, scenario reports, obs snapshots, the CLI) allowed to touch
the filesystem -- ``core``/``protocols`` stay pure and testable.  The
package provides three building blocks:

- :func:`atomic_write_json` -- the tmp-file + ``os.replace`` idiom
  (shared with the sweep cell cache and the serve drain snapshot), so a
  kill at any instant leaves either the old file or the new one, never
  a torn hybrid;
- :class:`WriteAheadLog` / :func:`replay_wal` -- an append-only,
  length-prefixed, CRC-framed record log whose replay stops cleanly at
  the last whole record (a ``kill -9`` mid-append tears at most the
  final record);
- :class:`ReplicaStorage` -- the per-replica facade: one directory per
  replica holding rotating WAL segments plus one atomic snapshot file
  per stable checkpoint, with recovery = newest valid snapshot + replay
  of the retained segments.
"""

from repro.storage.atomic import atomic_write_json
from repro.storage.store import ReplicaStorage, RecoverySummary
from repro.storage.wal import WriteAheadLog, replay_wal, valid_prefix_len

__all__ = [
    "ReplicaStorage",
    "RecoverySummary",
    "WriteAheadLog",
    "atomic_write_json",
    "replay_wal",
    "valid_prefix_len",
]
