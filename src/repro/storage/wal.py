"""An append-only write-ahead log of length-prefixed JSON records.

Framing mirrors the TCP codec's philosophy (length prefix + canonical
JSON body) with one addition: a CRC32 of the body rides in the header,
so a record torn by ``kill -9`` mid-append -- short body, or a header
written without its body -- is detected and replay stops cleanly at
the last whole record instead of feeding garbage to the decoder.

Bodies are produced with :func:`repro.crypto.digest.canonical_bytes`,
the exact encoding the wire codec ships, so anything that round-trips
TCP round-trips the WAL: the read side is plain ``json.loads`` + the
ordinary message registry.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any, Iterator, Tuple

from repro.crypto.digest import canonical_bytes

#: Record header: little-endian (body length, CRC32 of body).
_HEADER = struct.Struct("<II")

#: Sanity bound on one record's body; a corrupt length prefix must not
#: make replay try to slurp gigabytes before noticing the tear.
MAX_RECORD_BYTES = 64 * 1024 * 1024


def encode_record(record: Any) -> bytes:
    """One framed record: header + canonical JSON body."""
    body = canonical_bytes(record)
    if len(body) > MAX_RECORD_BYTES:
        raise ValueError(
            f"WAL record of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte bound")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _scan(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(end_offset, body)`` for every whole, CRC-valid record;
    stop silently at the first torn or corrupt one."""
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return  # corrupt length prefix
        end = offset + _HEADER.size + length
        if end > total:
            return  # torn final record: header landed, body did not
        body = data[offset + _HEADER.size:end]
        if zlib.crc32(body) != crc:
            return  # bit rot or an interleaved partial write
        yield end, body
        offset = end


def replay_wal(path: str) -> Iterator[Any]:
    """Decode every whole record in ``path``, tolerating a torn tail.

    A missing file replays as empty (a replica that never appended).
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return
    for _, body in _scan(data):
        yield json.loads(body.decode("utf-8"))


def valid_prefix_len(path: str) -> int:
    """Byte length of the whole-record prefix of ``path`` (0 if the
    file is missing) -- where an appender must truncate to before
    reusing a segment that may end in a torn record."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return 0
    end = 0
    for end, _ in _scan(data):
        pass
    return end


class WriteAheadLog:
    """One open WAL segment.

    ``fresh=True`` truncates (a rotation writing a new head);
    ``fresh=False`` reopens for append after truncating any torn tail,
    so post-recovery appends land after the last whole record instead
    of behind unreachable garbage.
    """

    def __init__(self, path: str, fresh: bool = False) -> None:
        self.path = path
        os.makedirs(os.path.dirname(os.path.abspath(path)),
                    exist_ok=True)
        if fresh:
            self._fh = open(path, "wb")
        else:
            keep = valid_prefix_len(path)
            self._fh = open(path, "ab")
            if self._fh.tell() > keep:
                self._fh.truncate(keep)
                self._fh.seek(keep)

    def append(self, record: Any) -> None:
        self._fh.write(encode_record(record))
        # Flush to the OS on every append: kill -9 only loses what sits
        # in *user-space* buffers; the page cache survives the process.
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass
