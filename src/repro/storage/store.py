"""ReplicaStorage: the per-replica durability facade.

Layout (one directory per replica under the deployment's data dir)::

    <data_dir>/<replica_id>/
        wal-<watermark>.log       # segment opened at that stable point
        snapshot-<watermark>.json # atomic snapshot per stable checkpoint

Lifecycle: protocol evidence (signed SPECORDER/BATCHSPECORDER/COMMIT
envelopes, fast-commit certificates, peer checkpoint attestations)
appends to the current WAL segment as it is accepted.  When a
checkpoint becomes stable, the snapshot is written atomically, the WAL
rotates to a fresh ``wal-<watermark>.log`` segment (the replica then
re-logs its retained suffix into it, making every segment head
self-contained), and everything older than the second-newest snapshot
is pruned.  Recovery loads the newest digest-valid snapshot (falling
back to the previous one on corruption) and replays all retained
segments in watermark order; replay tolerates a torn final record.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.crypto.digest import digest
from repro.storage.atomic import atomic_write_json
from repro.storage.wal import WriteAheadLog, replay_wal

SNAPSHOT_VERSION = 1

_SEGMENT_RE = re.compile(r"^wal-(\d+)\.log$")
_SNAPSHOT_RE = re.compile(r"^snapshot-(\d+)\.json$")


@dataclass
class RecoverySummary:
    """What a restart actually read back from disk."""

    snapshot_watermark: Optional[int] = None
    records_replayed: int = 0
    segments: Tuple[int, ...] = ()
    invalid_snapshots: List[int] = field(default_factory=list)


class ReplicaStorage:
    """WAL segments + checkpoint snapshots for one replica.

    Opening the store reopens the newest segment for append (truncating
    any torn tail first, so new records never land behind unreachable
    garbage); a fresh directory starts at ``wal-0.log``.
    """

    def __init__(self, data_dir: str, replica_id: str,
                 retain: int = 2) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.replica_id = replica_id
        self.retain = retain
        self.root = os.path.join(data_dir, replica_id)
        os.makedirs(self.root, exist_ok=True)
        segments = self._segment_watermarks()
        current = segments[-1] if segments else 0
        self._wal = WriteAheadLog(self._segment_path(current))
        self._current_segment = current

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_entry(self, sender: str, message: Any) -> None:
        """Log-entry evidence: a signed order/commit envelope (or a
        fast-commit certificate message) exactly as it arrived."""
        self._append("entry", sender, message)

    def append_attest(self, sender: str, message: Any) -> None:
        """A peer's signed checkpoint attestation."""
        self._append("attest", sender, message)

    def _append(self, kind: str, sender: str, message: Any) -> None:
        wire = message.to_wire() if callable(
            getattr(message, "to_wire", None)) else message
        self._wal.append({"kind": kind, "sender": sender, "wire": wire})

    # ------------------------------------------------------------------
    # Stable-checkpoint lifecycle
    # ------------------------------------------------------------------
    def save_snapshot(self, watermark: int, state_digest: str,
                      snapshot: Dict[str, Any]) -> None:
        atomic_write_json(
            self._snapshot_path(watermark),
            {"version": SNAPSHOT_VERSION, "replica": self.replica_id,
             "watermark": watermark, "state_digest": state_digest,
             "snapshot": snapshot},
            sort_keys=True)

    def rotate(self, watermark: int) -> None:
        """Open a fresh (truncated) segment for the new stable point.

        The caller re-logs its retained log suffix into it immediately
        after, so the segment is self-contained from its watermark on.
        """
        self._wal.close()
        self._wal = WriteAheadLog(self._segment_path(watermark),
                                  fresh=True)
        self._current_segment = watermark

    def prune(self) -> None:
        """Drop snapshots beyond ``retain`` and segments older than the
        oldest retained snapshot (the current segment always stays)."""
        snapshots = self._snapshot_watermarks()
        keep = snapshots[-self.retain:]
        for watermark in snapshots[:-self.retain]:
            self._unlink(self._snapshot_path(watermark))
        floor = keep[0] if keep else 0
        for watermark in self._segment_watermarks():
            if watermark < floor and watermark != self._current_segment:
                self._unlink(self._segment_path(watermark))

    # ------------------------------------------------------------------
    # Recovery reads
    # ------------------------------------------------------------------
    def load_snapshot(self, summary: Optional[RecoverySummary] = None
                      ) -> Optional[Dict[str, Any]]:
        """The newest digest-valid snapshot payload, or ``None``.

        A snapshot whose JSON fails to parse or whose recomputed state
        digest disagrees with the recorded one is skipped (never
        deleted -- operators may want the forensic evidence) and the
        next-older one is tried.
        """
        import json

        for watermark in reversed(self._snapshot_watermarks()):
            path = self._snapshot_path(watermark)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                payload = None
            if (isinstance(payload, dict)
                    and payload.get("version") == SNAPSHOT_VERSION
                    and payload.get("watermark") == watermark
                    and digest(payload.get("snapshot", {})) ==
                    payload.get("state_digest")):
                if summary is not None:
                    summary.snapshot_watermark = watermark
                return payload
            if summary is not None:
                summary.invalid_snapshots.append(watermark)
        return None

    def replay_records(self, summary: Optional[RecoverySummary] = None
                       ) -> Iterator[Dict[str, Any]]:
        """Every whole record across retained segments, oldest segment
        first (replay naturally skips duplicates below the restored
        frontier, so replaying a too-old segment is safe)."""
        segments = self._segment_watermarks()
        if summary is not None:
            summary.segments = tuple(segments)
        for watermark in segments:
            for record in replay_wal(self._segment_path(watermark)):
                if summary is not None:
                    summary.records_replayed += 1
                yield record

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._wal.close()

    # ------------------------------------------------------------------
    def _segment_path(self, watermark: int) -> str:
        return os.path.join(self.root, f"wal-{watermark}.log")

    def _snapshot_path(self, watermark: int) -> str:
        return os.path.join(self.root, f"snapshot-{watermark}.json")

    def _segment_watermarks(self) -> List[int]:
        return self._scan(_SEGMENT_RE)

    def _snapshot_watermarks(self) -> List[int]:
        return self._scan(_SNAPSHOT_RE)

    def _scan(self, pattern: "re.Pattern") -> List[int]:
        found = []
        for name in os.listdir(self.root):
            match = pattern.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    @staticmethod
    def _unlink(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass
