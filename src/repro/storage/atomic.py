"""Atomic JSON file writes: tmp file in the target directory + rename.

``os.replace`` is atomic on POSIX within one filesystem, so readers
(and a process killed mid-write) observe either the previous complete
file or the new complete file -- never a truncated hybrid.  This is the
same idiom the sweep cell cache has always used; it lives here so the
serve drain snapshot and the checkpoint snapshot store share one
implementation instead of three slightly-different copies.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional


def atomic_write_json(path: str, payload: Any, *,
                      indent: Optional[int] = None,
                      sort_keys: bool = False) -> None:
    """Serialize ``payload`` as JSON and atomically replace ``path``.

    The temp file is created in the destination directory (``rename``
    across filesystems is not atomic), fsync'd data is not required for
    the kill -9 model (the OS page cache survives process death), and
    the temp file is unlinked on any failure so crashes never litter
    the data dir with ``.tmp`` orphans that a later writer trips over.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=sort_keys,
                      allow_nan=False)
            if indent is not None:
                fh.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
