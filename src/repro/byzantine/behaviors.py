"""Concrete byzantine replica behaviours for ezBFT.

Each class exercises one of the failure modes the paper discusses:

- :class:`SilentReplica` -- a crashed/unresponsive replica; drives the
  client-retry -> RESENDREQ -> suspicion-timeout -> owner-change path
  (paper step 4.3).
- :class:`EquivocatingLeaderReplica` -- a command-leader that sends
  different SPECORDERs for the same request to different replicas;
  drives the client's proof-of-misbehavior path (paper step 4.4).
- :class:`DepSuppressingReplica` -- the Figure-3 misbehaviour: reports
  empty dependencies / sequence number 1 regardless of its log (the
  TLA+ spec's ``behavior = "bad"`` branch), knocking clients off the
  fast path without being individually provable.
- :class:`CorruptResultReplica` -- replies with a corrupted execution
  result; clients never match it, so it can at worst force slow paths.
"""

from __future__ import annotations

from typing import Any, Optional, Type

from repro.core.instance import InstanceSpace, LogEntry
from repro.errors import ConfigurationError
from repro.core.replica import EzBFTReplica
from repro.crypto.digest import digest
from repro.messages.base import SignedPayload
from repro.messages.ezbft import Request, SpecOrder, SpecReply
from repro.statemachine.kvstore import KVStore
from repro.types import InstanceID


class SilentReplica(EzBFTReplica):
    """Receives everything, does nothing."""

    def on_message(self, sender: str, message: Any) -> None:
        return


class EquivocatingLeaderReplica(EzBFTReplica):
    """Sends conflicting SPECORDERs for the same request: the same slot
    is proposed with different metadata to different replicas, so the
    client observes two validly signed, conflicting SPECORDERs and can
    assemble a proof of misbehavior (paper step 4.4)."""

    def _lead(self, request: Request) -> None:
        space = self.spaces[self.node_id]
        if space.frozen:
            return
        command = request.command
        self._client_ts[command.client_id] = command.timestamp
        slot = space.allocate_slot()
        request_digest = digest(request)

        def make_order(seq: int) -> SignedPayload:
            instance = InstanceID(self.node_id, slot)
            order = SpecOrder(
                leader=self.node_id,
                owner_number=space.owner_number,
                instance=instance,
                command=command,
                deps=(),
                seq=seq,
                log_digest="",
                request_digest=request_digest,
            )
            return SignedPayload.create(order, self.keypair)

        order_a = make_order(1)
        order_b = make_order(2)
        others = self.config.others(self.node_id)
        half = len(others) // 2
        for dst in others[:half]:
            self.ctx.send(dst, order_a)
        for dst in others[half:]:
            self.ctx.send(dst, order_b)
        # Reply to the client consistently with order_a.
        entry = LogEntry(instance=order_a.payload.instance,
                         owner_number=space.owner_number,
                         command=command, deps=(), seq=1,
                         spec_order=order_a)
        entry.spec_result = "equivocated"
        self._send_spec_reply(entry, order_a)
        self.stats["led"] += 1


class DepSuppressingReplica(EzBFTReplica):
    """Always reports empty dependencies and sequence number 1 in its
    SPECREPLYs (the TLA+ 'bad' branch / Figure 3's R2)."""

    def _send_spec_reply(self, entry: LogEntry,
                         signed_order: SignedPayload,
                         request_digest=None) -> None:
        lied = LogEntry(instance=entry.instance,
                        owner_number=entry.owner_number,
                        command=entry.command,
                        deps=(), seq=1,
                        spec_order=entry.spec_order)
        lied.spec_result = entry.spec_result
        super()._send_spec_reply(lied, signed_order,
                                 request_digest=request_digest)


class CorruptResultReplica(EzBFTReplica):
    """Replies with a corrupted execution result."""

    def _send_spec_reply(self, entry: LogEntry,
                         signed_order: SignedPayload,
                         request_digest=None) -> None:
        corrupted = LogEntry(instance=entry.instance,
                             owner_number=entry.owner_number,
                             command=entry.command,
                             deps=entry.deps, seq=entry.seq,
                             spec_order=entry.spec_order)
        corrupted.spec_result = "##corrupt##"
        super()._send_spec_reply(corrupted, signed_order,
                                 request_digest=request_digest)


#: Declarative behaviour names, the vocabulary scenario fault schedules
#: (``SwapByzantine(behavior="equivocate")``) and the CLI use.
BEHAVIORS = {
    "silent": SilentReplica,
    "equivocate": EquivocatingLeaderReplica,
    "dep_suppress": DepSuppressingReplica,
    "corrupt_result": CorruptResultReplica,
}


def behavior_by_name(name: str) -> Type[EzBFTReplica]:
    """Resolve a behaviour name from :data:`BEHAVIORS`."""
    try:
        return BEHAVIORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown byzantine behavior {name!r}; choose from "
            f"{tuple(BEHAVIORS)}") from None


def install_byzantine(cluster, replica_id: str,
                      behavior: Type[EzBFTReplica],
                      interference=None,
                      statemachine=None) -> EzBFTReplica:
    """Replace ``replica_id`` in a cluster with an instance of
    ``behavior`` (typically before the run starts; swapping mid-run
    discards the replica's application state, which a byzantine node is
    allowed to do anyway).  Returns the new replica object."""
    old = cluster.replicas[replica_id]
    relation = interference if interference is not None \
        else old.interference
    replica = behavior(replica_id, cluster.config,
                       cluster.context_for(replica_id), old.keypair,
                       cluster.registry,
                       statemachine if statemachine is not None
                       else KVStore(),
                       relation)
    cluster.replicas[replica_id] = replica
    cluster.network.set_handler(replica_id, replica.on_message)
    return replica


def silence_node(cluster, node_id: str) -> None:
    """Make any node (replica of any protocol, or client) drop all
    incoming messages -- equivalent to a crash."""
    cluster.network.set_handler(node_id, lambda sender, message: None)
