"""Byzantine fault injection.

Faulty behaviours are expressed as replica subclasses that misbehave in
protocol-specific ways; :func:`install_byzantine` swaps one into a built
cluster before the run starts.
"""

from repro.byzantine.behaviors import (
    CorruptResultReplica,
    DepSuppressingReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    install_byzantine,
    silence_node,
)

__all__ = [
    "SilentReplica",
    "EquivocatingLeaderReplica",
    "DepSuppressingReplica",
    "CorruptResultReplica",
    "install_byzantine",
    "silence_node",
]
