"""Byzantine fault injection.

Faulty behaviours are expressed as replica subclasses that misbehave in
protocol-specific ways; :func:`install_byzantine` swaps one into a built
cluster before the run starts.
"""

from repro.byzantine.behaviors import (
    BEHAVIORS,
    CorruptResultReplica,
    DepSuppressingReplica,
    EquivocatingLeaderReplica,
    SilentReplica,
    behavior_by_name,
    install_byzantine,
    silence_node,
)

__all__ = [
    "BEHAVIORS",
    "behavior_by_name",
    "SilentReplica",
    "EquivocatingLeaderReplica",
    "DepSuppressingReplica",
    "CorruptResultReplica",
    "install_byzantine",
    "silence_node",
]
