"""Exception hierarchy for the ezBFT reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A cluster or protocol was configured inconsistently.

    Examples: fewer than ``3f + 1`` replicas, a client bound to an unknown
    region, or a quorum specification that does not include the leader.
    """


class CryptoError(ReproError):
    """Signature creation or verification failed."""


class InvalidSignatureError(CryptoError):
    """A signature did not verify against the claimed signer's key."""


class UnknownSignerError(CryptoError):
    """A signature names a node that is not present in the key registry."""


class SerializationError(ReproError):
    """A message could not be encoded to or decoded from its wire form."""


class ProtocolError(ReproError):
    """A replica or client received a message that violates the protocol.

    Honest nodes raise (and locally swallow/log) this when byzantine peers
    send malformed or inconsistent messages; it is never fatal to the node.
    """


class InstanceSpaceFrozenError(ProtocolError):
    """An operation targeted an instance space that has been frozen
    by a completed owner change."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ScenarioTimeoutError(ReproError):
    """A scenario run on a wall-clock backend exceeded its time budget.

    Raised by :class:`~repro.scenario.runner.ScenarioRunner` after the
    deployment has been torn down (drivers stopped, sockets closed), so
    a timed-out run never leaks live tasks into the caller's loop.
    """


class TransportError(ReproError):
    """A message could not be delivered by the active transport."""


class StateMachineError(ReproError):
    """A command could not be applied to the replicated state machine."""
