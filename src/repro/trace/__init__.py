"""repro.trace: deterministic causal request tracing.

Follows one client command end to end -- client issue, owner
order/SPECORDER, per-replica vote, commit (fast vs. slow path tagged),
executor dependency wait, final execution, reply -- as typed span
records with causal parent links (:mod:`repro.trace.span`).

Design constraints, in order:

1. **Off by default, free when off.**  Every hot-path site holds a
   ``tracer`` attribute that defaults to the no-op
   :data:`NULL_TRACER` and guards on ``tracer.enabled`` -- the same
   seam discipline as :mod:`repro.obs.instruments`, verified by the
   pinned ``repro bench`` baseline gate.
2. **Deterministic on the sim backend.**  Span timestamps come from
   the injected clock (``Simulator.now`` on sim), span ids from a
   per-tracer counter, trace ids from the command's ``(client,
   timestamp)`` ident, and sampling from ``zlib.crc32`` -- so seeded
   runs produce byte-identical trace JSON, usable as regression
   artifacts.  Only :mod:`repro.trace.live` (the TCP clock) may read
   the wall clock; the analysis layer map enforces this.
3. **Context rides the wire, old frames still decode.**  Both
   transports capture the tracer's current context at send time and
   restore it around delivery; the TCP codec carries it in a new
   optional ``TRACED`` frame kind (:mod:`repro.transport.codec`),
   and plain frames decode unchanged.

On top of raw spans: a critical-path analyzer
(:mod:`repro.trace.critical_path`) answering "where did the time go"
per request and aggregated by commit path, plus schema-stable JSON
and Chrome trace-event exporters (:mod:`repro.trace.export`,
loadable in Perfetto / ``chrome://tracing``).
"""

from repro.trace.context import TraceContext
from repro.trace.critical_path import critical_path, summarize_traces
from repro.trace.export import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    chrome_trace_json,
    export_json,
    export_spans,
)
from repro.trace.span import (
    SPAN_CLIENT_REQUEST,
    SPAN_CLIENT_SLOW_PATH,
    SPAN_EXEC_APPLY,
    SPAN_EXEC_DEPWAIT,
    SPAN_OWNER_LEAD,
    SPAN_REPLICA_COMMIT,
    SPAN_REPLICA_VOTE,
    SPAN_NAMES,
    Span,
)
from repro.trace.tracer import (
    NULL_TRACER,
    ActiveTracer,
    TraceCollector,
    Tracer,
)

__all__ = [
    "TraceContext",
    "critical_path",
    "summarize_traces",
    "TRACE_SCHEMA_VERSION",
    "chrome_trace",
    "chrome_trace_json",
    "export_json",
    "export_spans",
    "SPAN_CLIENT_REQUEST",
    "SPAN_CLIENT_SLOW_PATH",
    "SPAN_EXEC_APPLY",
    "SPAN_EXEC_DEPWAIT",
    "SPAN_OWNER_LEAD",
    "SPAN_REPLICA_COMMIT",
    "SPAN_REPLICA_VOTE",
    "SPAN_NAMES",
    "Span",
    "NULL_TRACER",
    "ActiveTracer",
    "TraceCollector",
    "Tracer",
]
