"""Critical-path analysis: where did each request's time go?

Per trace, the critical path is the causal chain from the root span
to the latest-finishing work under it: at every step we descend into
the child whose end time is largest (ties broken by span id, so the
walk is deterministic).  Only children that finished by the root's
end are eligible -- work completing after the client already
delivered (e.g. the fast path's asynchronous COMMITFAST fan-out and
the commit/execution spans it triggers) is post-completion
housekeeping, not on the delivery-latency path.  Each chain member's
*self time* is its duration minus the part covered by the chosen
child -- summing self times along the chain recovers the root's wall
time attributed to phases.

The aggregate (:func:`summarize_traces`) buckets traces by the root
span's commit path (``fast``/``slow``, from the client's delivery
tag) and reports per-phase totals and means -- the "MAC verification
vs. dependency wait vs. slow-path fallback" breakdown the report
folds in.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.trace.span import SPAN_CLIENT_REQUEST, Span

#: Path bucket for roots that never got a delivery tag (e.g. the run
#: ended mid-flight).
UNTAGGED_PATH = "untagged"


def _by_trace(spans: Iterable[Span]) -> Dict[str, List[Span]]:
    traces: Dict[str, List[Span]] = {}
    for span in spans:
        traces.setdefault(span.trace_id, []).append(span)
    return traces


def _root_of(spans: List[Span]) -> Optional[Span]:
    roots = [s for s in spans if s.parent_id is None]
    if not roots:
        return None
    # Prefer the client root; fall back to the earliest parentless
    # span (a partial trace from a ring-buffered live collector).
    for root in sorted(roots, key=lambda s: (s.start_ms, s.span_id)):
        if root.name == SPAN_CLIENT_REQUEST:
            return root
    return min(roots, key=lambda s: (s.start_ms, s.span_id))


def _end_ms(span: Span) -> float:
    return span.end_ms if span.end_ms is not None else span.start_ms


def critical_path(spans: List[Span]
                  ) -> List[Tuple[Span, float]]:
    """The (span, self_ms) chain of one trace's spans, root first.

    Self time is clamped at zero: clock skew between TCP processes
    can make a child appear to outlast its parent, and a negative
    phase would corrupt every aggregate downstream.
    """
    root = _root_of(spans)
    if root is None:
        return []
    children: Dict[str, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)

    chain: List[Span] = []
    node: Optional[Span] = root
    root_end = _end_ms(root)
    seen = set()
    while node is not None and node.span_id not in seen:
        seen.add(node.span_id)
        chain.append(node)
        kids = [s for s in children.get(node.span_id, ())
                if _end_ms(s) <= root_end]
        if not kids:
            break
        node = max(kids, key=lambda s: (_end_ms(s), s.span_id))

    result: List[Tuple[Span, float]] = []
    for i, span in enumerate(chain):
        duration = max(0.0, _end_ms(span) - span.start_ms)
        if i + 1 < len(chain):
            child = chain[i + 1]
            overlap = min(_end_ms(span), _end_ms(child)) - \
                max(span.start_ms, child.start_ms)
            duration = max(0.0, duration - max(0.0, overlap))
        result.append((span, duration))
    return result


def summarize_traces(spans: Iterable[Span]) -> Dict[str, Any]:
    """Aggregate critical paths across traces, bucketed by commit
    path -- the dict :class:`~repro.scenario.report.ExperimentReport`
    embeds when a run is traced."""
    traces = _by_trace(spans)
    by_path: Dict[str, Dict[str, Any]] = {}
    span_total = 0
    for trace_id in sorted(traces):
        members = traces[trace_id]
        span_total += len(members)
        chain = critical_path(members)
        if not chain:
            continue
        root = chain[0][0]
        path = root.attrs.get("path") or UNTAGGED_PATH
        bucket = by_path.setdefault(path, {
            "count": 0,
            "total_ms": 0.0,
            "phase_ms": {},
        })
        bucket["count"] += 1
        bucket["total_ms"] += max(0.0, _end_ms(root) - root.start_ms)
        for span, self_ms in chain:
            phase = bucket["phase_ms"]
            phase[span.name] = phase.get(span.name, 0.0) + self_ms

    for bucket in by_path.values():
        count = bucket["count"]
        bucket["total_ms"] = round(bucket["total_ms"], 6)
        bucket["mean_ms"] = round(bucket["total_ms"] / count, 6)
        bucket["phase_ms"] = {
            name: round(total, 6)
            for name, total in sorted(bucket["phase_ms"].items())
        }
    return {
        "traces": len(traces),
        "spans": span_total,
        "by_path": {path: by_path[path] for path in sorted(by_path)},
    }
