"""Trace exporters: schema-stable JSON and Chrome trace events.

The JSON export is a regression artifact: span order is pinned
(``(trace, start_ms, span)``), keys are sorted, floats come straight
from the deterministic clock -- so two seeded sim runs serialize to
identical bytes.  Its top-level and per-span key sets are pinned by
``tests/data/trace_schema.json`` (regenerate deliberately with
``python tests/test_trace.py --regen``).

The Chrome form (``{"traceEvents": [...]}``) loads directly in
Perfetto or ``chrome://tracing``: one complete (``ph="X"``) event
per span, grouped by trace (pid) and node (tid), timestamps in
microseconds as the format requires.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.trace.span import Span

#: Bump when the export layout changes; consumers key on it.
TRACE_SCHEMA_VERSION = 1


def _ordered(spans: Iterable[Span]) -> List[Span]:
    return sorted(spans,
                  key=lambda s: (s.trace_id, s.start_ms, s.span_id))


def export_spans(spans: Iterable[Span],
                 dropped: int = 0) -> Dict[str, Any]:
    """The schema-stable dict form of a span set."""
    ordered = _ordered(spans)
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "span_count": len(ordered),
        "trace_count": len({s.trace_id for s in ordered}),
        "dropped_spans": dropped,
        "spans": [span.to_dict() for span in ordered],
    }


def export_json(spans: Iterable[Span], dropped: int = 0) -> str:
    """Byte-stable JSON text of :func:`export_spans`."""
    return json.dumps(export_spans(spans, dropped=dropped),
                      sort_keys=True, indent=2, allow_nan=False) + "\n"


def chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """Chrome trace-event JSON (Perfetto-loadable).

    Zero-duration point events keep ``ph="X"`` with ``dur=0`` --
    instant events (``ph="i"``) render inconsistently across viewers,
    and a zero-width slice is still clickable.
    """
    events: List[Dict[str, Any]] = []
    for span in _ordered(spans):
        end_ms = span.end_ms if span.end_ms is not None \
            else span.start_ms
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_ms * 1000.0,
            "dur": (end_ms - span.start_ms) * 1000.0,
            "pid": span.trace_id,
            "tid": span.node,
            "args": dict(span.attrs, span=span.span_id,
                         parent=span.parent_id),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """Serialized :func:`chrome_trace`.  Writing the file is the
    caller's job -- this layer stays filesystem-pure (see
    ``repro.analysis.layers.FS_OK_LAYERS``)."""
    return json.dumps(chrome_trace(spans), indent=2,
                      allow_nan=False) + "\n"
