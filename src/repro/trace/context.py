"""TraceContext: the propagated (trace id, parent span id) pair.

The context is what crosses node boundaries -- captured from the
tracer at send time, carried on the wire (see
:mod:`repro.messages.trace` for the wire form and the ``TRACED``
frame kind in :mod:`repro.transport.codec`), and restored around
delivery so handler-side spans parent correctly.

Trace ids are derived from the command's exactly-once ident
(``"<client>:<timestamp>"``), never from randomness: the same seeded
run names the same traces, which is what makes trace exports
byte-identical regression artifacts.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional


class TraceContext(NamedTuple):
    """An immutable causal pointer: which trace, which parent span."""

    trace_id: str
    span_id: str

    def to_wire(self) -> dict:
        """The compact wire dict (short keys: this rides every traced
        frame)."""
        return {"t": self.trace_id, "s": self.span_id}

    @classmethod
    def from_wire(cls, data: Any) -> Optional["TraceContext"]:
        """Decode a wire dict; ``None`` for anything malformed (a
        corrupt or foreign context must never poison delivery)."""
        if not isinstance(data, dict):
            return None
        trace_id = data.get("t")
        span_id = data.get("s")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id, span_id)


def trace_id_for(client_id: str, timestamp: int) -> str:
    """The deterministic trace id of one command: its exactly-once
    ident.  Retries of the same command join the same trace."""
    return f"{client_id}:{timestamp}"
