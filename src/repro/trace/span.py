"""Typed span records and the span-name taxonomy.

One request's causal story is a tree of spans sharing a trace id:

- ``client.request`` -- the root, one per command, started when the
  client registers the pending request and ended at delivery; its
  ``path`` attribute tags the commit path (``fast``/``slow``).
- ``owner.lead`` -- the command-leader ordering the request into its
  instance space and broadcasting the SPECORDER (paper step 2).
- ``replica.vote`` -- a replica accepting the SPECORDER, merging
  dependencies, speculatively executing, and sending its SPECREPLY
  (paper step 3).
- ``client.slow_path`` -- a point event: the client's fast-path
  timer expired and it fell back to the combined COMMIT (step 5.2).
- ``replica.commit`` -- a point event per replica: the instance
  reached COMMITTED, tagged ``path=fast|slow``.
- ``exec.depwait`` -- commit-to-execution gap at one replica: how
  long the entry sat in the dependency graph before the executor
  could order it (the cost of interference).
- ``exec.apply`` -- the final state-machine application itself.

Spans are plain mutable objects (``__slots__``): the tracer is on
the protocol hot path and a dataclass-with-dict costs measurably
more to allocate at per-request frequency.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.trace.context import TraceContext

SPAN_CLIENT_REQUEST = "client.request"
SPAN_OWNER_LEAD = "owner.lead"
SPAN_REPLICA_VOTE = "replica.vote"
SPAN_CLIENT_SLOW_PATH = "client.slow_path"
SPAN_REPLICA_COMMIT = "replica.commit"
SPAN_EXEC_DEPWAIT = "exec.depwait"
SPAN_EXEC_APPLY = "exec.apply"

#: The full taxonomy, in causal order (docs + export validation).
SPAN_NAMES = (
    SPAN_CLIENT_REQUEST,
    SPAN_OWNER_LEAD,
    SPAN_REPLICA_VOTE,
    SPAN_CLIENT_SLOW_PATH,
    SPAN_REPLICA_COMMIT,
    SPAN_EXEC_DEPWAIT,
    SPAN_EXEC_APPLY,
)


class Span:
    """One timed, causally linked unit of work at one node."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "node",
                 "start_ms", "end_ms", "attrs")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, node: str,
                 start_ms: float, end_ms: Optional[float] = None,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.node = node
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.attrs = attrs if attrs is not None else {}

    # ------------------------------------------------------------------
    def context(self) -> TraceContext:
        """The (trace id, span id) pair children and wire frames carry."""
        return TraceContext(self.trace_id, self.span_id)

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def to_dict(self) -> Dict[str, Any]:
        """The schema-stable export form (keys pinned by the trace
        schema golden; see :mod:`repro.trace.export`)."""
        return {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms if self.end_ms is not None
            else self.start_ms,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # debugging aid only
        return (f"Span({self.name} {self.span_id} of {self.trace_id} "
                f"@{self.node} [{self.start_ms}..{self.end_ms}])")
