"""The tracer seam: no-op by default, deterministic when active.

Mirrors the :mod:`repro.obs.instruments` discipline exactly: hot
sites hold a ``tracer`` attribute defaulting to the module-level
:data:`NULL_TRACER` singleton and guard on ``tracer.enabled``, so a
deployment with tracing off pays one attribute test per site -- the
pinned ``repro bench`` baseline verifies this stays in the noise.

:class:`ActiveTracer` is deterministic by construction:

- the clock is injected (``Simulator.now`` on sim,
  :func:`repro.trace.live.wall_clock_ms` on TCP);
- span ids are ``"<node>:<n>"`` from a per-tracer counter, so the
  same seeded event order yields the same ids;
- sampling hashes the trace id with ``zlib.crc32`` -- never the
  process-salted builtin ``hash()`` (the repo's own determinism
  linter would flag it) -- so the same requests are sampled in
  every run.

Both backends dispatch handlers single-threaded (the sim's calendar
queue; one asyncio loop per process), so "the current context" is a
plain attribute swapped around each delivery, not thread-local
state.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.trace.context import TraceContext
from repro.trace.span import Span

#: Default ring-buffer capacity for live (serve) deployments; the
#: scenario runner uses an unbounded collector for bounded runs.
DEFAULT_RING_SPANS = 4096


class Tracer:
    """The no-op tracer: every method is a cheap constant.

    Sites never check for ``None`` -- they call straight through, and
    per-request sites additionally guard on :attr:`enabled` so the
    disabled path is a single attribute test.
    """

    enabled = False

    def current(self) -> Optional[TraceContext]:
        return None

    def set_current(self, ctx: Optional[TraceContext]
                    ) -> Optional[TraceContext]:
        """Install ``ctx`` as the current context; returns the
        previous one so callers can restore it."""
        return None

    def context_of(self, span: Optional[Span]
                   ) -> Optional[TraceContext]:
        return None

    def start_span(self, name: str, node: str,
                   parent: Optional[TraceContext] = None,
                   trace_id: Optional[str] = None,
                   attrs: Optional[Dict[str, Any]] = None
                   ) -> Optional[Span]:
        return None

    def end_span(self, span: Optional[Span],
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        pass

    def event(self, name: str, node: str,
              parent: Optional[TraceContext],
              attrs: Optional[Dict[str, Any]] = None
              ) -> Optional[Span]:
        return None

    def span_at(self, name: str, node: str,
                parent: Optional[TraceContext],
                start_ms: float, end_ms: float,
                attrs: Optional[Dict[str, Any]] = None
                ) -> Optional[Span]:
        return None

    def now(self) -> float:
        return 0.0


#: The shared no-op default every traced object starts with.
NULL_TRACER = Tracer()


class TraceCollector:
    """Finished spans, optionally ring-buffered.

    ``max_spans=None`` keeps everything (scenario runs are bounded);
    a live serve process passes a cap so the ``/trace`` endpoint and
    its memory stay bounded over weeks of traffic.
    """

    def __init__(self, max_spans: Optional[int] = None) -> None:
        self.max_spans = max_spans
        self._spans: "deque[Span]" = deque(maxlen=max_spans)
        self.dropped = 0

    def add(self, span: Span) -> None:
        if self.max_spans is not None and \
                len(self._spans) == self.max_spans:
            self.dropped += 1
        self._spans.append(span)

    def spans(self) -> List[Span]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0


class ActiveTracer(Tracer):
    """A live tracer: injected clock, deterministic ids + sampling.

    Parameters
    ----------
    clock:
        Zero-arg callable returning milliseconds.  Sim runs pass the
        simulator clock; TCP passes
        :func:`repro.trace.live.wall_clock_ms`.
    collector:
        Where finished spans land (shared across every node of one
        deployment so causal links resolve in one export).
    sample_rate:
        Fraction of traces to record, decided per *trace id* via
        crc32 so every node of a deployment keeps or drops the same
        request.  1.0 records everything.
    """

    enabled = True

    #: Sampling granularity: crc32(trace_id) % 10_000 < rate * 10_000.
    _SAMPLE_BUCKETS = 10_000

    def __init__(self, clock: Callable[[], float],
                 collector: Optional[TraceCollector] = None,
                 sample_rate: float = 1.0) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be within [0, 1], got {sample_rate}")
        self.clock = clock
        self.collector = collector if collector is not None \
            else TraceCollector()
        self.sample_rate = sample_rate
        self._threshold = int(round(sample_rate * self._SAMPLE_BUCKETS))
        self._seq = 0
        self._current: Optional[TraceContext] = None

    # -- context ------------------------------------------------------
    def current(self) -> Optional[TraceContext]:
        return self._current

    def set_current(self, ctx: Optional[TraceContext]
                    ) -> Optional[TraceContext]:
        prev = self._current
        self._current = ctx
        return prev

    def context_of(self, span: Optional[Span]
                   ) -> Optional[TraceContext]:
        return span.context() if span is not None else None

    # -- sampling -----------------------------------------------------
    def sampled(self, trace_id: str) -> bool:
        if self._threshold >= self._SAMPLE_BUCKETS:
            return True
        if self._threshold <= 0:
            return False
        bucket = zlib.crc32(trace_id.encode("utf-8")) % \
            self._SAMPLE_BUCKETS
        return bucket < self._threshold

    # -- spans --------------------------------------------------------
    def _next_id(self, node: str) -> str:
        self._seq += 1
        return f"{node}:{self._seq}"

    def start_span(self, name: str, node: str,
                   parent: Optional[TraceContext] = None,
                   trace_id: Optional[str] = None,
                   attrs: Optional[Dict[str, Any]] = None
                   ) -> Optional[Span]:
        """Open a span.  Roots pass ``trace_id`` (sampling decides
        there); children pass ``parent`` (the sampling decision was
        made at the root -- no parent context means the root was
        dropped, so the child is too)."""
        if parent is not None:
            tid = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        elif trace_id is not None:
            if not self.sampled(trace_id):
                return None
            tid = trace_id
            parent_id = None
        else:
            return None
        return Span(tid, self._next_id(node), parent_id, name, node,
                    self.clock(), None,
                    dict(attrs) if attrs else None)

    def end_span(self, span: Optional[Span],
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        if span is None:
            return
        span.end_ms = self.clock()
        if attrs:
            span.attrs.update(attrs)
        self.collector.add(span)

    def event(self, name: str, node: str,
              parent: Optional[TraceContext],
              attrs: Optional[Dict[str, Any]] = None
              ) -> Optional[Span]:
        """A zero-duration point event, collected immediately."""
        if parent is None:
            return None
        now = self.clock()
        span = Span(parent.trace_id, self._next_id(node),
                    parent.span_id, name, node, now, now,
                    dict(attrs) if attrs else None)
        self.collector.add(span)
        return span

    def span_at(self, name: str, node: str,
                parent: Optional[TraceContext],
                start_ms: float, end_ms: float,
                attrs: Optional[Dict[str, Any]] = None
                ) -> Optional[Span]:
        """A span with explicit bounds, collected immediately -- for
        intervals measured after the fact (e.g. commit-to-execution
        dependency wait)."""
        if parent is None:
            return None
        span = Span(parent.trace_id, self._next_id(node),
                    parent.span_id, name, node, start_ms, end_ms,
                    dict(attrs) if attrs else None)
        self.collector.add(span)
        return span

    def now(self) -> float:
        return self.clock()
