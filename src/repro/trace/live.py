"""The TCP tracing clock -- the one trace module that may read real
time.

Everything else in :mod:`repro.trace` is deterministic by
construction (injected clocks, counter ids, crc32 sampling).  Real
deployments have no simulator to ask, so this module -- and only
this module -- is granted wall-clock rights in the analysis layer
map (``WALL_CLOCK_OK_MODULES`` in :mod:`repro.analysis.layers`); a
wall-clock read anywhere else under ``src/repro/trace/`` fails
``python -m repro lint``.

Epoch milliseconds (not ``monotonic``) on purpose: spans from
different serve processes of one deployment must land on one
timeline for cross-process critical paths to mean anything.
"""

from __future__ import annotations

import time


def wall_clock_ms() -> float:
    """Current wall time in milliseconds (epoch-based)."""
    return time.time() * 1000.0
