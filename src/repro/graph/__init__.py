"""Dependency-graph execution engine.

ezBFT's final execution order (Section IV-B of the paper):

1. build the dependency graph over committed commands,
2. find strongly connected components (cycles arise under contention),
3. topologically sort the component DAG,
4. execute components in inverse topological order; inside a component,
   order commands by sequence number, breaking ties by replica id.

:func:`tarjan_scc` is an iterative Tarjan (no recursion-depth limit);
:func:`linearize` produces the deterministic execution order.
"""

from repro.graph.scc import tarjan_scc
from repro.graph.execution_order import linearize, execution_batches

__all__ = ["tarjan_scc", "linearize", "execution_batches"]
