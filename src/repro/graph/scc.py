"""Iterative Tarjan strongly-connected-components algorithm.

The returned component list is in *reverse topological order* of the
condensation DAG: if component ``A`` has an edge to component ``B``
(``A`` depends on ``B``), then ``B`` appears before ``A``.  That is the
property Tarjan guarantees and exactly the order ezBFT executes in
("starting from the inverse topological order"), so callers can execute
components in list order with all dependencies satisfied.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence

Node = Hashable


def tarjan_scc(graph: Mapping[Node, Iterable[Node]]) -> List[List[Node]]:
    """Strongly connected components of ``graph``.

    ``graph`` maps each node to its successors (its dependencies, in
    ezBFT's usage).  Successors not present as keys are treated as nodes
    with no outgoing edges.  Deterministic for a given dict ordering.
    """
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = 0

    # Normalize: make sure every referenced node exists in the adjacency.
    adjacency: Dict[Node, List[Node]] = {}
    for node, succs in graph.items():
        adjacency.setdefault(node, [])
        adjacency[node] = list(succs)
    for node in list(adjacency):
        for succ in adjacency[node]:
            adjacency.setdefault(succ, [])

    for root in adjacency:
        if root in index_of:
            continue
        # Each work item is (node, iterator over remaining successors).
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True

        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components
