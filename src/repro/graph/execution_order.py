"""Deterministic linearization of the committed-command dependency graph."""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Mapping, Tuple

from repro.graph.scc import tarjan_scc

Node = Hashable
#: Sort key: (sequence number, owner replica id, slot) -- the paper breaks
#: sequence-number ties with replica identifiers; slot makes the key total.
SortKey = Callable[[Node], Tuple]


def execution_batches(graph: Mapping[Node, Iterable[Node]],
                      sort_key: SortKey) -> List[List[Node]]:
    """Group nodes into executable batches.

    Returns the strongly connected components in dependency-satisfied
    order, with each component internally sorted by ``sort_key``.
    Replicas applying commands batch-by-batch, element-by-element, in this
    order are guaranteed identical execution histories.
    """
    components = tarjan_scc(graph)
    return [sorted(component, key=sort_key) for component in components]


def linearize(graph: Mapping[Node, Iterable[Node]],
              sort_key: SortKey) -> List[Node]:
    """Flatten :func:`execution_batches` into a single execution order."""
    order: List[Node] = []
    for batch in execution_batches(graph, sort_key):
        order.extend(batch)
    return order
