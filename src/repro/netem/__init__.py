"""repro.netem: link-level network emulation + chaos faults.

The paper's headline claims are about WAN behaviour -- geo-distributed
replicas, heterogeneous round-trip times, fast-path sensitivity to
network conditions.  This package models the *link* between two nodes
the way ``tc netem`` does on Linux, with one seam that both backends
share:

- :class:`LinkModel` -- per-link emulation parameters: extra one-way
  delay with uniform jitter, loss / duplication / reordering
  probabilities, and a bandwidth cap enforced by a token bucket.
- :class:`LinkRule` / :class:`NetemProfile` -- resolve a
  :class:`LinkModel` per directed ``(src, dst)`` pair; rule tokens
  match node ids, region names, or ``"*"``.
- :class:`LinkShaper` -- the injectable seam.  ``plan(src, dst,
  size_bytes, now_ms)`` turns one send into zero (lost), one, or two
  (duplicated) deliveries, each with an extra delay.  The simulator
  applies the plan as scheduled events (deterministic under the
  scenario seed); the asyncio TCP transport applies it as per-send
  sleeps on the event loop.
- :class:`TokenBucket` -- the bandwidth model shared by the shaper and
  the open-loop workload pacer.

Mid-run chaos (``PacketLoss``, ``Jitter``, ``BandwidthCap``,
``Reorder`` fault events, plus ``LatencyShift`` on TCP) mutates the
live shaper through :meth:`LinkShaper.patch` and
:meth:`LinkShaper.set_delay_scale`.
"""

from repro.netem.model import LinkModel, LinkRule, NetemProfile
from repro.netem.presets import (
    NETEM_PRESETS,
    netem_preset,
    resolve_netem,
)
from repro.netem.shaper import LinkShaper, TokenBucket

__all__ = [
    "LinkModel",
    "LinkRule",
    "NetemProfile",
    "NETEM_PRESETS",
    "netem_preset",
    "resolve_netem",
    "LinkShaper",
    "TokenBucket",
]
