"""Link emulation models: what one directed network link does to the
frames crossing it.

A :class:`LinkModel` is the netem parameter block for one link; a
:class:`NetemProfile` maps directed ``(src, dst)`` pairs to models via
ordered :class:`LinkRule` entries whose tokens match node ids, region
names, or ``"*"``.  Everything here is a frozen dataclass so profiles
round-trip through the JSON/TOML spec loader by equality, exactly like
fault events do.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Tuple

from repro.errors import ConfigurationError

#: Wildcard token: matches every node on that side of the link.
ANY = "*"


@dataclass(frozen=True)
class LinkModel:
    """Emulation parameters for one directed link (netem semantics).

    - ``delay_ms`` -- extra one-way delay added to every frame (on the
      simulator this is *on top of* the latency-matrix propagation; on
      TCP it is the only modeled delay).
    - ``jitter_ms`` -- uniform jitter: the sampled delay is
      ``delay_ms + U(-jitter_ms, +jitter_ms)``, clamped at 0.
    - ``loss`` / ``duplicate`` -- independent per-frame probabilities
      of dropping or double-delivering.
    - ``reorder`` -- probability a frame is *held back* an extra
      ``reorder_extra_ms``, letting frames sent after it overtake it
      (tc netem's reorder gap model, inverted).
    - ``rate_kbps`` -- bandwidth cap in kilobits/sec enforced by a
      token bucket with ``burst_bytes`` of burst credit; 0 disables
      the cap.
    """

    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    loss: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_extra_ms: float = 1.0
    rate_kbps: float = 0.0
    burst_bytes: int = 16_384

    @property
    def is_noop(self) -> bool:
        """True when this model leaves traffic untouched (the hot-path
        check: a no-op link draws no randomness and adds no delay)."""
        return (self.delay_ms == 0.0 and self.jitter_ms == 0.0
                and self.loss == 0.0 and self.duplicate == 0.0
                and self.reorder == 0.0 and self.rate_kbps == 0.0)

    def validate(self, key: str = "netem") -> None:
        for name in ("loss", "duplicate", "reorder"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{key}.{name} must be in [0, 1], got {value}")
        for name in ("delay_ms", "jitter_ms", "reorder_extra_ms",
                     "rate_kbps"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"{key}.{name} must be >= 0, got {value}")
        if self.burst_bytes <= 0:
            raise ConfigurationError(
                f"{key}.burst_bytes must be positive, "
                f"got {self.burst_bytes}")

    def describe(self) -> str:
        parts = []
        if self.delay_ms or self.jitter_ms:
            parts.append(f"delay {self.delay_ms:g}ms"
                         + (f"±{self.jitter_ms:g}" if self.jitter_ms
                            else ""))
        if self.loss:
            parts.append(f"loss {self.loss:.1%}")
        if self.duplicate:
            parts.append(f"dup {self.duplicate:.1%}")
        if self.reorder:
            parts.append(f"reorder {self.reorder:.1%}"
                         f"+{self.reorder_extra_ms:g}ms")
        if self.rate_kbps:
            parts.append(f"rate {self.rate_kbps:g}kbit")
        return ", ".join(parts) or "no-op"


#: Fields a runtime patch (netem fault event) may override.
LINK_MODEL_FIELDS = tuple(
    f.name for f in dataclasses.fields(LinkModel))


@dataclass(frozen=True)
class LinkRule:
    """One profile entry: the full :class:`LinkModel` for every
    directed pair whose source matches ``src`` and destination matches
    ``dst``.  Tokens are node ids (``"r1"``, ``"c0"``), region names
    (``"virginia"``), or ``"*"``.  Rules apply in declaration order
    and the **last** matching rule wins wholesale."""

    src: str = ANY
    dst: str = ANY
    model: LinkModel = LinkModel()


def token_matches(token: str, node_id: str,
                  region: Optional[str]) -> bool:
    """Does a rule token select this node?"""
    return token == ANY or token == node_id or \
        (region is not None and token == region)


@dataclass(frozen=True)
class NetemProfile:
    """Per-directed-pair link models: a default plus ordered rules.

    >>> profile = NetemProfile(
    ...     default=LinkModel(delay_ms=5.0),
    ...     rules=(LinkRule(src="virginia", dst="sydney",
    ...                     model=LinkModel(delay_ms=40.0, loss=0.02)),))

    Resolution (see :meth:`resolve`) starts from ``default`` and takes
    the last matching rule, so specific links are listed after broad
    ones.
    """

    default: LinkModel = LinkModel()
    rules: Tuple[LinkRule, ...] = ()

    @property
    def is_noop(self) -> bool:
        return self.default.is_noop and \
            all(rule.model.is_noop for rule in self.rules)

    def resolve(self, src: str, dst: str,
                region_of: Callable[[str], Optional[str]]
                ) -> LinkModel:
        """The :class:`LinkModel` for the directed pair, matching each
        rule token against the node id or its region."""
        model = self.default
        if not self.rules:
            return model
        src_region = region_of(src)
        dst_region = region_of(dst)
        for rule in self.rules:
            if token_matches(rule.src, src, src_region) and \
                    token_matches(rule.dst, dst, dst_region):
                model = rule.model
        return model

    def validate(self, known_tokens: Optional[Iterable[str]] = None,
                 key: str = "netem") -> None:
        """Check every model's ranges; with ``known_tokens`` also check
        every rule endpoint resolves to something (the wildcard, a
        known region/replica id, or a client id ``cN``)."""
        self.default.validate(f"{key}.default")
        known = set(known_tokens) if known_tokens is not None else None
        for i, rule in enumerate(self.rules):
            rule.model.validate(f"{key}.rules[{i}]")
            if known is None:
                continue
            for side in ("src", "dst"):
                token = getattr(rule, side)
                if token == ANY or token in known or _is_client_id(
                        token):
                    continue
                raise ConfigurationError(
                    f"{key}.rules[{i}].{side} names unknown endpoint "
                    f"{token!r} (known: {tuple(sorted(known))}, "
                    f"client ids c0..cN, or '*')")


def _is_client_id(token: str) -> bool:
    return len(token) > 1 and token[0] == "c" and token[1:].isdigit()
