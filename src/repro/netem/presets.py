"""Named netem presets: reusable link-condition profiles.

Sweep axes and spec files can say ``netem = "lossy-wan"`` instead of
spelling out a profile table -- the carried-over ergonomics gap for
``--grid netem=lossy-wan,clean`` sweeps.  Preset names resolve through
:func:`netem_preset`; anything that accepts a profile (scenario specs,
sweep axes, fault tooling) also accepts a preset name via
:func:`resolve_netem`.

The presets are deliberately coarse archetypes, not measurements:

- ``clean`` -- no emulation at all (the explicit baseline arm).
- ``lossy-wan`` -- intercontinental WAN: 40ms +/- 8ms one-way, 2%
  loss.
- ``flaky`` -- a misbehaving local network: modest delay, 5% loss,
  duplication and reordering.
- ``congested`` -- a saturated uplink: 20ms delay and a 512 kbit/s
  token-bucket cap with a small burst.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.netem.model import LinkModel, NetemProfile

NETEM_PRESETS: Dict[str, NetemProfile] = {
    "clean": NetemProfile(),
    "lossy-wan": NetemProfile(
        default=LinkModel(delay_ms=40.0, jitter_ms=8.0, loss=0.02)),
    "flaky": NetemProfile(
        default=LinkModel(delay_ms=10.0, jitter_ms=5.0, loss=0.05,
                          duplicate=0.01, reorder=0.05,
                          reorder_extra_ms=8.0)),
    "congested": NetemProfile(
        default=LinkModel(delay_ms=20.0, rate_kbps=512.0,
                          burst_bytes=8192)),
}


def netem_preset(name: str, key: str = "netem") -> NetemProfile:
    """The preset profile for ``name``; unknown names raise a
    key-named error listing the choices (spec-loader discipline)."""
    try:
        return NETEM_PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"{key} names unknown netem preset {name!r} "
            f"(have {tuple(sorted(NETEM_PRESETS))})") from None


def resolve_netem(value: Union[str, NetemProfile, None],
                  key: str = "netem") -> Optional[NetemProfile]:
    """Normalize a netem declaration: ``None`` passes through, a
    :class:`NetemProfile` is returned as-is, a string resolves as a
    preset name."""
    if value is None or isinstance(value, NetemProfile):
        return value
    if isinstance(value, str):
        return netem_preset(value, key)
    raise ConfigurationError(
        f"{key} must be a NetemProfile, a preset name, or None; "
        f"got {type(value).__name__}")
