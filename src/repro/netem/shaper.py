"""LinkShaper: the one seam both backends push traffic through.

``plan(src, dst, size_bytes, now_ms)`` resolves the directed pair's
:class:`~repro.netem.model.LinkModel` (profile rules + runtime patches
+ the LatencyShift delay scale) and turns one send into a tuple of
extra delivery delays:

- ``()``       -- the frame was lost;
- ``(d,)``     -- one delivery, ``d`` ms later than unshaped;
- ``(d, d)``   -- the frame was duplicated.

The simulator schedules each entry as a discrete event on top of the
latency-matrix propagation, so a seeded run is byte-identical across
repeats; the asyncio transport sleeps ``d`` before writing the frame.
All randomness comes from one private ``random.Random`` seeded from
the scenario seed, kept separate from the jitter/drop stream of
:class:`~repro.sim.network.SimNetwork` so enabling netem does not
perturb unrelated draws.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.instruments import NULL
from repro.netem.model import (
    LINK_MODEL_FIELDS,
    LinkModel,
    NetemProfile,
    token_matches,
)

#: The shaper's answer for an untouched frame.
_PASSTHROUGH: Tuple[float, ...] = (0.0,)


class TokenBucket:
    """Classic token bucket with borrowing: consuming past the burst
    credit drives the balance negative, and the debt (divided by the
    refill rate) is the transmission queueing delay.  Successive
    frames therefore queue behind each other exactly like a serialized
    link."""

    def __init__(self, rate_kbps: float, burst_bytes: int) -> None:
        if rate_kbps <= 0:
            raise ConfigurationError(
                f"TokenBucket rate must be positive, got {rate_kbps}")
        self.rate_kbps = rate_kbps
        #: Refill rate in bytes per millisecond (kbit/s / 8 = kB/s).
        self.rate_bytes_per_ms = rate_kbps / 8.0
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_ms: Optional[float] = None

    def consume(self, size_bytes: float, now_ms: float) -> float:
        """Take ``size_bytes`` out of the bucket at ``now_ms`` and
        return how long the frame must wait for its bytes (0 while
        burst credit lasts)."""
        if self._last_ms is not None and now_ms > self._last_ms:
            self._tokens = min(
                float(self.burst_bytes),
                self._tokens +
                (now_ms - self._last_ms) * self.rate_bytes_per_ms)
        self._last_ms = max(now_ms, self._last_ms or now_ms)
        self._tokens -= size_bytes
        if self._tokens >= 0.0:
            return 0.0
        return -self._tokens / self.rate_bytes_per_ms


class LinkShaper:
    """Applies a :class:`NetemProfile` (plus runtime chaos patches) to
    every directed send.

    One shaper instance is shared by a whole deployment: the simulator
    hangs it on :class:`~repro.sim.network.SimNetwork`, the TCP
    backend hands the same instance to every
    :class:`~repro.transport.asyncio_tcp.AsyncioNode`.  Fault
    injectors mutate it mid-run through :meth:`patch` (PacketLoss /
    Jitter / BandwidthCap / Reorder) and :meth:`set_delay_scale`
    (LatencyShift on TCP).
    """

    #: Observability seam: per-link drop/delay series under ``repro
    #: serve``; guarded on ``enabled`` so disabled runs pay one test.
    instruments = NULL

    def __init__(self, profile: Optional[NetemProfile] = None,
                 seed: int = 0,
                 region_of: Optional[
                     Callable[[str], Optional[str]]] = None,
                 default_frame_bytes: int = 512) -> None:
        self.profile = profile if profile is not None else NetemProfile()
        self.profile.validate()
        # String seeding hashes with sha512 (stable across processes,
        # unaffected by PYTHONHASHSEED), and the prefix decorrelates
        # this stream from SimNetwork's Random(seed).
        self._rng = random.Random(f"netem-{seed}")
        self._region_of = region_of if region_of is not None \
            else (lambda node_id: None)
        #: Fallback frame size when the caller has no byte count (the
        #: simulator mostly sends size_bytes=0); only the bandwidth
        #: cap consumes it.
        self.default_frame_bytes = default_frame_bytes
        #: Runtime patches from chaos fault events, applied field-wise
        #: after the profile rules, in insertion order.
        self._patches: Dict[Tuple[str, str], Dict[str, Any]] = {}
        self._delay_scale = 1.0
        self._cache: Dict[Tuple[str, str], LinkModel] = {}
        self._buckets: Dict[Tuple[str, str], TokenBucket] = {}
        # Introspection counters (the report's network section).
        self.frames_shaped = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_reordered = 0

    # ------------------------------------------------------------------
    # Runtime mutation (fault injectors)
    # ------------------------------------------------------------------
    @property
    def delay_scale(self) -> float:
        return self._delay_scale

    def set_delay_scale(self, factor: float) -> None:
        """Scale every resolved model's ``delay_ms`` (LatencyShift's
        TCP-side lever; 1.0 restores the base profile)."""
        if factor <= 0:
            raise ConfigurationError(
                f"delay scale must be positive, got {factor}")
        self._delay_scale = factor
        self._cache.clear()

    def patch(self, src: str, dst: str, **fields: Any) -> None:
        """Override model fields for every pair matching ``(src,
        dst)`` tokens (node id / region / ``"*"``), merging with any
        earlier patch on the same token pair."""
        for name in fields:
            if name not in LINK_MODEL_FIELDS:
                raise ConfigurationError(
                    f"unknown link model field {name!r} "
                    f"(have {LINK_MODEL_FIELDS})")
        merged = self._patches.setdefault((src, dst), {})
        merged.update(fields)
        # Probe the merged overlay so a bad patch fails at apply time
        # with ranges checked, not deep inside plan().
        replace(LinkModel(), **merged).validate("netem.patch")
        self._cache.clear()

    def clear_patches(self) -> None:
        self._patches.clear()
        self._cache.clear()

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, src: str, dst: str) -> LinkModel:
        """The effective model for one directed pair (cached until the
        next patch / scale change)."""
        pair = (src, dst)
        model = self._cache.get(pair)
        if model is not None:
            return model
        model = self.profile.resolve(src, dst, self._region_of)
        if self._patches:
            src_region = self._region_of(src)
            dst_region = self._region_of(dst)
            for (ps, pd), fields in self._patches.items():
                if token_matches(ps, src, src_region) and \
                        token_matches(pd, dst, dst_region):
                    model = replace(model, **fields)
        if self._delay_scale != 1.0 and model.delay_ms:
            model = replace(model,
                            delay_ms=model.delay_ms * self._delay_scale)
        self._cache[pair] = model
        return model

    # ------------------------------------------------------------------
    # The seam
    # ------------------------------------------------------------------
    def plan(self, src: str, dst: str, size_bytes: int,
             now_ms: float) -> Tuple[float, ...]:
        """Extra delivery delays for one frame (see module docstring)."""
        model = self.resolve(src, dst)
        if model.is_noop:
            return _PASSTHROUGH
        self.frames_shaped += 1
        rng = self._rng
        if model.loss > 0.0 and rng.random() < model.loss:
            self.frames_dropped += 1
            if self.instruments.enabled:
                self.instruments.netem_dropped(src, dst)
            return ()
        delay = model.delay_ms
        if model.jitter_ms > 0.0:
            delay += rng.uniform(-model.jitter_ms, model.jitter_ms)
            if delay < 0.0:
                delay = 0.0
        if model.reorder > 0.0 and rng.random() < model.reorder:
            self.frames_reordered += 1
            delay += model.reorder_extra_ms
        if model.rate_kbps > 0.0:
            delay += self._bucket_for(src, dst, model).consume(
                size_bytes if size_bytes > 0
                else self.default_frame_bytes,
                now_ms)
        if model.duplicate > 0.0 and rng.random() < model.duplicate:
            self.frames_duplicated += 1
            if self.instruments.enabled and delay > 0.0:
                self.instruments.netem_delayed(src, dst, delay)
            return (delay, delay)
        if self.instruments.enabled and delay > 0.0:
            self.instruments.netem_delayed(src, dst, delay)
        return (delay,)

    def _bucket_for(self, src: str, dst: str,
                    model: LinkModel) -> TokenBucket:
        pair = (src, dst)
        bucket = self._buckets.get(pair)
        if bucket is None or bucket.rate_kbps != model.rate_kbps or \
                bucket.burst_bytes != model.burst_bytes:
            bucket = TokenBucket(model.rate_kbps, model.burst_bytes)
            self._buckets[pair] = bucket
        return bucket

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        return {
            "netem_frames_shaped": self.frames_shaped,
            "netem_frames_dropped": self.frames_dropped,
            "netem_frames_duplicated": self.frames_duplicated,
            "netem_frames_reordered": self.frames_reordered,
        }
