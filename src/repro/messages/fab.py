"""FaB Paxos wire messages (Martin & Alvisi, "Fast Byzantine Consensus").

We implement Parameterized FaB in its common-case configuration
(t = 0, N = 3f+1): the proposer (primary) broadcasts PROPOSE, acceptors
broadcast ACCEPT to the learners (all replicas), and a replica that sees
the accept quorum executes and replies to the client.  Client-visible
steps: REQUEST -> PROPOSE -> ACCEPT -> REPLY = 4, one fewer than PBFT,
one more than Zyzzyva/ezBFT -- exactly the ordering Figure 4 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.messages.base import as_message, register_message
from repro.statemachine.base import Command


@register_message
@dataclass(frozen=True)
class FabRequest:
    """Client request to the proposer."""

    MSG_TYPE = "fab-request"
    #: Client-facing cost: connection termination + ECDSA verification
    #: (see repro.messages.ezbft.Request).
    cpu_cost_units = 20

    command: Command

    @property
    def client_id(self) -> str:
        return self.command.client_id

    @property
    def timestamp(self) -> int:
        return self.command.timestamp

    def to_wire(self) -> dict:
        return {"type": self.MSG_TYPE, "command": self.command}

    @classmethod
    def from_wire(cls, wire: dict) -> "FabRequest":
        return cls(command=as_message(wire["command"], Command))


@register_message
@dataclass(frozen=True)
class FabPropose:
    """<PROPOSE, pn, n, d> plus the request."""

    MSG_TYPE = "fab-propose"
    cpu_cost_units = 1

    proposal_number: int
    seqno: int
    request_digest: str
    request: FabRequest

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "proposal_number": self.proposal_number,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "request": self.request,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "FabPropose":
        return cls(proposal_number=wire["proposal_number"],
                   seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   request=as_message(wire["request"], FabRequest))


@register_message
@dataclass(frozen=True)
class FabAccept:
    """<ACCEPT, pn, n, d, i> -- acceptor i accepted the proposal."""

    MSG_TYPE = "fab-accept"
    cpu_cost_units = 1

    proposal_number: int
    seqno: int
    request_digest: str
    acceptor: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "proposal_number": self.proposal_number,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "acceptor": self.acceptor,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "FabAccept":
        return cls(proposal_number=wire["proposal_number"],
                   seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   acceptor=wire["acceptor"])


@register_message
@dataclass(frozen=True)
class FabReply:
    """Learner's reply to the client after executing the learned value."""

    MSG_TYPE = "fab-reply"
    cpu_cost_units = 1

    seqno: int
    client_id: str
    timestamp: int
    replica: str
    result: Any

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "seqno": self.seqno,
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "replica": self.replica,
            "result": self.result,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "FabReply":
        return cls(seqno=wire["seqno"], client_id=wire["client_id"],
                   timestamp=wire["timestamp"], replica=wire["replica"],
                   result=wire["result"])
