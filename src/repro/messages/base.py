"""Message registry and the signed-payload envelope."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Type

from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, is_valid, sign
from repro.errors import SerializationError

#: msg_type string -> message class.
MESSAGE_REGISTRY: Dict[str, Type] = {}

#: Instance attribute holding a ``(registry_epoch, content_hash,
#: verdict)`` verification memo (see ``SignedPayload.verify``).
_VERIFY_MEMO = "_repro_verify_memo"


def register_message(cls: Type) -> Type:
    """Class decorator: register ``cls`` for :func:`decode`.

    The class must define ``MSG_TYPE`` and ``from_wire``.
    """
    msg_type = getattr(cls, "MSG_TYPE", None)
    if not msg_type:
        raise SerializationError(
            f"{cls.__name__} lacks a MSG_TYPE attribute")
    if msg_type in MESSAGE_REGISTRY:
        raise SerializationError(f"duplicate MSG_TYPE {msg_type!r}")
    MESSAGE_REGISTRY[msg_type] = cls
    return cls


def decode(wire: Any) -> Any:
    """Reconstruct a message object from its wire dict.

    Wire dicts may embed *message objects* in nested positions (see
    :func:`as_message`), so an already-constructed registered message
    passes through unchanged.
    """
    if not isinstance(wire, dict):
        cls = MESSAGE_REGISTRY.get(getattr(wire, "MSG_TYPE", None))
        if cls is not None and isinstance(wire, cls):
            return wire
    try:
        msg_type = wire["type"]
    except (TypeError, KeyError):
        raise SerializationError(f"wire value has no type field: {wire!r}")
    cls = MESSAGE_REGISTRY.get(msg_type)
    if cls is None:
        raise SerializationError(f"unknown message type {msg_type!r}")
    return cls.from_wire(wire)


def as_message(wire: Any, cls: Type) -> Any:
    """``wire`` itself if already a ``cls`` instance, else
    ``cls.from_wire(wire)``.

    ``to_wire()`` embeds nested messages (commands, envelopes,
    certificates) as *objects* rather than eagerly serializing them:
    the canonical encoder resolves them itself and can splice their
    cached encodings, so a certificate re-encode costs a concatenation
    instead of a deep traversal.  Anything that crossed a real wire
    (``json.loads`` on the TCP path) arrives as plain dicts; nested
    ``from_wire`` positions funnel through here to accept both forms.
    """
    if isinstance(wire, cls):
        return wire
    return cls.from_wire(wire)


@dataclass(frozen=True)
class SignedPayload:
    """Envelope binding a message to its author's signature.

    ``payload`` is any registered message object; ``signature`` covers the
    payload's wire form.  Envelopes are themselves wire-serializable so
    they can be embedded in certificates (e.g. a COMMITFAST carries 3f+1
    signed SPECREPLYs).
    """

    MSG_TYPE = "signed"

    payload: Any
    signature: Signature

    @classmethod
    def create(cls, payload: Any, keypair: KeyPair) -> "SignedPayload":
        # Sign the payload *object*: canonicalization resolves to_wire()
        # itself, producing the same bytes as signing payload.to_wire()
        # while letting the digest layer memoize on the frozen object.
        return cls(payload=payload, signature=sign(payload, keypair))

    def verify(self, registry: KeyRegistry) -> bool:
        """True iff the signature matches the payload and signer.

        Verdicts are memoized on the envelope instance: certificates
        embed the same signed replies at every replica, so each
        envelope is checked once per process instead of once per
        validation site.  The memo records the content hash it was
        computed under, so in-process mutation of a signed payload
        changes the hash and forces re-verification -- which then
        fails, exactly as an unmemoized check would.  It also records
        the registry's ``verify_epoch`` sentinel: registering a key
        mints a new sentinel, so verdicts never outlive the key
        material they were computed against.  Envelopes with unhashable
        payload fields skip the memo.
        """
        try:
            content_hash = hash(self)
        except TypeError:
            return is_valid(self.payload, self.signature, registry)
        epoch = registry.verify_epoch
        memo = getattr(self, _VERIFY_MEMO, None)
        if memo is not None and memo[0] is epoch \
                and memo[1] == content_hash:
            return memo[2]
        verdict = is_valid(self.payload, self.signature, registry)
        try:
            object.__setattr__(self, _VERIFY_MEMO,
                               (epoch, content_hash, verdict))
        except (AttributeError, TypeError):  # pragma: no cover
            pass
        return verdict

    @property
    def signer(self) -> str:
        return self.signature.signer

    @property
    def cpu_cost_units(self) -> int:
        """Envelopes inherit their payload's processing cost (the
        simulator's CPU model sees the envelope, not the payload)."""
        return getattr(self.payload, "cpu_cost_units", 1)

    def payload_digest(self) -> str:
        return digest(self.payload)

    def to_wire(self) -> dict:
        # The payload rides as an object: its canonical bytes were
        # already computed (and memoized) when it was signed, so the
        # encoder splices them instead of re-serializing.
        return {
            "type": self.MSG_TYPE,
            "payload": self.payload,
            "signature": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SignedPayload":
        return cls(payload=decode(wire["payload"]),
                   signature=as_message(wire["signature"], Signature))


register_message(SignedPayload)
