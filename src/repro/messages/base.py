"""Message registry and the signed-payload envelope."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Type

from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, is_valid, sign
from repro.errors import SerializationError

#: msg_type string -> message class.
MESSAGE_REGISTRY: Dict[str, Type] = {}


def register_message(cls: Type) -> Type:
    """Class decorator: register ``cls`` for :func:`decode`.

    The class must define ``MSG_TYPE`` and ``from_wire``.
    """
    msg_type = getattr(cls, "MSG_TYPE", None)
    if not msg_type:
        raise SerializationError(
            f"{cls.__name__} lacks a MSG_TYPE attribute")
    if msg_type in MESSAGE_REGISTRY:
        raise SerializationError(f"duplicate MSG_TYPE {msg_type!r}")
    MESSAGE_REGISTRY[msg_type] = cls
    return cls


def decode(wire: dict) -> Any:
    """Reconstruct a message object from its wire dict."""
    try:
        msg_type = wire["type"]
    except (TypeError, KeyError):
        raise SerializationError(f"wire value has no type field: {wire!r}")
    cls = MESSAGE_REGISTRY.get(msg_type)
    if cls is None:
        raise SerializationError(f"unknown message type {msg_type!r}")
    return cls.from_wire(wire)


@dataclass(frozen=True)
class SignedPayload:
    """Envelope binding a message to its author's signature.

    ``payload`` is any registered message object; ``signature`` covers the
    payload's wire form.  Envelopes are themselves wire-serializable so
    they can be embedded in certificates (e.g. a COMMITFAST carries 3f+1
    signed SPECREPLYs).
    """

    MSG_TYPE = "signed"

    payload: Any
    signature: Signature

    @classmethod
    def create(cls, payload: Any, keypair: KeyPair) -> "SignedPayload":
        return cls(payload=payload, signature=sign(payload.to_wire(),
                                                   keypair))

    def verify(self, registry: KeyRegistry) -> bool:
        """True iff the signature matches the payload and signer."""
        return is_valid(self.payload.to_wire(), self.signature, registry)

    @property
    def signer(self) -> str:
        return self.signature.signer

    @property
    def cpu_cost_units(self) -> int:
        """Envelopes inherit their payload's processing cost (the
        simulator's CPU model sees the envelope, not the payload)."""
        return getattr(self.payload, "cpu_cost_units", 1)

    def payload_digest(self) -> str:
        return digest(self.payload.to_wire())

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "payload": self.payload.to_wire(),
            "signature": self.signature.to_wire(),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SignedPayload":
        return cls(payload=decode(wire["payload"]),
                   signature=Signature.from_wire(wire["signature"]))


register_message(SignedPayload)
