"""Wire form of the optional trace context envelope field.

The trace context is deliberately *not* a field of
:class:`~repro.messages.base.SignedPayload`: canonical bytes are
memoized per envelope and spliced verbatim into commit certificates,
so adding a mutable field there would perturb signatures and every
cached digest.  Instead the context rides the transport frame beside
the message (the ``TRACED`` frame kind in
:mod:`repro.transport.codec`) and, on the simulator, as an extra
delivery argument -- the message bytes are identical traced or not.

The encoding is one compact JSON object (``{"s": ..., "t": ...}``)
so a foreign or future context degrades to ``None`` instead of
killing the frame.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.trace.context import TraceContext


def trace_context_to_bytes(ctx: TraceContext) -> bytes:
    """Serialize one context for the frame's trace section."""
    return json.dumps(ctx.to_wire(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def trace_context_from_bytes(raw: bytes) -> Optional[TraceContext]:
    """Decode a frame's trace section; ``None`` when malformed (a
    bad context must never make the frame undeliverable)."""
    try:
        data = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return TraceContext.from_wire(data)
