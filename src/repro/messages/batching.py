"""Batched wire messages: amortize one signature over many commands.

Batching is the standard BFT throughput lever: PBFT and Zyzzyva both
amortize one signature/ordering step over many requests.  Every batched
message here follows the same cost model -- the receiver verifies **one**
signature for the whole batch and then one cheap digest per contained
command -- so ``cpu_cost_units`` scales sub-linearly in batch size
instead of linearly as it would for the equivalent stream of singleton
messages.

Three batch shapes cover the hot paths:

- :class:`BatchRequest` -- a client packs several of its own commands
  into one signed request (client -> replica).  This amortizes the
  dominant client-facing cost: connection termination plus an ECDSA
  verification (~20 units) is paid once per batch instead of once per
  command.
- :class:`BatchSpecOrder` -- the ezBFT owner proposes a run of
  consecutive instance slots in one signed message (owner -> replicas).
- :class:`BatchPrePrepare` -- the PBFT primary assigns a run of
  consecutive sequence numbers in one signed message
  (primary -> backups).

A batch of one is always legal but never produced by the batching layer
(:mod:`repro.core.batching` degrades single-item flushes to the classic
unbatched messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SerializationError
from repro.messages.base import as_message, register_message
from repro.messages.ezbft import SpecOrder
from repro.messages.pbft import PrePrepare
from repro.statemachine.base import Command
from repro.types import InstanceID

#: Cost of verifying the one signature covering a replica-to-replica
#: batch (same as any singleton protocol message).
BATCH_SIGNATURE_UNITS = 1
#: Cost of terminating a client connection and verifying the client's
#: ECDSA signature (see :class:`repro.messages.ezbft.Request`).
CLIENT_SIGNATURE_UNITS = 20
#: Cost of hashing one contained command (a digest is ~25x cheaper than
#: a signature verification on the paper's testbed).
PER_COMMAND_DIGEST_UNITS = 0.05


def batch_cost(signature_units: float, count: int) -> float:
    """One signature plus ``count`` per-command digests."""
    return signature_units + PER_COMMAND_DIGEST_UNITS * count


@register_message
@dataclass(frozen=True)
class BatchRequest:
    """<BATCHREQ, [m_1..m_k], c> -- one client's commands under one
    signature.

    All commands must belong to the signing client; replicas reject
    mixed-author batches.  Protocol-agnostic: the ezBFT owner path and
    the PBFT primary path both unpack it into their native request flow.
    """

    MSG_TYPE = "batch-request"

    commands: Tuple[Command, ...]

    def __post_init__(self) -> None:
        if not self.commands:
            raise SerializationError("BatchRequest must carry commands")

    @property
    def client_id(self) -> str:
        return self.commands[0].client_id

    @property
    def cpu_cost_units(self) -> float:
        return batch_cost(CLIENT_SIGNATURE_UNITS, len(self.commands))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "commands": list(self.commands),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "BatchRequest":
        return cls(commands=tuple(as_message(c, Command)
                                  for c in wire["commands"]))


@register_message
@dataclass(frozen=True)
class BatchSpecOrder:
    """<BATCHSPECORDER, O, [SO_1..SO_k]> -- the ezBFT owner's proposal
    for a run of consecutive slots of its instance space.

    The inner :class:`~repro.messages.ezbft.SpecOrder` bodies are
    unsigned; the batch envelope's single signature covers all of them.
    Receivers process each inner order exactly as a singleton SPECORDER
    (dependency merge, speculative execution, SPECREPLY per command) but
    pay the verification cost only once.
    """

    MSG_TYPE = "ez-batch-spec-order"

    leader: str
    owner_number: int
    orders: Tuple[SpecOrder, ...]

    def __post_init__(self) -> None:
        if not self.orders:
            raise SerializationError("BatchSpecOrder must carry orders")

    @property
    def cpu_cost_units(self) -> float:
        return batch_cost(BATCH_SIGNATURE_UNITS, len(self.orders))

    def order_for(self, instance: InstanceID) -> Optional[SpecOrder]:
        """The inner order proposing ``instance``, if any."""
        for order in self.orders:
            if order.instance == instance:
                return order
        return None

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "leader": self.leader,
            "owner_number": self.owner_number,
            "orders": list(self.orders),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "BatchSpecOrder":
        return cls(
            leader=wire["leader"],
            owner_number=wire["owner_number"],
            orders=tuple(as_message(o, SpecOrder) for o in wire["orders"]),
        )


@register_message
@dataclass(frozen=True)
class BatchPrePrepare:
    """<BATCHPREPREPARE, v, [PP_1..PP_k]> -- the PBFT primary's ordering
    of a run of consecutive sequence numbers under one signature.

    Backups unpack and process each inner PRE-PREPARE as usual; the
    PREPARE/COMMIT phases stay per-seqno (they are cheap 1-unit
    messages -- the amortization target is the primary's ordering step).
    """

    MSG_TYPE = "pbft-batch-pre-prepare"

    view: int
    pre_prepares: Tuple[PrePrepare, ...]

    def __post_init__(self) -> None:
        if not self.pre_prepares:
            raise SerializationError(
                "BatchPrePrepare must carry pre-prepares")

    @property
    def cpu_cost_units(self) -> float:
        return batch_cost(BATCH_SIGNATURE_UNITS, len(self.pre_prepares))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "pre_prepares": list(self.pre_prepares),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "BatchPrePrepare":
        return cls(
            view=wire["view"],
            pre_prepares=tuple(as_message(p, PrePrepare)
                               for p in wire["pre_prepares"]),
        )
