"""Zyzzyva wire messages (Kotla et al., SOSP '07).

Fast path: REQUEST -> ORDER-REQ -> SPEC-RESPONSE (3 client-visible steps,
3f+1 matching responses).  Slow path: client broadcasts a COMMIT
certificate of 2f+1 matching responses and waits for 2f+1 LOCAL-COMMITs
(2 extra steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.messages.base import (
    SignedPayload,
    as_message,
    register_message,
)
from repro.statemachine.base import Command


@register_message
@dataclass(frozen=True)
class ZRequest:
    """<REQUEST, o, t, c>."""

    MSG_TYPE = "zyzzyva-request"
    #: Client-facing cost: connection termination + ECDSA verification
    #: (see repro.messages.ezbft.Request).
    cpu_cost_units = 20

    command: Command

    @property
    def client_id(self) -> str:
        return self.command.client_id

    @property
    def timestamp(self) -> int:
        return self.command.timestamp

    def to_wire(self) -> dict:
        return {"type": self.MSG_TYPE, "command": self.command}

    @classmethod
    def from_wire(cls, wire: dict) -> "ZRequest":
        return cls(command=as_message(wire["command"], Command))


@register_message
@dataclass(frozen=True)
class OrderReq:
    """<ORDER-REQ, v, n, h_n, d> plus the request."""

    MSG_TYPE = "zyzzyva-order-req"
    cpu_cost_units = 1

    view: int
    seqno: int
    history_digest: str
    request_digest: str
    request: ZRequest

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "history_digest": self.history_digest,
            "request_digest": self.request_digest,
            "request": self.request,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "OrderReq":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   history_digest=wire["history_digest"],
                   request_digest=wire["request_digest"],
                   request=as_message(wire["request"], ZRequest))


@register_message
@dataclass(frozen=True)
class SpecResponse:
    """<SPEC-RESPONSE, v, n, h_n, H(r), c, t>, i, r, OR.

    ``order_req`` embeds the signed ORDER-REQ so the client can prove
    primary equivocation (two ORDER-REQs with the same n, different d).
    """

    MSG_TYPE = "zyzzyva-spec-response"
    cpu_cost_units = 1

    view: int
    seqno: int
    history_digest: str
    request_digest: str
    client_id: str
    timestamp: int
    replica: str
    result: Any
    order_req: Optional[SignedPayload] = None

    def matches(self, other: "SpecResponse") -> bool:
        """Matching per the Zyzzyva spec: v, n, h, d, t and r equal."""
        return (self.view == other.view
                and self.seqno == other.seqno
                and self.history_digest == other.history_digest
                and self.request_digest == other.request_digest
                and self.timestamp == other.timestamp
                and self.result == other.result)

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "history_digest": self.history_digest,
            "request_digest": self.request_digest,
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "replica": self.replica,
            "result": self.result,
            "order_req": self.order_req,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SpecResponse":
        order_req = wire.get("order_req")
        return cls(
            view=wire["view"], seqno=wire["seqno"],
            history_digest=wire["history_digest"],
            request_digest=wire["request_digest"],
            client_id=wire["client_id"], timestamp=wire["timestamp"],
            replica=wire["replica"], result=wire["result"],
            order_req=(as_message(order_req, SignedPayload)
                       if order_req else None),
        )


@register_message
@dataclass(frozen=True)
class ZCommit:
    """<COMMIT, c, CC> -- 2f+1 matching SPEC-RESPONSEs."""

    MSG_TYPE = "zyzzyva-commit"

    client_id: str
    seqno: int
    certificate: Tuple[SignedPayload, ...]

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.certificate))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "client_id": self.client_id,
            "seqno": self.seqno,
            "certificate": list(self.certificate),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ZCommit":
        return cls(client_id=wire["client_id"], seqno=wire["seqno"],
                   certificate=tuple(as_message(c, SignedPayload)
                                     for c in wire["certificate"]))


@register_message
@dataclass(frozen=True)
class LocalCommit:
    """<LOCAL-COMMIT, v, d, h, i, c>."""

    MSG_TYPE = "zyzzyva-local-commit"
    cpu_cost_units = 1

    view: int
    seqno: int
    request_digest: str
    history_digest: str
    replica: str
    client_id: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "history_digest": self.history_digest,
            "replica": self.replica,
            "client_id": self.client_id,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "LocalCommit":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   history_digest=wire["history_digest"],
                   replica=wire["replica"], client_id=wire["client_id"])


@register_message
@dataclass(frozen=True)
class FillHole:
    """<FILL-HOLE, v, n, i> -- a replica asks the primary for a missed
    ORDER-REQ."""

    MSG_TYPE = "zyzzyva-fill-hole"
    cpu_cost_units = 1

    view: int
    seqno: int
    replica: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "replica": self.replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "FillHole":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   replica=wire["replica"])


@register_message
@dataclass(frozen=True)
class IHateThePrimary:
    """<I-HATE-THE-PRIMARY, v, i> -- vote to depose the view-v primary."""

    MSG_TYPE = "zyzzyva-ihtp"
    cpu_cost_units = 1

    view: int
    replica: str

    def to_wire(self) -> dict:
        return {"type": self.MSG_TYPE, "view": self.view,
                "replica": self.replica}

    @classmethod
    def from_wire(cls, wire: dict) -> "IHateThePrimary":
        return cls(view=wire["view"], replica=wire["replica"])


@register_message
@dataclass(frozen=True)
class ZNewView:
    """Simplified Zyzzyva NEW-VIEW: the new primary announces view v+1
    with the highest commit certificate it collected."""

    MSG_TYPE = "zyzzyva-new-view"

    new_view: int
    primary: str
    max_committed_seqno: int
    proof: Tuple[SignedPayload, ...] = ()

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.proof))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "new_view": self.new_view,
            "primary": self.primary,
            "max_committed_seqno": self.max_committed_seqno,
            "proof": list(self.proof),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ZNewView":
        return cls(new_view=wire["new_view"], primary=wire["primary"],
                   max_committed_seqno=wire["max_committed_seqno"],
                   proof=tuple(as_message(p, SignedPayload)
                               for p in wire["proof"]))
