"""Wire message types for every protocol in the repository.

Each message is a frozen dataclass with:

- a unique ``MSG_TYPE`` string,
- ``to_wire()`` / ``from_wire()`` for canonical (de)serialization,
- a ``cpu_cost_units`` class attribute consumed by the simulator's CPU
  model (certificate-carrying messages cost proportionally more to verify).

:func:`repro.messages.base.decode` reconstructs any registered message
from its wire dict -- used by the asyncio transport and by tests that
round-trip every type.
"""

from repro.messages.base import (
    MESSAGE_REGISTRY,
    SignedPayload,
    decode,
    register_message,
)
from repro.messages import (  # noqa: F401 (register)
    batching,
    ezbft,
    fab,
    pbft,
    zyzzyva,
)

__all__ = [
    "MESSAGE_REGISTRY",
    "SignedPayload",
    "decode",
    "register_message",
    "ezbft",
    "pbft",
    "zyzzyva",
    "fab",
    "batching",
]
