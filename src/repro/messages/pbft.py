"""PBFT wire messages (Castro & Liskov, OSDI '99).

Five client-visible communication steps: REQUEST -> PRE-PREPARE ->
PREPARE -> COMMIT -> REPLY.  Checkpoints and view changes included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.messages.base import (
    SignedPayload,
    as_message,
    register_message,
)
from repro.statemachine.base import Command


@register_message
@dataclass(frozen=True)
class PBFTRequest:
    """<REQUEST, o, t, c>."""

    MSG_TYPE = "pbft-request"
    #: Client-facing cost: connection termination + ECDSA verification
    #: (see repro.messages.ezbft.Request).
    cpu_cost_units = 20

    command: Command

    @property
    def client_id(self) -> str:
        return self.command.client_id

    @property
    def timestamp(self) -> int:
        return self.command.timestamp

    def to_wire(self) -> dict:
        return {"type": self.MSG_TYPE, "command": self.command}

    @classmethod
    def from_wire(cls, wire: dict) -> "PBFTRequest":
        return cls(command=as_message(wire["command"], Command))


@register_message
@dataclass(frozen=True)
class PrePrepare:
    """<PRE-PREPARE, v, n, d> plus the request itself."""

    MSG_TYPE = "pbft-pre-prepare"
    cpu_cost_units = 1

    view: int
    seqno: int
    request_digest: str
    request: PBFTRequest

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "request": self.request,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "PrePrepare":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   request=as_message(wire["request"], PBFTRequest))


@register_message
@dataclass(frozen=True)
class Prepare:
    """<PREPARE, v, n, d, i>."""

    MSG_TYPE = "pbft-prepare"
    cpu_cost_units = 1

    view: int
    seqno: int
    request_digest: str
    replica: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "replica": self.replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Prepare":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   replica=wire["replica"])


@register_message
@dataclass(frozen=True)
class PBFTCommit:
    """<COMMIT, v, n, d, i>."""

    MSG_TYPE = "pbft-commit"
    cpu_cost_units = 1

    view: int
    seqno: int
    request_digest: str
    replica: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "seqno": self.seqno,
            "request_digest": self.request_digest,
            "replica": self.replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "PBFTCommit":
        return cls(view=wire["view"], seqno=wire["seqno"],
                   request_digest=wire["request_digest"],
                   replica=wire["replica"])


@register_message
@dataclass(frozen=True)
class PBFTReply:
    """<REPLY, v, t, c, i, r>."""

    MSG_TYPE = "pbft-reply"
    cpu_cost_units = 1

    view: int
    timestamp: int
    client_id: str
    replica: str
    result: Any

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "view": self.view,
            "timestamp": self.timestamp,
            "client_id": self.client_id,
            "replica": self.replica,
            "result": self.result,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "PBFTReply":
        return cls(view=wire["view"], timestamp=wire["timestamp"],
                   client_id=wire["client_id"], replica=wire["replica"],
                   result=wire["result"])


@register_message
@dataclass(frozen=True)
class PBFTCheckpoint:
    """<CHECKPOINT, n, d, i>."""

    MSG_TYPE = "pbft-checkpoint"
    cpu_cost_units = 1

    seqno: int
    state_digest: str
    replica: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "seqno": self.seqno,
            "state_digest": self.state_digest,
            "replica": self.replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "PBFTCheckpoint":
        return cls(seqno=wire["seqno"], state_digest=wire["state_digest"],
                   replica=wire["replica"])


@register_message
@dataclass(frozen=True)
class ViewChange:
    """<VIEW-CHANGE, v+1, n, P, i>.

    ``prepared`` summarizes the sender's prepared-but-uncommitted requests
    above its last stable checkpoint: tuples of (seqno, digest, view) with
    the full request attached so the new primary can re-propose.
    """

    MSG_TYPE = "pbft-view-change"

    new_view: int
    last_stable_seqno: int
    prepared: Tuple[Tuple[int, str, int], ...]
    requests: Tuple[PBFTRequest, ...]
    replica: str

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.prepared))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "new_view": self.new_view,
            "last_stable_seqno": self.last_stable_seqno,
            "prepared": [list(p) for p in self.prepared],
            "requests": list(self.requests),
            "replica": self.replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ViewChange":
        return cls(
            new_view=wire["new_view"],
            last_stable_seqno=wire["last_stable_seqno"],
            prepared=tuple((p[0], p[1], p[2]) for p in wire["prepared"]),
            requests=tuple(as_message(r, PBFTRequest)
                           for r in wire["requests"]),
            replica=wire["replica"],
        )


@register_message
@dataclass(frozen=True)
class NewView:
    """<NEW-VIEW, v+1, V, O> -- the new primary's view-change certificate
    plus re-issued PRE-PREPAREs."""

    MSG_TYPE = "pbft-new-view"

    new_view: int
    view_change_proof: Tuple[SignedPayload, ...]
    pre_prepares: Tuple[PrePrepare, ...]
    primary: str

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.view_change_proof) + len(self.pre_prepares))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "new_view": self.new_view,
            "view_change_proof": list(self.view_change_proof),
            "pre_prepares": list(self.pre_prepares),
            "primary": self.primary,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "NewView":
        return cls(
            new_view=wire["new_view"],
            view_change_proof=tuple(as_message(p, SignedPayload)
                                    for p in wire["view_change_proof"]),
            pre_prepares=tuple(as_message(p, PrePrepare)
                               for p in wire["pre_prepares"]),
            primary=wire["primary"],
        )
