"""ezBFT wire messages (paper Section IV).

Field naming follows the paper: ``owner_number`` is O, ``instance`` is I,
``deps`` is D, ``seq`` is S, ``request_digest`` is d = H(m),
``log_digest`` is h.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.messages.base import (
    SignedPayload,
    as_message,
    decode,
    register_message,
)
from repro.statemachine.base import Command
from repro.types import InstanceID, deps_from_wire, deps_to_wire

Deps = Tuple[InstanceID, ...]


def _sorted_deps(deps) -> Deps:
    return tuple(sorted(set(deps)))


@register_message
@dataclass(frozen=True)
class Request:
    """<REQUEST, L, t, c> -- client ``c`` asks for command ``L`` at
    client-timestamp ``t`` (carried inside the command)."""

    MSG_TYPE = "ez-request"
    #: Client-facing messages are expensive: the replica terminates the
    #: client connection and verifies an ECDSA signature (~1.5ms on the
    #: paper's m4.2xlarge), whereas replica-to-replica traffic is MAC
    #: authenticated.  This asymmetry is what lets a leaderless protocol
    #: spread the dominant cost over all replicas (paper Figures 6, 7).
    cpu_cost_units = 20

    command: Command
    #: Replica the request was originally sent to; set on retries so other
    #: replicas know whom to suspect (paper step 4.3).
    original_replica: Optional[str] = None

    @property
    def client_id(self) -> str:
        return self.command.client_id

    @property
    def timestamp(self) -> int:
        return self.command.timestamp

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "command": self.command,
            "original_replica": self.original_replica,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Request":
        return cls(command=as_message(wire["command"], Command),
                   original_replica=wire.get("original_replica"))


@register_message
@dataclass(frozen=True)
class SpecOrder:
    """<SPECORDER, O, I, D, S, h, d> -- the command-leader's proposal."""

    MSG_TYPE = "ez-spec-order"
    cpu_cost_units = 1

    leader: str
    owner_number: int
    instance: InstanceID
    command: Command
    deps: Deps
    seq: int
    log_digest: str
    request_digest: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "leader": self.leader,
            "owner_number": self.owner_number,
            "instance": self.instance.to_wire(),
            "command": self.command,
            "deps": deps_to_wire(self.deps),
            "seq": self.seq,
            "log_digest": self.log_digest,
            "request_digest": self.request_digest,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SpecOrder":
        return cls(
            leader=wire["leader"],
            owner_number=wire["owner_number"],
            instance=InstanceID.from_wire(wire["instance"]),
            command=as_message(wire["command"], Command),
            deps=deps_from_wire(wire["deps"]),
            seq=wire["seq"],
            log_digest=wire["log_digest"],
            request_digest=wire["request_digest"],
        )


@register_message
@dataclass(frozen=True)
class SpecReply:
    """<SPECREPLY, O, I, D', S', d, c, t>, R_j, rep, SO.

    ``spec_order`` embeds the signed SPECORDER the replica acted on; the
    client inspects it to detect command-leader equivocation (POM).
    """

    MSG_TYPE = "ez-spec-reply"
    cpu_cost_units = 1

    replica: str
    owner_number: int
    instance: InstanceID
    deps: Deps
    seq: int
    request_digest: str
    client_id: str
    timestamp: int
    result: Any
    spec_order: Optional[SignedPayload] = None

    def matches_fast(self, other: "SpecReply") -> bool:
        """Fast-path matching: identical O, I, D, S, c, t and rep."""
        return (self.owner_number == other.owner_number
                and self.instance == other.instance
                and self.deps == other.deps
                and self.seq == other.seq
                and self.client_id == other.client_id
                and self.timestamp == other.timestamp
                and self.result == other.result)

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "replica": self.replica,
            "owner_number": self.owner_number,
            "instance": self.instance.to_wire(),
            "deps": deps_to_wire(self.deps),
            "seq": self.seq,
            "request_digest": self.request_digest,
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "result": self.result,
            "spec_order": self.spec_order,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "SpecReply":
        spec_order = wire.get("spec_order")
        return cls(
            replica=wire["replica"],
            owner_number=wire["owner_number"],
            instance=InstanceID.from_wire(wire["instance"]),
            deps=deps_from_wire(wire["deps"]),
            seq=wire["seq"],
            request_digest=wire["request_digest"],
            client_id=wire["client_id"],
            timestamp=wire["timestamp"],
            result=wire["result"],
            spec_order=(as_message(spec_order, SignedPayload)
                        if spec_order else None),
        )


@register_message
@dataclass(frozen=True)
class CommitFast:
    """<COMMITFAST, c, I, CC> -- asynchronous fast-path commit certificate
    of 3f+1 matching signed SPECREPLYs."""

    MSG_TYPE = "ez-commit-fast"

    #: Certificates are verified lazily (they matter only for recovery),
    #: so the simulated in-band cost is one MAC check.
    cpu_cost_units = 1

    client_id: str
    instance: InstanceID
    certificate: Tuple[SignedPayload, ...]

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "client_id": self.client_id,
            "instance": self.instance.to_wire(),
            "certificate": list(self.certificate),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "CommitFast":
        return cls(
            client_id=wire["client_id"],
            instance=InstanceID.from_wire(wire["instance"]),
            certificate=tuple(as_message(c, SignedPayload)
                              for c in wire["certificate"]),
        )


@register_message
@dataclass(frozen=True)
class Commit:
    """<COMMIT, c, I, D', S', CC> -- slow-path commit with the client's
    combined dependency set and sequence number."""

    MSG_TYPE = "ez-commit"

    client_id: str
    instance: InstanceID
    command: Command
    deps: Deps
    seq: int
    certificate: Tuple[SignedPayload, ...]

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.certificate))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "client_id": self.client_id,
            "instance": self.instance.to_wire(),
            "command": self.command,
            "deps": deps_to_wire(self.deps),
            "seq": self.seq,
            "certificate": list(self.certificate),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "Commit":
        return cls(
            client_id=wire["client_id"],
            instance=InstanceID.from_wire(wire["instance"]),
            command=as_message(wire["command"], Command),
            deps=deps_from_wire(wire["deps"]),
            seq=wire["seq"],
            certificate=tuple(as_message(c, SignedPayload)
                              for c in wire["certificate"]),
        )


@register_message
@dataclass(frozen=True)
class CommitReply:
    """<COMMITREPLY, L, rep> -- final-execution result after a slow-path
    commit."""

    MSG_TYPE = "ez-commit-reply"
    cpu_cost_units = 1

    replica: str
    instance: InstanceID
    client_id: str
    timestamp: int
    result: Any

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "replica": self.replica,
            "instance": self.instance.to_wire(),
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "result": self.result,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "CommitReply":
        return cls(
            replica=wire["replica"],
            instance=InstanceID.from_wire(wire["instance"]),
            client_id=wire["client_id"],
            timestamp=wire["timestamp"],
            result=wire["result"],
        )


@register_message
@dataclass(frozen=True)
class ResendRequest:
    """<RESENDREQ, m, R_j> -- replica R_j relays a retried client request
    to the original recipient R_i and starts a suspicion timer."""

    MSG_TYPE = "ez-resend-request"
    cpu_cost_units = 1

    request: Request
    forwarder: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "request": self.request,
            "forwarder": self.forwarder,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ResendRequest":
        return cls(request=as_message(wire["request"], Request),
                   forwarder=wire["forwarder"])


@register_message
@dataclass(frozen=True)
class ProofOfMisbehavior:
    """<POM, O, POM> -- a pair of signed, conflicting SPECORDERs proving
    the command-leader equivocated (different instances / payloads for the
    same slot)."""

    MSG_TYPE = "ez-pom"
    cpu_cost_units = 2

    suspect: str
    owner_number: int
    evidence: Tuple[SignedPayload, SignedPayload]

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "suspect": self.suspect,
            "owner_number": self.owner_number,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "ProofOfMisbehavior":
        evidence = tuple(as_message(e, SignedPayload)
                         for e in wire["evidence"])
        return cls(suspect=wire["suspect"],
                   owner_number=wire["owner_number"],
                   evidence=(evidence[0], evidence[1]))


@register_message
@dataclass(frozen=True)
class StartOwnerChange:
    """<STARTOWNERCHANGE, R_i, O> -- sender commits to replacing the owner
    of R_i's instance space."""

    MSG_TYPE = "ez-start-owner-change"
    cpu_cost_units = 1

    sender: str
    suspect: str
    owner_number: int

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "sender": self.sender,
            "suspect": self.suspect,
            "owner_number": self.owner_number,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "StartOwnerChange":
        return cls(sender=wire["sender"], suspect=wire["suspect"],
                   owner_number=wire["owner_number"])


@dataclass(frozen=True)
class LogEntrySummary:
    """One instance of the suspect's space as seen by a replica, with the
    strongest evidence the replica holds for it."""

    instance: InstanceID
    command: Optional[Command]
    deps: Deps
    seq: int
    status: str
    owner_number: int
    #: "commit" when backed by a COMMIT/COMMITFAST certificate,
    #: "spec-order" when backed by the signed SPECORDER only.
    proof_kind: str
    proof: Tuple[SignedPayload, ...] = ()

    def to_wire(self) -> dict:
        return {
            "instance": self.instance.to_wire(),
            "command": self.command,
            "deps": deps_to_wire(self.deps),
            "seq": self.seq,
            "status": self.status,
            "owner_number": self.owner_number,
            "proof_kind": self.proof_kind,
            "proof": list(self.proof),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "LogEntrySummary":
        return cls(
            instance=InstanceID.from_wire(wire["instance"]),
            command=(as_message(wire["command"], Command)
                     if wire["command"] else None),
            deps=deps_from_wire(wire["deps"]),
            seq=wire["seq"],
            status=wire["status"],
            owner_number=wire["owner_number"],
            proof_kind=wire["proof_kind"],
            proof=tuple(as_message(p, SignedPayload)
                        for p in wire["proof"]),
        )


@register_message
@dataclass(frozen=True)
class OwnerChange:
    """<OWNERCHANGE> -- a replica's view of the suspect's instance space,
    sent to the prospective new owner.

    ``base_slot`` is the first slot above the sender's last stable
    checkpoint: the paper's recovery payload carries only "instances
    executed or committed since the last checkpoint", so everything
    below ``base_slot`` is omitted (it is durably executed at a quorum).
    """

    MSG_TYPE = "ez-owner-change"

    sender: str
    suspect: str
    new_owner_number: int
    entries: Tuple[LogEntrySummary, ...]
    base_slot: int = 0

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.entries))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "sender": self.sender,
            "suspect": self.suspect,
            "new_owner_number": self.new_owner_number,
            "entries": list(self.entries),
            "base_slot": self.base_slot,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "OwnerChange":
        return cls(
            sender=wire["sender"],
            suspect=wire["suspect"],
            new_owner_number=wire["new_owner_number"],
            entries=tuple(as_message(e, LogEntrySummary)
                          for e in wire["entries"]),
            base_slot=wire.get("base_slot", 0),
        )


@register_message
@dataclass(frozen=True)
class NewOwner:
    """<NEWOWNER> -- the new owner's finalized history G for the frozen
    instance space, plus the OWNERCHANGE set P that justifies it."""

    MSG_TYPE = "ez-new-owner"

    new_owner: str
    suspect: str
    new_owner_number: int
    safe_entries: Tuple[LogEntrySummary, ...]
    proof: Tuple[SignedPayload, ...] = ()
    #: First slot the finalized history covers; slots below it are
    #: protected by a stable checkpoint and are not re-finalized.
    base_slot: int = 0

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.safe_entries) + len(self.proof))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "new_owner": self.new_owner,
            "suspect": self.suspect,
            "new_owner_number": self.new_owner_number,
            "safe_entries": list(self.safe_entries),
            "proof": list(self.proof),
            "base_slot": self.base_slot,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "NewOwner":
        return cls(
            new_owner=wire["new_owner"],
            suspect=wire["suspect"],
            new_owner_number=wire["new_owner_number"],
            safe_entries=tuple(as_message(e, LogEntrySummary)
                               for e in wire["safe_entries"]),
            proof=tuple(as_message(p, SignedPayload)
                        for p in wire["proof"]),
            base_slot=wire.get("base_slot", 0),
        )


@register_message
@dataclass(frozen=True)
class EzCheckpoint:
    """<EZCHECKPOINT, W, d, R> -- replica R attests that after executing
    its first W commands its application state digests to ``d``.

    2f+1 matching attestations make the checkpoint *stable*: the prefix
    below W is durable at a quorum, so the log below the checkpoint's
    per-space frontier can be garbage-collected and owner-change
    payloads can start above it."""

    MSG_TYPE = "ez-checkpoint"
    cpu_cost_units = 1

    replica: str
    watermark: int
    state_digest: str

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "replica": self.replica,
            "watermark": self.watermark,
            "state_digest": self.state_digest,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "EzCheckpoint":
        return cls(replica=wire["replica"],
                   watermark=wire["watermark"],
                   state_digest=wire["state_digest"])


@register_message
@dataclass(frozen=True)
class StateTransferRequest:
    """<STATEXFERREQ, R, W> -- replica R is behind (its execution
    watermark is W) and asks a peer for its latest stable checkpoint, so
    it can catch up past log prefixes the cluster already truncated."""

    MSG_TYPE = "ez-state-transfer-request"
    cpu_cost_units = 1

    replica: str
    have_watermark: int

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "replica": self.replica,
            "have_watermark": self.have_watermark,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "StateTransferRequest":
        return cls(replica=wire["replica"],
                   have_watermark=wire["have_watermark"])


@register_message
@dataclass(frozen=True)
class StateTransferReply:
    """<STATEXFERREPLY, W, snapshot, proof> -- a stable checkpoint's full
    snapshot plus the 2f+1 signed EZCHECKPOINT attestations proving it.

    The reply is self-certifying: the receiver verifies the proof set
    against the snapshot digest, so it can be served by any single
    (possibly faulty) peer without trusting it."""

    MSG_TYPE = "ez-state-transfer-reply"

    replica: str
    watermark: int
    snapshot: dict
    proof: Tuple[SignedPayload, ...] = ()
    #: Retained log above the snapshot's frontier (each entry carries
    #: its own verifiable evidence; not covered by the state digest).
    entries: Tuple[LogEntrySummary, ...] = ()

    @property
    def cpu_cost_units(self) -> int:
        return max(1, len(self.proof) + len(self.entries))

    def to_wire(self) -> dict:
        return {
            "type": self.MSG_TYPE,
            "replica": self.replica,
            "watermark": self.watermark,
            "snapshot": self.snapshot,
            "proof": list(self.proof),
            "entries": list(self.entries),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "StateTransferReply":
        return cls(
            replica=wire["replica"],
            watermark=wire["watermark"],
            snapshot=wire["snapshot"],
            proof=tuple(as_message(p, SignedPayload)
                        for p in wire["proof"]),
            entries=tuple(as_message(e, LogEntrySummary)
                          for e in wire.get("entries", ())),
        )
