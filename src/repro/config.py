"""Protocol-wide configuration: replica membership, quorums, timeouts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Membership and quorum parameters shared by every protocol here.

    ``replica_ids`` is the ordered membership; index order determines
    ezBFT owner-number rotation (owner of space R_i under owner number O
    is ``replica_ids[O mod N]``) and PBFT/Zyzzyva view rotation
    (primary of view v is ``replica_ids[v mod N]``).

    Timeouts are in milliseconds of (simulated) time:

    - ``slow_path_timeout``: how long an ezBFT/Zyzzyva client waits for a
      full fast quorum before falling back to the slow path,
    - ``retry_timeout``: how long a client waits for *any* 2f+1 responses
      before re-broadcasting its request to all replicas,
    - ``suspicion_timeout``: how long a replica relaying a RESENDREQ waits
      for the command-leader's SPECORDER before voting to change owners,
    - ``view_change_timeout``: PBFT/Zyzzyva request-progress timer.

    Batching knobs (consumed by :mod:`repro.core.batching`):

    - ``batch_size``: how many requests an amortizing point (the ezBFT
      owner, the PBFT primary, a batching client driver) accumulates
      before flushing one batched message.  ``1`` disables batching --
      every path degrades to the classic per-request protocol.
    - ``batch_timeout_ms``: upper bound on how long a partial batch may
      wait before being flushed anyway, so batching trades bounded
      latency for throughput.
    """

    replica_ids: Tuple[str, ...]
    slow_path_timeout: float = 400.0
    retry_timeout: float = 1200.0
    suspicion_timeout: float = 600.0
    view_change_timeout: float = 1500.0
    checkpoint_interval: int = 128
    batch_size: int = 1
    batch_timeout_ms: float = 10.0

    def __post_init__(self) -> None:
        n = len(self.replica_ids)
        if n < 4:
            raise ConfigurationError(
                f"BFT needs at least 4 replicas (3f+1, f>=1); got {n}")
        if len(set(self.replica_ids)) != n:
            raise ConfigurationError("replica ids must be unique")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.batch_timeout_ms <= 0:
            raise ConfigurationError(
                f"batch_timeout_ms must be positive, "
                f"got {self.batch_timeout_ms}")
        if self.checkpoint_interval < 0:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 0 (0 disables "
                f"checkpointing), got {self.checkpoint_interval}")
        if (n - 1) % 3 != 0:
            # Permitted (extra replicas raise quorum sizes), but f is
            # still floor((n-1)/3).
            pass

    @property
    def n(self) -> int:
        """Total number of replicas."""
        return len(self.replica_ids)

    @property
    def f(self) -> int:
        """Maximum number of byzantine replicas tolerated."""
        return (self.n - 1) // 3

    @property
    def fast_quorum_size(self) -> int:
        """ezBFT/Zyzzyva fast path: all 3f+1 replicas."""
        return 3 * self.f + 1

    @property
    def slow_quorum_size(self) -> int:
        """ezBFT/Zyzzyva slow path and PBFT quorums: 2f+1."""
        return 2 * self.f + 1

    @property
    def weak_quorum_size(self) -> int:
        """f+1 -- enough to contain one correct replica."""
        return self.f + 1

    def index_of(self, replica_id: str) -> int:
        try:
            return self.replica_ids.index(replica_id)
        except ValueError:
            raise ConfigurationError(
                f"unknown replica {replica_id!r}") from None

    def initial_owner_number(self, space_owner: str) -> int:
        """ezBFT: space R_i starts with owner number i."""
        return self.index_of(space_owner)

    def owner_for_number(self, owner_number: int) -> str:
        """ezBFT: the replica owning a space under ``owner_number``."""
        return self.replica_ids[owner_number % self.n]

    def primary_for_view(self, view: int) -> str:
        """PBFT/Zyzzyva/FaB: round-robin primary."""
        return self.replica_ids[view % self.n]

    def slow_quorum_for(self, leader_id: str) -> Tuple[str, ...]:
        """ezBFT: the designated 2f+1 slow-quorum for a command-leader.

        The paper has each command-leader announce a known set of 2f+1
        replicas used by clients to combine dependencies.  We use the
        deterministic choice "the 2f+1 replicas starting at the leader's
        index", which every node can compute locally.
        """
        start = self.index_of(leader_id)
        size = self.slow_quorum_size
        return tuple(self.replica_ids[(start + k) % self.n]
                     for k in range(size))

    def others(self, replica_id: str) -> Tuple[str, ...]:
        return tuple(r for r in self.replica_ids if r != replica_id)
