"""Text and JSON reporters for lint results.

The JSON shape is schema-stable (pinned by
``tests/test_analysis_cli.py``): CI uploads it as an artifact and
downstream tooling may diff runs, so keys are never renamed -- only
added.
"""

from __future__ import annotations

import json
from typing import List, Optional

from repro.analysis.baseline import BaselineEntry, BaselineMatch
from repro.analysis.checkers import all_rules
from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding

#: Bumped when the JSON report's meaning changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(report: LintReport, new: List[Finding],
                match: Optional[BaselineMatch] = None) -> str:
    lines = []
    for finding in new:
        lines.append(finding.format_text())
    if match is not None and match.stale:
        for entry in match.stale:
            lines.append(
                f"stale baseline entry: [{entry.rule}] {entry.path}: "
                f"{entry.message} (fixed? prune it with "
                f"--write-baseline)")
    summary = (f"{report.files_scanned} file(s) scanned, "
               f"{len(new)} finding(s)")
    extras = []
    if report.pragma_suppressed:
        extras.append(f"{report.pragma_suppressed} pragma-allowed")
    if match is not None and match.absorbed:
        extras.append(f"{len(match.absorbed)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport, new: List[Finding],
                match: Optional[BaselineMatch] = None) -> str:
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "rules": [
            {"id": spec.id, "summary": spec.summary,
             "motivation": spec.motivation}
            for spec in all_rules() if spec.id in report.rules
        ],
        "files_scanned": report.files_scanned,
        "findings": [f.to_dict() for f in new],
        "suppressed": {
            "pragma": report.pragma_suppressed,
            "baseline": len(match.absorbed) if match else 0,
        },
        "stale_baseline": [e.to_dict() for e in match.stale]
        if match else [],
        "exit_code": 1 if new else 0,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_rule_list() -> str:
    lines = [f"{'rule':24s} {'motivation':28s} summary",
             "-" * 78]
    for spec in all_rules():
        lines.append(f"{spec.id:24s} {spec.motivation:28s} "
                     f"{spec.summary}")
    return "\n".join(lines)
