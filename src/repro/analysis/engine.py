"""The lint engine: discover -> parse -> check -> suppress.

One :func:`run_lint` call parses every Python file under the scanned
roots once, hands each :class:`FileContext` to every selected AST
checker, runs the project-level (reflective) checkers once, then
filters the raw findings through per-line pragmas.  Baseline
filtering is the caller's job (:mod:`repro.analysis.cli`): the engine
reports *all* surviving findings so ``--write-baseline`` and baseline
matching see the same list.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.analysis.checkers import CHECKER_REGISTRY, FileContext, all_rules
from repro.analysis.findings import Finding
from repro.analysis.pragmas import is_allowed, parse_pragmas

#: Default scan roots, relative to the repo root.
DEFAULT_ROOTS = ("src/repro",)


def repo_root() -> Path:
    """The repository root, derived from the installed package
    location (``src/repro/...`` -> two parents up from ``repro``)."""
    import repro

    return Path(repro.__file__).resolve().parents[2]


def available_rule_ids() -> List[str]:
    return [spec.id for spec in all_rules()]


@dataclass
class LintReport:
    """Findings surviving pragma suppression, plus bookkeeping."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    pragma_suppressed: int = 0
    rules: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings


def _iter_python_files(roots: Sequence[Path]) -> Iterable[Path]:
    for root in roots:
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield Path(dirpath) / name


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root)
    except ValueError:
        rel = path
    return str(rel).replace(os.sep, "/")


def run_lint(paths: Optional[Sequence[str]] = None,
             rules: Optional[Sequence[str]] = None,
             root: Optional[str] = None) -> LintReport:
    """Run the selected checkers and return pragma-filtered findings.

    ``paths``: files/directories to scan (default: ``src/repro``
    under the repo root).  ``rules``: restrict to these rule ids
    (default: all).  ``root``: repo root override for relative paths.
    """
    base = Path(root).resolve() if root else repo_root()
    selected: Optional[FrozenSet[str]] = None
    if rules:
        known = set(available_rule_ids())
        unknown = sorted(set(rules) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown rule id(s) {', '.join(unknown)}; available: "
                f"{', '.join(sorted(known))}")
        selected = frozenset(rules)

    scan_roots = [Path(p) if os.path.isabs(p) else base / p
                  for p in (paths or DEFAULT_ROOTS)]
    for scan_root in scan_roots:
        if not scan_root.exists():
            raise ConfigurationError(
                f"lint path {str(scan_root)!r} does not exist")

    checkers = []
    active_rules: List[str] = []
    for cls in CHECKER_REGISTRY.values():
        checker = cls()
        ids = [r for r in checker.rule_ids()
               if selected is None or r in selected]
        if ids:
            checkers.append(checker)
            active_rules.extend(ids)

    raw: List[Finding] = []
    pragma_maps: Dict[str, Dict[int, FrozenSet[str]]] = {}
    files_scanned = 0
    for path in _iter_python_files(scan_roots):
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise ConfigurationError(
                f"cannot parse {path}: {exc}") from None
        relpath = _relpath(path, base)
        lines = source.splitlines()
        pragma_maps[relpath] = parse_pragmas(lines)
        ctx = FileContext(relpath=relpath, tree=tree, lines=lines)
        files_scanned += 1
        for checker in checkers:
            for finding in checker.check_file(ctx):
                if selected is None or finding.rule in selected:
                    raw.append(finding)

    for checker in checkers:
        for finding in checker.check_project(str(base)):
            if selected is None or finding.rule in selected:
                raw.append(finding)

    report = LintReport(files_scanned=files_scanned,
                        rules=sorted(active_rules))
    for finding in sorted(raw, key=Finding.sort_key):
        allowed = pragma_maps.get(finding.path)
        if allowed is None:
            # Project-checker finding in a file outside the scanned
            # set: load its pragmas lazily so suppressions work the
            # same everywhere.
            target = base / finding.path
            try:
                allowed = parse_pragmas(
                    target.read_text(encoding="utf-8").splitlines())
            except OSError:
                allowed = {}
            pragma_maps[finding.path] = allowed
        if is_allowed(allowed, finding.line, finding.rule):
            report.pragma_suppressed += 1
        else:
            report.findings.append(finding)
    return report
