"""``python -m repro lint``: argument wiring and exit codes.

Exit codes: 0 clean (after pragma and baseline suppression), 1 new
findings, 2 usage/configuration errors (via ``ReproError`` in
``repro.__main__``).
"""

from __future__ import annotations

import argparse
from typing import Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineMatch,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import repo_root, run_lint
from repro.analysis.reporters import (
    render_json,
    render_rule_list,
    render_text,
)


def add_lint_parser(sub) -> None:
    """Attach the ``lint`` subparser (called from ``repro.__main__``)."""
    lint = sub.add_parser(
        "lint",
        help="run the repo-invariant static analysis "
             "(determinism, asyncio-safety, crypto boundaries, "
             "wire-schema parity)")
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to scan "
                           "(default: src/repro)")
    lint.add_argument("--rule", action="append", default=[],
                      metavar="ID",
                      help="run only this rule id (repeatable; "
                           "see --list-rules)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="report format (json is schema-stable; "
                           "CI uploads it as an artifact)")
    lint.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE,
                      default=None, metavar="PATH",
                      help="suppress findings grandfathered in this "
                           "baseline file (default path "
                           f"{DEFAULT_BASELINE} when the flag is "
                           "given bare)")
    lint.add_argument("--write-baseline", nargs="?",
                      const=DEFAULT_BASELINE, default=None,
                      metavar="PATH",
                      help="write the current findings as the new "
                           "baseline and exit 0")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_list())
        return 0
    report = run_lint(paths=args.paths or None,
                      rules=args.rule or None)

    if args.write_baseline is not None:
        path = _anchor(args.write_baseline)
        save_baseline(path, report.findings)
        print(f"wrote {len(report.findings)} entr"
              f"{'y' if len(report.findings) == 1 else 'ies'} to "
              f"{path}")
        return 0

    match: Optional[BaselineMatch] = None
    new = report.findings
    if args.baseline is not None:
        entries = load_baseline(_anchor(args.baseline))
        match = apply_baseline(report.findings, entries)
        new = match.new

    if args.format == "json":
        print(render_json(report, new, match), end="")
    else:
        print(render_text(report, new, match))
    return 1 if new else 0


def _anchor(path: str) -> str:
    """Resolve a baseline path against the repo root (so the
    committed default works from any working directory)."""
    import os

    if os.path.isabs(path) or os.path.exists(path):
        return path
    return str(repo_root() / path)
