"""The committed lint baseline: grandfathered findings.

A baseline entry acknowledges one existing finding without fixing it,
so the lint gate can be strict for *new* code from day one.  Entries
match findings by ``(rule, path, message)`` -- deliberately not by
line number, so the baseline survives unrelated edits -- and each
entry absorbs exactly one finding (multiplicity matters: two
identical findings need two entries).

Workflow:

- ``python -m repro lint --baseline`` exits 0 when every finding is
  either pragma-suppressed or absorbed by the committed baseline.
- ``python -m repro lint --write-baseline`` regenerates the file from
  the current findings (shrinking it as debt is paid down).
- Entries that no longer match anything are reported as *stale* so
  the file cannot silently rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.analysis.findings import Finding

#: Repo-root-relative location of the committed baseline.
DEFAULT_BASELINE = "lint-baseline.json"

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    message: str
    #: Free-form justification, carried through round-trips.
    note: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        data = {"rule": self.rule, "path": self.path,
                "message": self.message}
        if self.note:
            data["note"] = self.note
        return data


@dataclass
class BaselineMatch:
    """Result of filtering findings through a baseline."""

    new: List[Finding] = field(default_factory=list)
    absorbed: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)


def load_baseline(path: str) -> List[BaselineEntry]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        raise ConfigurationError(
            f"baseline file {path!r} not found") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline file {path!r} is not valid JSON: {exc}") from None
    if not isinstance(data, dict) or "entries" not in data:
        raise ConfigurationError(
            f"baseline file {path!r} lacks an 'entries' list")
    if data.get("version") != _FORMAT_VERSION:
        raise ConfigurationError(
            f"baseline file {path!r} has version "
            f"{data.get('version')!r}; this tool reads version "
            f"{_FORMAT_VERSION}")
    entries = []
    for i, raw in enumerate(data["entries"]):
        try:
            entries.append(BaselineEntry(
                rule=raw["rule"], path=raw["path"],
                message=raw["message"], note=raw.get("note", "")))
        except (TypeError, KeyError) as exc:
            raise ConfigurationError(
                f"baseline entry #{i} in {path!r} is malformed "
                f"(needs rule/path/message): {exc}") from None
    return entries


def save_baseline(path: str, findings: List[Finding]) -> None:
    entries = [BaselineEntry(rule=f.rule, path=f.path,
                             message=f.message)
               for f in sorted(findings, key=Finding.sort_key)]
    payload = {
        "version": _FORMAT_VERSION,
        "entries": [entry.to_dict() for entry in entries],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def apply_baseline(findings: List[Finding],
                   entries: List[BaselineEntry]) -> BaselineMatch:
    """Split ``findings`` into new vs. absorbed, tracking stale
    entries.  Each entry absorbs at most one finding."""
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in entries:
        budget[entry.key()] = budget.get(entry.key(), 0) + 1
    match = BaselineMatch()
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            match.absorbed.append(finding)
        else:
            match.new.append(finding)
    for entry in entries:
        if budget.get(entry.key(), 0) > 0:
            budget[entry.key()] -= 1
            match.stale.append(entry)
    return match
