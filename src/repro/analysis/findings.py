"""Finding: one rule violation at one source location.

Findings are plain frozen dataclasses so reporters, the baseline
matcher, and tests can compare them by value.  ``baseline_key()``
deliberately excludes the line number: grandfathered entries must
survive unrelated edits above them in the same file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    ``path`` is repo-root-relative with forward slashes (stable across
    machines and OSes, so baselines and JSON reports diff cleanly).
    ``line``/``col`` are 1-based/0-based as in :mod:`ast`.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used by the committed baseline."""
        return (self.rule, self.path, self.message)

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"[{self.rule}] {self.message}")

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
