"""repro.analysis: repo-specific invariant linting.

An AST-based (stdlib ``ast``, zero dependencies) static-analysis pass
that encodes this repo's hard-won invariants as machine-checked
rules, so the bug classes past PRs fixed by hand -- process-salted
seeds (PR 3), garbage-collected send tasks (PR 2), frozen-dataclass
memo mutation (PR 6) -- fail CI instead of flaking a sweep a week
later.

Checkers (see the README's "Static analysis" section for the full
catalog):

- **determinism**: wall-clock/global-RNG/builtin-``hash()`` reads in
  sim-reachable layers (the layer map lives in
  :mod:`repro.analysis.layers`);
- **asyncio-safety**: dangling ``create_task``, ``get_event_loop``,
  blocking calls inside ``async def``;
- **frozen-mutation**: ``object.__setattr__`` outside the sanctioned
  memo sites;
- **crypto-boundary**: key-material reaches and ``hashlib`` digests
  outside ``repro.crypto``;
- **quorum-arithmetic**: bare ``2f+1``-style literals outside named
  quorum helpers;
- **wire-schema**: reflective ``to_wire``/``from_wire``/decode-table
  parity for every message dataclass.

Surface: ``python -m repro lint [--rule ID] [--format json]
[--baseline]``; programmatic entry is :func:`run_lint`.  Per-line
pragmas (``# repro: allow[rule-id]``) sanction permanent exceptions
in place; the committed ``lint-baseline.json`` grandfathers temporary
debt.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.checkers import (
    CHECKER_REGISTRY,
    Checker,
    FileContext,
    RuleSpec,
    all_rules,
    register_checker,
)
from repro.analysis.engine import (
    DEFAULT_ROOTS,
    LintReport,
    available_rule_ids,
    repo_root,
    run_lint,
)
from repro.analysis.findings import Finding

__all__ = [
    "CHECKER_REGISTRY",
    "Checker",
    "FileContext",
    "RuleSpec",
    "register_checker",
    "all_rules",
    "available_rule_ids",
    "Finding",
    "LintReport",
    "run_lint",
    "repo_root",
    "DEFAULT_ROOTS",
    "DEFAULT_BASELINE",
    "BaselineEntry",
    "load_baseline",
    "save_baseline",
    "apply_baseline",
]
