"""Per-line pragma suppressions: ``# repro: allow[rule-id]``.

A pragma sanctions one finding at one site, in the code itself, where
reviewers see it -- the right tool for *permanent* exceptions (the
scenario runner's ``wall_seconds`` stopwatch, the sweep cache's
content-address hash).  Temporary debt belongs in the baseline file
instead.

Syntax::

    wall_start = time.perf_counter()  # repro: allow[wall-clock]
    # repro: allow[digest-outside-crypto] -- cache key, not protocol
    digest = hashlib.sha256(blob).hexdigest()

- Several ids may be listed: ``allow[wall-clock,global-random]``.
- ``allow[*]`` suppresses every rule on the line (use sparingly).
- A pragma on a *comment-only* line covers the next code line, for
  statements that don't leave room for a trailing comment.
- Trailing prose after the closing bracket is ignored, so pragmas can
  carry their own justification.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\- ]+)\]")

#: Sentinel meaning "every rule".
ALLOW_ALL = "*"


def parse_pragmas(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> rule ids allowed on that line.

    Comment-only pragma lines forward their allowance to the next
    line (chains of comment lines forward through to the first code
    line), and also keep it for themselves so a finding *on* the
    comment line is covered either way.
    """
    allowed: Dict[int, FrozenSet[str]] = {}
    carry: FrozenSet[str] = frozenset()
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        here: FrozenSet[str] = frozenset()
        if match:
            here = frozenset(
                token.strip() for token in match.group(1).split(",")
                if token.strip())
        combined = here | carry
        if combined:
            allowed[lineno] = combined
        stripped = text.strip()
        if stripped.startswith("#"):
            # Comment-only line: forward to the next line.
            carry = combined
        else:
            carry = frozenset()
    return allowed


def is_allowed(allowed: Dict[int, FrozenSet[str]], line: int,
               rule: str) -> bool:
    ids = allowed.get(line)
    if not ids:
        return False
    return rule in ids or ALLOW_ALL in ids
