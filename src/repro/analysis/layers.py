"""The repo's layer map: which modules may touch wall-clock state.

The determinism contract (byte-identical seeded reports, the pinned
``repro bench`` sim cells) holds because everything reachable from a
simulated run draws time from the simulator clock and randomness from
seeded ``random.Random`` instances.  Code that *measures* real time --
the TCP transport, the bench harness, the sweep process pool -- is
explicitly exempt.  This module is the single authority the checkers
consult, so moving a module between regimes is a one-line diff here
instead of a pragma sprinkle.

Layers are the first path component under ``src/repro/`` (the module
stem for top-level files like ``config.py``).  Anything not listed in
:data:`WALL_CLOCK_OK_LAYERS` is deterministic by default: a new
package gets the strict regime until someone argues otherwise.
"""

from __future__ import annotations

import posixpath

#: Layers where wall-clock reads are part of the job: the TCP
#: transport schedules on the real event loop, bench/sweep measure
#: wall time by design, obs timestamps live deployments (its metrics
#: and health endpoints exist only under ``repro serve``), the CLI
#: orchestrates all of them, and the analysis package itself never
#: runs inside an experiment.
WALL_CLOCK_OK_LAYERS = frozenset({
    "transport", "bench", "sweep", "analysis", "obs", "__main__",
})

#: Module-scoped wall-clock grants, for layers that are deterministic
#: *except* for one explicitly live file.  The ``trace`` layer is the
#: motivating case: span clocks are injected, and the only module
#: allowed to read real time is the TCP-path clock source -- granting
#: the whole layer would let sim-side tracing drift onto the wall
#: clock silently.
WALL_CLOCK_OK_MODULES = frozenset({
    "src/repro/trace/live.py",
})

#: Layers allowed to touch the filesystem: ``storage`` is the
#: durability layer (WAL + snapshot stores are its whole job), sweep
#: owns the on-disk cell cache, obs writes drain snapshots, scenario
#: loads spec files and manages serve-process data dirs, bench pins
#: baselines, and analysis/CLI read the tree they lint.  ``core``,
#: ``protocols``, ``statemachine`` and friends stay pure: protocol
#: code persists *through* the storage seam
#: (``replica.attach_storage``), never with a bare ``open()`` -- that
#: keeps the sim backend hermetic and the durability axis optional.
FS_OK_LAYERS = frozenset({
    "storage", "sweep", "scenario", "analysis", "obs", "bench",
    "__main__",
})

#: Layers sanctioned to call the builtin ``hash()``: the digest layer
#: keys per-instance memos by content hash (in-process only, never
#: serialized), and the envelope verify memo in ``messages`` does the
#: same.  Everywhere else a bare ``hash()`` is a process-salted value
#: waiting to leak into a seed or a wire field (the PR 3 bug).
HASH_OK_LAYERS = frozenset({"crypto", "messages"})

#: Layers holding the sanctioned ``object.__setattr__`` memo sites
#: (see the frozen-mutation checker for the attribute allowlist).
FROZEN_MUTATION_LAYERS = frozenset({"crypto", "messages"})

#: The package prefix the layer map speaks about.
_SRC_PREFIX = "src/repro/"


def layer_of(relpath: str) -> str:
    """Layer name for a repo-relative posix path.

    ``src/repro/sim/network.py`` -> ``sim``;
    ``src/repro/config.py`` -> ``config``.  Paths outside
    ``src/repro/`` (tests, benchmarks, lint fixtures) get the
    basename-derived layer of their first component, which keeps the
    deterministic default for unknown trees.
    """
    path = relpath.replace("\\", "/")
    if path.startswith(_SRC_PREFIX):
        path = path[len(_SRC_PREFIX):]
    head, _, rest = path.partition("/")
    if not rest:
        head = posixpath.splitext(head)[0]
    return head


def wall_clock_allowed(relpath: str) -> bool:
    if relpath.replace("\\", "/") in WALL_CLOCK_OK_MODULES:
        return True
    return layer_of(relpath) in WALL_CLOCK_OK_LAYERS


def filesystem_allowed(relpath: str) -> bool:
    return layer_of(relpath) in FS_OK_LAYERS


def hash_allowed(relpath: str) -> bool:
    return layer_of(relpath) in HASH_OK_LAYERS


def frozen_mutation_layer(relpath: str) -> bool:
    return layer_of(relpath) in FROZEN_MUTATION_LAYERS


def in_crypto(relpath: str) -> bool:
    """True for modules inside ``repro.crypto`` -- the only place key
    material and digest primitives may be touched directly."""
    return layer_of(relpath) == "crypto"
