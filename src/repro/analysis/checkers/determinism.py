"""Determinism checker: wall clock, global randomness, salted hash.

Every rule here encodes a bug this repo actually shipped:

- PR 3 replaced a process-salted ``hash()`` seed in the workload
  generator with crc32 -- until then "seeded" runs differed between
  interpreter launches (``PYTHONHASHSEED``).
- The byte-identical-report determinism gate (PR 4) and the bench
  baseline's exact sim fields (PR 6) both die silently if anything in
  a sim-reachable layer reads the wall clock or the process-global
  RNG; the failure shows up as an unreproducible flake a week later.

The layer map (:mod:`repro.analysis.layers`) decides where the rules
apply: ``transport``/``bench``/``sweep``/``obs`` measure real time by
design (obs timestamps live ``repro serve`` deployments only),
and the digest/envelope memos in ``crypto``/``messages`` key on
``hash()`` legitimately (in-process only, never serialized).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    canonical_call_name,
    import_aliases,
    register_checker,
)
from repro.analysis.layers import hash_allowed, wall_clock_allowed

#: Wall-clock reads, as dotted call targets.  ``datetime.now`` &c.
#: are matched on the attribute tail too, so both ``datetime.now()``
#: and ``datetime.datetime.now()`` import styles are caught.
_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
})
_WALL_CLOCK_TAILS = frozenset({
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
})

#: Functions on the process-global RNG.  Seeded ``random.Random``
#: *instances* are the sanctioned alternative and never match here.
_GLOBAL_RANDOM = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "expovariate", "getrandbits", "betavariate", "triangular",
})


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    RULES = (
        RuleSpec("wall-clock",
                 "wall-clock read (time.*/datetime.now) in a "
                 "deterministic layer",
                 "PR 4/PR 6 determinism gates"),
        RuleSpec("global-random",
                 "call on the process-global random module (use a "
                 "seeded random.Random instance)",
                 "PR 3 seed threading"),
        RuleSpec("salted-hash",
                 "builtin hash() outside the sanctioned memo layers "
                 "(process-salted per PYTHONHASHSEED)",
                 "PR 3 process-salted workload seed"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        deterministic = not wall_clock_allowed(ctx.relpath)
        hash_ok = hash_allowed(ctx.relpath)
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, aliases)
            if deterministic and self._is_wall_clock(name):
                yield ctx.finding(
                    "wall-clock", node,
                    f"wall-clock call {name}() in deterministic "
                    f"layer; draw time from the simulator clock / "
                    f"NodeContext, or move the code to a wall-clock "
                    f"layer (see repro.analysis.layers)")
            elif self._is_global_random(name):
                yield ctx.finding(
                    "global-random", node,
                    f"{name}() uses the process-global RNG; "
                    f"construct a seeded random.Random from the "
                    f"scenario seed instead")
            elif deterministic and not hash_ok and name == "hash":
                yield ctx.finding(
                    "salted-hash", node,
                    "builtin hash() is process-salted "
                    "(PYTHONHASHSEED); use repro.crypto.digest or "
                    "zlib.crc32 for stable values")

    @staticmethod
    def _is_wall_clock(name: str) -> bool:
        if name in _WALL_CLOCK_CALLS:
            return True
        tail = ".".join(name.split(".")[-2:])
        return tail in _WALL_CLOCK_TAILS

    @staticmethod
    def _is_global_random(name: str) -> bool:
        module, _, func = name.rpartition(".")
        return module == "random" and func in _GLOBAL_RANDOM
