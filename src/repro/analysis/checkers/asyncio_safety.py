"""Asyncio-safety checker: the transport bug classes from PR 2.

- ``dangling-task``: the event loop holds only *weak* references to
  tasks, so a fire-and-forget ``create_task(...)`` statement can be
  garbage-collected mid-send -- exactly the PR 2 bug where in-flight
  TCP sends vanished under load.  The fix pattern (retain the task,
  discard on done) lives in ``AsyncioNode.send``.
- ``event-loop``: ``asyncio.get_event_loop()`` outside a running loop
  is deprecated and binds to the wrong loop under ``asyncio.run``;
  PR 2 moved the transport to ``get_running_loop()``.
- ``blocking-async``: a synchronous sleep or subprocess/socket call
  inside ``async def`` stalls every replica sharing the loop; under
  the scenario runner that reads as a cluster-wide partition.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    canonical_call_name,
    dotted_name,
    import_aliases,
    register_checker,
)

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Dotted call targets that block the event loop.
_BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo",
    "urllib.request.urlopen",
})

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register_checker
class AsyncioSafetyChecker(Checker):
    name = "asyncio-safety"
    RULES = (
        RuleSpec("dangling-task",
                 "create_task/ensure_future result dropped; the loop "
                 "keeps only weak task references",
                 "PR 2 GC'd mid-flight sends"),
        RuleSpec("event-loop",
                 "asyncio.get_event_loop(); use get_running_loop()",
                 "PR 2 transport lifecycle"),
        RuleSpec("blocking-async",
                 "blocking call inside async def stalls the shared "
                 "event loop",
                 "PR 2 transport rewrite"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Expr) and \
                    isinstance(node.value, ast.Call):
                name = dotted_name(node.value.func)
                tail = name.rpartition(".")[2]
                if tail in _TASK_SPAWNERS:
                    yield ctx.finding(
                        "dangling-task", node,
                        f"{tail}(...) result is dropped; the event "
                        f"loop only weak-references tasks, so this "
                        f"task can be garbage-collected mid-flight "
                        f"-- retain it and discard on completion")
            elif isinstance(node, ast.Call):
                if canonical_call_name(node.func, aliases) == \
                        "asyncio.get_event_loop":
                    yield ctx.finding(
                        "event-loop", node,
                        "asyncio.get_event_loop() is deprecated and "
                        "binds the wrong loop under asyncio.run; use "
                        "asyncio.get_running_loop()")
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._blocking_calls(ctx, node, aliases)

    def _blocking_calls(self, ctx: FileContext,
                        func: ast.AsyncFunctionDef,
                        aliases) -> Iterator[Finding]:
        """Flag blocking calls lexically inside ``func``'s own body,
        skipping nested function definitions (which may run in a
        worker thread or another context)."""
        stack = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                name = canonical_call_name(node.func, aliases)
                if name in _BLOCKING_CALLS:
                    yield ctx.finding(
                        "blocking-async", node,
                        f"blocking call {name}() inside async def "
                        f"{func.name!r}; await the asyncio "
                        f"equivalent or run it in an executor")
            stack.extend(ast.iter_child_nodes(node))
