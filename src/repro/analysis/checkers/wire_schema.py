"""Wire-schema parity checker: ``to_wire`` covers every field, and
registered types round-trip through the decode table.

Unlike the AST checkers this one works on the *imported* classes: a
field is whatever ``dataclasses.fields`` says it is (inheritance and
``field(default=...)`` included), and registration is whatever the
live ``MESSAGE_REGISTRY`` holds -- the same structures the TCP codec
uses at runtime.  Only the ``to_wire``/``from_wire`` *bodies* are
read via their source, because coverage there is a syntactic
question.

Three parity claims per wire dataclass:

- every class carrying a ``MSG_TYPE`` is registered in the decode
  table under that type (and as itself, not a shadowing duplicate);
- ``to_wire`` references every dataclass field (a field silently
  dropped from the wire form is a field that vanishes on the TCP
  path while sim runs keep working -- the nastiest parity bug class);
- ``from_wire`` reads every key ``to_wire`` emits (minus ``type``),
  so nothing survives encode just to be dropped on decode.

Nested wire structs without ``MSG_TYPE`` (``LogEntrySummary``,
``InstanceID``) are deliberately unregistered -- they never ride
top-level -- and get only the field-coverage checks.
"""

from __future__ import annotations

import ast
import dataclasses
import importlib
import inspect
import pkgutil
import textwrap
from typing import Iterator, List, Set

from repro.analysis.checkers.base import (
    Checker,
    Finding,
    RuleSpec,
    register_checker,
)

#: Packages/modules whose dataclasses form the wire schema.  Packages
#: are walked recursively; plain modules are imported as-is.  Modules
#: of registered classes are always included, so a protocol package
#: that registers messages of its own is covered automatically.
WIRE_MODULE_ROOTS = (
    "repro.messages",
    "repro.types",
    "repro.statemachine.base",
    "repro.statemachine.checkpoint",
    "repro.crypto.signatures",
)


def _iter_wire_modules() -> Iterator[object]:
    from repro.messages.base import MESSAGE_REGISTRY

    seen: Set[str] = set()
    names: List[str] = list(WIRE_MODULE_ROOTS)
    names.extend(cls.__module__ for cls in MESSAGE_REGISTRY.values())
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        module = importlib.import_module(name)
        yield module
        path = getattr(module, "__path__", None)
        if path:  # package: walk submodules
            for info in pkgutil.iter_modules(path):
                sub = f"{name}.{info.name}"
                if sub not in seen:
                    seen.add(sub)
                    yield importlib.import_module(sub)


def _self_attrs(fn) -> Set[str]:
    """Attribute names read off ``self`` in ``fn``'s body."""
    tree = ast.parse(textwrap.dedent(inspect.getsource(fn)))
    return {
        node.attr for node in ast.walk(tree)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name) and node.value.id == "self"
    }


def _emitted_keys(fn) -> Set[str]:
    """String keys of dict literals in ``fn`` (the wire form)."""
    tree = ast.parse(textwrap.dedent(inspect.getsource(fn)))
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and \
                        isinstance(key.value, str):
                    keys.add(key.value)
    return keys


def _consumed_keys(fn) -> Set[str]:
    """Keys read from the ``wire`` argument in ``from_wire``."""
    tree = ast.parse(textwrap.dedent(inspect.getsource(fn)))
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Subscript) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "wire" and \
                isinstance(node.slice, ast.Constant) and \
                isinstance(node.slice.value, str):
            keys.add(node.slice.value)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "get" and \
                isinstance(node.func.value, ast.Name) and \
                node.func.value.id == "wire" and \
                node.args and isinstance(node.args[0], ast.Constant):
            keys.add(node.args[0].value)
    return keys


def _location(cls, repo_root: str) -> tuple:
    """(relpath, line) of ``cls`` for finding anchors."""
    import os

    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return f"<{cls.__module__}>", 1
    try:
        path = os.path.relpath(path, repo_root)
    except ValueError:  # different drive on windows
        pass
    return path.replace(os.sep, "/"), line


def check_class(cls, repo_root: str = ".") -> List[Finding]:
    """Parity findings for one wire dataclass (test entry point)."""
    from repro.messages.base import MESSAGE_REGISTRY

    findings: List[Finding] = []
    path, line = _location(cls, repo_root)

    def finding(message: str) -> Finding:
        return Finding(rule="wire-parity", path=path, line=line,
                       col=0, message=message)

    to_wire = cls.__dict__.get("to_wire")
    from_wire = getattr(cls, "from_wire", None)
    if to_wire is None:
        return findings  # inherits its encoding; parity checked there
    if from_wire is None:
        findings.append(finding(
            f"{cls.__name__} defines to_wire but no from_wire"))
        return findings

    msg_type = getattr(cls, "MSG_TYPE", None)
    if msg_type is not None:
        registered = MESSAGE_REGISTRY.get(msg_type)
        if registered is None:
            findings.append(finding(
                f"{cls.__name__} has MSG_TYPE {msg_type!r} but is "
                f"not in the decode table (missing "
                f"@register_message?)"))
        elif registered is not cls:
            findings.append(finding(
                f"{cls.__name__}'s MSG_TYPE {msg_type!r} resolves to "
                f"{registered.__name__} in the decode table"))

    fields = [f.name for f in dataclasses.fields(cls)]
    referenced = _self_attrs(to_wire)
    missing = [f for f in fields if f not in referenced]
    if missing:
        findings.append(finding(
            f"{cls.__name__}.to_wire does not serialize field(s) "
            f"{', '.join(missing)}: the TCP path would silently "
            f"drop them"))

    emitted = _emitted_keys(to_wire) - {"type"}
    consumed = _consumed_keys(inspect.unwrap(
        from_wire.__func__ if hasattr(from_wire, "__func__")
        else from_wire))
    dropped = sorted(emitted - consumed)
    if dropped:
        findings.append(finding(
            f"{cls.__name__}.from_wire never reads wire key(s) "
            f"{', '.join(dropped)} that to_wire emits"))
    return findings


@register_checker
class WireSchemaChecker(Checker):
    name = "wire-schema"
    RULES = (
        RuleSpec("wire-parity",
                 "frozen message dataclass whose to_wire/from_wire/"
                 "decode-table entries disagree with its fields",
                 "lazy wire embedding in PR 6"),
    )

    def check_project(self, root: str) -> Iterator[Finding]:
        seen: Set[type] = set()
        for module in _iter_wire_modules():
            for value in vars(module).values():
                if not (inspect.isclass(value)
                        and dataclasses.is_dataclass(value)
                        and value.__module__ == module.__name__):
                    continue
                if value in seen:
                    continue
                seen.add(value)
                yield from check_class(value, repo_root=root)
