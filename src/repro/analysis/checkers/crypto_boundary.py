"""Crypto-boundary checker: key material and digests stay in
``repro.crypto``.

The byzantine model depends on a capability argument: honest and
byzantine node objects alike hold only their own ``KeyPair`` plus a
``KeyRegistry`` reference, so nobody can sign as anyone else.  That
argument is only as strong as the boundary -- one ``registry._keys``
reach (or a ``.secret`` pull) from protocol code hands out everyone's
signing capability.  PR 6 introduced ``KeyRegistry.secret_for`` as
the single sanctioned accessor; this checker enumerates stragglers.

Digest computation is fenced for a different reason: protocol digests
must be *canonical* (byte-identical at every correct node), which
``repro.crypto.digest`` guarantees and ad-hoc ``hashlib`` calls do
not.  A raw ``hashlib.sha256(...)`` outside ``repro.crypto`` is
either a second, subtly different canonical form waiting to fork the
cluster, or a non-protocol use that should say so with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    canonical_call_name,
    dotted_name,
    import_aliases,
    register_checker,
)
from repro.analysis.layers import in_crypto

#: Private key-material attribute names.
_KEY_ATTRS = frozenset({"_keys", "secret"})


@register_checker
class CryptoBoundaryChecker(Checker):
    name = "crypto-boundary"
    RULES = (
        RuleSpec("key-reach",
                 "direct access to key material (._keys/.secret) "
                 "outside repro.crypto; use KeyRegistry.secret_for",
                 "PR 6 secret_for accessor"),
        RuleSpec("digest-outside-crypto",
                 "hashlib call outside repro.crypto; protocol "
                 "digests go through repro.crypto.digest",
                 "canonical-encoding invariant"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if in_crypto(ctx.relpath):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr in _KEY_ATTRS:
                owner = dotted_name(node.value) or "<expr>"
                yield ctx.finding(
                    "key-reach", node,
                    f"direct key-material access "
                    f"{owner}.{node.attr}; go through "
                    f"KeyRegistry.secret_for / KeyPair.mac")
            elif isinstance(node, ast.Call):
                name = canonical_call_name(node.func, aliases)
                if name.startswith("hashlib."):
                    yield ctx.finding(
                        "digest-outside-crypto", node,
                        f"{name}() outside repro.crypto; protocol "
                        f"digests must use repro.crypto.digest "
                        f"(pragma-allow non-protocol uses like "
                        f"cache keys)")
