"""Filesystem-boundary checker: disk I/O stays in the storage seam.

PR 9 made durability a first-class axis by introducing
``repro.storage`` (WAL + snapshot stores) and threading it through
``replica.attach_storage``.  The design only stays optional -- and the
sim backend only stays hermetic -- if protocol code never grows a bare
``open()``: a replica that writes files directly cannot be run
diskless, and a state machine that reads them is not a pure function
of its command stream.  This rule pins the boundary: filesystem calls
are legal exactly in the layers :data:`repro.analysis.layers`
sanctions (``storage``, ``sweep``, ``obs``, ``scenario``, ``bench``,
``analysis``, the CLI) and findings everywhere else.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    canonical_call_name,
    import_aliases,
    register_checker,
)
from repro.analysis.layers import filesystem_allowed

#: Dotted call targets that read or mutate the filesystem.
_FS_CALLS = frozenset({
    "open",
    "os.fdopen", "os.replace", "os.rename", "os.remove", "os.unlink",
    "os.makedirs", "os.mkdir", "os.rmdir", "os.removedirs",
    "os.listdir", "os.scandir", "os.truncate", "os.link",
    "os.symlink",
    "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
    "tempfile.TemporaryFile", "tempfile.SpooledTemporaryFile",
})

#: ``shutil`` is filesystem manipulation wholesale.
_FS_MODULES = frozenset({"shutil"})

#: Attribute tails covering ``pathlib.Path`` convenience I/O
#: (``cfg_path.read_text()`` and friends) regardless of the receiver
#: expression.
_FS_TAILS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes",
})


@register_checker
class FilesystemChecker(Checker):
    name = "filesystem"
    RULES = (
        RuleSpec("fs-outside-storage",
                 "filesystem call outside the sanctioned layers "
                 "(storage/sweep/obs/scenario/bench/analysis/CLI)",
                 "PR 9 durability seam"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if filesystem_allowed(ctx.relpath):
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node.func, aliases)
            if self._is_fs_call(name):
                yield ctx.finding(
                    "fs-outside-storage", node,
                    f"filesystem call {name}() in a diskless layer; "
                    f"persist through the repro.storage seam "
                    f"(replica.attach_storage) or move the code to "
                    f"an FS-sanctioned layer (see "
                    f"repro.analysis.layers.FS_OK_LAYERS)")

    @staticmethod
    def _is_fs_call(name: str) -> bool:
        if not name:
            return False
        if name in _FS_CALLS:
            return True
        if name.partition(".")[0] in _FS_MODULES and "." in name:
            return True
        return name.rpartition(".")[2] in _FS_TAILS and "." in name
