"""Frozen-mutation checker: ``object.__setattr__`` stays corralled.

The perf memos from PR 6 (canonical-bytes, digest, and envelope
verify-verdict caches) mutate frozen message dataclasses through
``object.__setattr__`` at exactly one sanctioned site per memo, each
keyed by content hash so mutation cannot resurrect stale entries.
That design only holds if those remain the *only* sites: a stray
``object.__setattr__`` on a frozen message elsewhere silently breaks
the immutability arguments the signing and dedup layers rest on.

The rule: ``object.__setattr__(obj, attr, value)`` is allowed only in
the ``crypto``/``messages`` layers *and* only when ``attr`` is one of
the known memo attributes (by constant string or by the module-level
name that holds it).  Everything else -- including a sanctioned
attribute written from the wrong layer -- is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    dotted_name,
    register_checker,
)
from repro.analysis.layers import frozen_mutation_layer

#: Constant attribute values of the sanctioned memo slots.
ALLOWED_MEMO_ATTRS = frozenset({
    "_repro_verify_memo",      # messages.base: SignedPayload.verify
    "_repro_canonical_memo",   # crypto.digest: canonical-bytes memo
    "_repro_digest_memo",      # crypto.digest: hexdigest memo
})

#: Module-level constant names holding those values (the real call
#: sites pass the name, not the literal).
ALLOWED_MEMO_NAMES = frozenset({
    "_VERIFY_MEMO", "_BYTES_MEMO", "_DIGEST_MEMO",
})


@register_checker
class FrozenMutationChecker(Checker):
    name = "frozen-mutation"
    RULES = (
        RuleSpec("frozen-mutation",
                 "object.__setattr__ outside the sanctioned "
                 "crypto/messages memo sites",
                 "PR 6 content-hash memos"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        layer_ok = frozen_mutation_layer(ctx.relpath)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "object.__setattr__":
                continue
            attr = node.args[1] if len(node.args) >= 2 else None
            if layer_ok and self._is_memo_attr(attr):
                continue
            label = self._attr_label(attr)
            if not layer_ok:
                why = ("only the crypto/messages memo layers may "
                       "mutate frozen instances")
            else:
                why = ("attribute is not an allowlisted memo slot "
                       f"({', '.join(sorted(ALLOWED_MEMO_ATTRS))})")
            yield ctx.finding(
                "frozen-mutation", node,
                f"object.__setattr__({label}) on a frozen instance: "
                f"{why}")

    @staticmethod
    def _is_memo_attr(attr) -> bool:
        if isinstance(attr, ast.Constant) and \
                attr.value in ALLOWED_MEMO_ATTRS:
            return True
        return isinstance(attr, ast.Name) and \
            attr.id in ALLOWED_MEMO_NAMES

    @staticmethod
    def _attr_label(attr) -> str:
        if isinstance(attr, ast.Constant):
            return repr(attr.value)
        if isinstance(attr, ast.Name):
            return attr.id
        return "<dynamic attribute>"
