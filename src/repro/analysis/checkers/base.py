"""Checker protocol, rule catalog, and the checker registry.

A checker bundles related rules and implements one of two shapes:

- ``check_file(ctx)``: called once per parsed source file with a
  :class:`FileContext`; yields :class:`Finding`.  Most checkers are
  this shape -- a targeted ``ast`` walk.
- ``check_project(root)``: called once per lint run with the repo
  root; used by the wire-schema checker, which needs the *imported*
  message classes (dataclass fields, the live decode table) rather
  than per-file syntax.

Registering is a decorator::

    @register_checker
    class MyChecker(Checker):
        name = "my-checker"
        RULES = (RuleSpec("my-rule", "what it forbids", "PR N"),)

        def check_file(self, ctx):
            ...

New checkers self-describe through ``RULES`` so the CLI's
``--list-rules`` and the JSON report's rule catalog stay exhaustive
without a parallel table to update.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple, Type

from repro.analysis.findings import Finding

#: checker name -> checker class.
CHECKER_REGISTRY: Dict[str, Type["Checker"]] = {}


@dataclass(frozen=True)
class RuleSpec:
    """One rule's catalog entry."""

    id: str
    summary: str
    #: The history that motivated the rule ("PR 3" etc.); shown in
    #: ``--list-rules`` so the rationale travels with the tool.
    motivation: str = ""


@dataclass
class FileContext:
    """Everything an AST checker may look at for one file."""

    relpath: str          # repo-root-relative, posix separators
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    def finding(self, rule: str, node: ast.AST,
                message: str) -> Finding:
        return Finding(rule=rule, path=self.relpath,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


class Checker:
    """Base class; subclasses set ``name`` and ``RULES`` and override
    one of the two check hooks."""

    name: str = ""
    RULES: Tuple[RuleSpec, ...] = ()

    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(spec.id for spec in self.RULES)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, root: str) -> Iterator[Finding]:
        return iter(())


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    if not cls.name:
        raise ValueError(f"{cls.__name__} lacks a name")
    if cls.name in CHECKER_REGISTRY:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    CHECKER_REGISTRY[cls.name] = cls
    return cls


def all_rules() -> Iterable[RuleSpec]:
    """Every registered rule, in checker-then-declaration order."""
    for checker in CHECKER_REGISTRY.values():
        for spec in checker.RULES:
            yield spec


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested Attribute/Name chains, else ``""``.

    The shared helper every call-pattern checker uses to match
    ``time.time`` / ``asyncio.get_event_loop`` / ``loop.create_task``
    without caring how deep the attribute chain goes.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted target for the file's imports.

    ``import time as t`` -> ``{"t": "time"}``; ``from datetime import
    datetime as dt`` -> ``{"dt": "datetime.datetime"}``; ``from time
    import perf_counter`` -> ``{"perf_counter": "time.perf_counter"}``.
    Call-pattern checkers canonicalize through this map so aliased
    imports cannot dodge a rule.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else \
                    alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and \
                not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def canonical_call_name(node: ast.AST,
                        aliases: Dict[str, str]) -> str:
    """:func:`dotted_name` with the leading component resolved
    through the file's import aliases."""
    name = dotted_name(node)
    if not name:
        return ""
    head, _, rest = name.partition(".")
    target = aliases.get(head)
    if target:
        return f"{target}.{rest}" if rest else target
    return name
