"""Checker registry: importing this package registers every built-in
checker.  See :mod:`repro.analysis.checkers.base` for the protocol
and the README's "Static analysis" section for the rule catalog."""

from repro.analysis.checkers.base import (
    CHECKER_REGISTRY,
    Checker,
    FileContext,
    RuleSpec,
    all_rules,
    register_checker,
)
from repro.analysis.checkers import (  # noqa: F401  (registration)
    asyncio_safety,
    crypto_boundary,
    determinism,
    filesystem,
    frozen_mutation,
    quorum,
    wire_schema,
)

__all__ = [
    "CHECKER_REGISTRY",
    "Checker",
    "FileContext",
    "RuleSpec",
    "all_rules",
    "register_checker",
]
