"""Quorum-arithmetic checker: no bare ``2f+1``/``3f+1`` literals.

``ProtocolConfig`` names every quorum this codebase uses
(``fast_quorum_size`` = 3f+1, ``slow_quorum_size`` = 2f+1,
``weak_quorum_size`` = f+1, FaB's ``accept_quorum``).  A bare
``2 * f + 1`` at a protocol call site is a silent fork waiting for a
membership generalization: when quorum formulas change (FaB already
uses ceil((n+f+1)/2); sharded membership is on the ROADMAP), every
named helper updates at once while inlined arithmetic keeps encoding
yesterday's formula.

The rule: an ``f + 1`` / ``k * f + 1`` expression over an ``f`` name
or ``.f`` attribute is only allowed inside a function or property
whose name mentions ``quorum`` -- i.e. inside the named helpers
themselves.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.checkers.base import (
    Checker,
    FileContext,
    Finding,
    RuleSpec,
    dotted_name,
    register_checker,
)


def _is_f_ref(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "f":
        return True
    return isinstance(node, ast.Attribute) and node.attr == "f"


def _quorum_shape(node: ast.BinOp) -> str:
    """``"f + 1"`` / ``"2 * f + 1"`` when ``node`` is quorum-shaped,
    else ``""``."""
    if not isinstance(node.op, ast.Add):
        return ""
    if not (isinstance(node.right, ast.Constant) and
            node.right.value == 1):
        return ""
    left = node.left
    if _is_f_ref(left):
        return "f + 1"
    if isinstance(left, ast.BinOp) and isinstance(left.op, ast.Mult):
        for a, b in ((left.left, left.right), (left.right, left.left)):
            if isinstance(a, ast.Constant) and \
                    isinstance(a.value, int) and _is_f_ref(b):
                return f"{a.value} * f + 1"
    return ""


@register_checker
class QuorumArithmeticChecker(Checker):
    name = "quorum-arithmetic"
    RULES = (
        RuleSpec("quorum-literal",
                 "bare f+1 / k*f+1 arithmetic outside a named quorum "
                 "helper; use ProtocolConfig.*_quorum_size",
                 "quorum helpers in ProtocolConfig"),
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, in_helper=False)

    def _walk(self, ctx: FileContext, node: ast.AST,
              in_helper: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            helper = in_helper
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                helper = helper or "quorum" in child.name
            if isinstance(child, ast.BinOp) and not helper:
                shape = _quorum_shape(child)
                if shape:
                    f_node = child.left
                    if isinstance(f_node, ast.BinOp):
                        f_node = f_node.left if _is_f_ref(f_node.left) \
                            else f_node.right
                    owner = dotted_name(f_node)
                    yield ctx.finding(
                        "quorum-literal", child,
                        f"bare quorum arithmetic {shape} (over "
                        f"{owner or 'f'}); use the named "
                        f"ProtocolConfig quorum property")
            yield from self._walk(ctx, child, helper)
