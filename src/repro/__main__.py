"""``python -m repro``: run declarative scenarios from the shell.

Subcommands:

- ``run``: execute a scenario preset on one or both backends, print the
  per-phase report, optionally export JSON.
- ``compare``: run one preset across several protocols and print a
  comparison table.
- ``list-protocols``: the protocol registry with capability flags.
- ``list-presets``: the scenario preset registry.

Examples::

    python -m repro run --preset figure6-smoke --json out.json
    python -m repro run --preset crash-recovery --seed 3
    python -m repro compare --preset figure4
    python -m repro list-protocols
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.protocols.registry import available_protocols, get_protocol
from repro.scenario import (
    ExperimentReport,
    ScenarioRunner,
    available_presets,
    preset,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative BFT consensus experiments "
                    "(scenario presets) on the WAN simulator or real "
                    "TCP sockets.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute one scenario preset")
    run.add_argument("--preset", required=True,
                     help="scenario preset name (see list-presets)")
    run.add_argument("--backend",
                     choices=("sim", "tcp", "both"), default=None,
                     help="override the preset's default backend(s)")
    run.add_argument("--protocol", default=None,
                     help="override the preset's protocol")
    run.add_argument("--seed", type=int, default=None,
                     help="override the preset's seed")
    run.add_argument("--json", dest="json_path", default=None,
                     help="write the report(s) to this JSON file")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the human-readable report")

    compare = sub.add_parser(
        "compare",
        help="run one preset across protocols, print a table")
    compare.add_argument("--preset", required=True)
    compare.add_argument("--protocols", default=None,
                         help="comma-separated list "
                              "(default: every registered protocol)")
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--json", dest="json_path", default=None)

    sub.add_parser("list-protocols",
                   help="registered protocols and capabilities")
    sub.add_parser("list-presets", help="registered scenario presets")
    return parser


def _resolve_scenario(args: argparse.Namespace):
    scenario = preset(args.preset)
    overrides = {}
    if getattr(args, "protocol", None):
        overrides["protocol"] = args.protocol
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    return scenario


def _write_json(path: str, reports: List[ExperimentReport]) -> None:
    if len(reports) == 1:
        payload = reports[0].to_dict()
    else:
        payload = {report.backend: report.to_dict()
                   for report in reports}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, allow_nan=False)
        fh.write("\n")


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args)
    if args.backend is None:
        backends = scenario.backends
    elif args.backend == "both":
        backends = ("sim", "tcp")
    else:
        backends = (args.backend,)
    reports = []
    for backend in backends:
        report = ScenarioRunner(backend=backend).run(scenario)
        reports.append(report)
        if not args.quiet:
            print(report.format_text())
            print()
    if args.json_path:
        _write_json(args.json_path, reports)
        if not args.quiet:
            print(f"wrote {args.json_path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = preset(args.preset)
    if args.seed is not None:
        scenario = scenario.with_overrides(seed=args.seed)
    if args.protocols:
        protocols = tuple(p.strip()
                          for p in args.protocols.split(",") if p.strip())
    else:
        protocols = available_protocols()
    reports = []
    for protocol in protocols:
        get_protocol(protocol)  # fail fast with the available choices
        variant = scenario.with_overrides(
            protocol=protocol, name=f"{scenario.name}-{protocol}")
        reports.append(ScenarioRunner(backend="sim").run(variant))

    header = (f"{'protocol':10s} {'n':>6s} {'thr/s':>8s} "
              f"{'mean':>8s} {'p50':>8s} {'p99':>8s} {'fast':>6s} "
              f"{'oc':>4s} {'vc':>4s}")
    print(f"preset {scenario.name!r} across protocols "
          f"(seed={scenario.seed}):")
    print(header)
    print("-" * len(header))
    for protocol, report in zip(protocols, reports):
        latency = report.latency
        fast = report.fast_path_ratio
        fast_s = f"{fast:.0%}" if not math.isnan(fast) else "-"
        print(f"{protocol:10s} {report.delivered:6d} "
              f"{report.throughput_per_sec:8.1f} "
              f"{latency.mean:8.1f} {latency.p50:8.1f} "
              f"{latency.p99:8.1f} {fast_s:>6s} "
              f"{report.owner_changes:4d} {report.view_changes:4d}")
    if args.json_path:
        payload = {report.protocol: report.to_dict()
                   for report in reports}
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
            fh.write("\n")
        print(f"wrote {args.json_path}")
    return 0


def _cmd_list_protocols() -> int:
    print(f"{'name':10s} {'capabilities'}")
    print("-" * 48)
    for name in available_protocols():
        spec = get_protocol(name)
        flags = [flag for flag, on in (
            ("leaderless", spec.leaderless),
            ("speculative", spec.speculative),
            ("batching", spec.supports_batching),
            ("checkpointing", spec.supports_checkpointing),
        ) if on]
        print(f"{name:10s} {', '.join(flags) or '-'}")
    return 0


def _cmd_list_presets() -> int:
    for name in available_presets():
        scenario = preset(name)
        backends = "+".join(scenario.backends)
        print(f"{name:20s} [{scenario.protocol}, {backends}] "
              f"{scenario.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "list-protocols":
            return _cmd_list_protocols()
        if args.command == "list-presets":
            return _cmd_list_presets()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
