"""``python -m repro``: run declarative scenarios from the shell.

Subcommands:

- ``run``: execute a scenario (preset or ``--spec`` file) on one or
  both backends, print the per-phase report, optionally export JSON.
- ``sweep``: expand a parameter grid over a base scenario, run every
  cell, and export CSV/JSON/plots (``--grid clients=5,10,20``,
  ``--grid seed=1..5``, ``--zip`` for lockstep axes).
- ``compare``: run one preset across several protocols and print a
  comparison table (``--csv`` for the tabular form).
- ``bench``: run the pinned performance grid, write ``BENCH_<rev>.json``
  and optionally gate against a committed baseline
  (``--baseline benchmarks/baselines/BENCH_xxxx.json``).
- ``serve``: host a subset of a TCP scenario's replicas in *this*
  process at their ``hosts``-pinned addresses, for multi-machine
  deployments (the scenario process runs the rest and dials these).
- ``lint``: run the repo-invariant static analysis (determinism,
  asyncio-safety, frozen-mutation, crypto boundaries, quorum
  arithmetic, wire-schema parity); exits 1 on new findings.
- ``list-protocols``: the protocol registry with capability flags.
- ``list-presets``: the scenario preset registry.

Examples::

    python -m repro run --preset figure6-smoke --json out.json
    python -m repro run --spec my_experiment.toml
    python -m repro sweep --preset smoke --grid clients=2,4 \
        --grid seed=1,2 --csv out.csv
    python -m repro sweep --spec fig6_sweep.json --plot fig6.png
    python -m repro compare --preset figure4 --csv fig4.csv
    python -m repro list-protocols
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Any, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.protocols.registry import available_protocols, get_protocol
from repro.scenario import (
    REPORT_CSV_COLUMNS,
    ExperimentReport,
    Scenario,
    ScenarioRunner,
    available_presets,
    load_spec,
    preset,
    rows_to_csv,
)
from repro.sweep import SweepRunner, SweepSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative BFT consensus experiments "
                    "(scenario presets) on the WAN simulator or real "
                    "TCP sockets.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute one scenario (preset or spec file)")
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset",
                        help="scenario preset name (see list-presets)")
    source.add_argument("--spec",
                        help="JSON/TOML scenario spec file")
    run.add_argument("--backend",
                     choices=("sim", "tcp", "both"), default=None,
                     help="override the preset's default backend(s)")
    run.add_argument("--protocol", default=None,
                     help="override the preset's protocol")
    run.add_argument("--seed", type=int, default=None,
                     help="override the preset's seed")
    run.add_argument("--json", dest="json_path", default=None,
                     help="write the report(s) to this JSON file")
    run.add_argument("--trace", dest="trace_path", default=None,
                     metavar="PATH",
                     help="enable causal request tracing and write "
                          "the schema-stable span export here; on "
                          "the sim backend seeded runs produce "
                          "byte-identical files")
    run.add_argument("--trace-chrome", dest="trace_chrome_path",
                     default=None, metavar="PATH",
                     help="also write the trace in Chrome trace-"
                          "event form (load in Perfetto or "
                          "chrome://tracing); implies tracing")
    run.add_argument("--trace-sample", type=float, default=1.0,
                     metavar="RATE",
                     help="fraction of requests to trace, decided "
                          "deterministically per request "
                          "(default 1.0)")
    run.add_argument("--quiet", action="store_true",
                     help="suppress the human-readable report")

    swp = sub.add_parser(
        "sweep",
        help="run a parameter grid over a base scenario, "
             "aggregate and export")
    source = swp.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset",
                        help="base scenario preset name")
    source.add_argument("--spec",
                        help="JSON/TOML scenario or sweep spec file")
    swp.add_argument("--grid", action="append", default=[],
                     metavar="AXIS=V1,V2",
                     help="cartesian axis, e.g. clients=5,10,20 or "
                          "seed=1..5 (repeatable)")
    swp.add_argument("--zip", action="append", default=[],
                     dest="zip_axes", metavar="AXIS=V1,V2",
                     help="lockstep axis: all --zip axes advance "
                          "together (repeatable)")
    swp.add_argument("--backend", choices=("sim", "tcp"),
                     default=None,
                     help="override the base scenario's first "
                          "declared backend")
    swp.add_argument("--workers", type=int, default=1,
                     help="worker processes (default 1: serial)")
    swp.add_argument("--csv", dest="csv_path", default=None,
                     help="write one CSV row per (cell, phase)")
    swp.add_argument("--series-csv", dest="series_csv_path",
                     default=None,
                     help="write the aggregated series (mean/stddev/"
                          "95%% CI across collapsed axes) as CSV; "
                          "axes follow --plot-x/--plot-y/--group-by")
    swp.add_argument("--json", dest="json_path", default=None,
                     help="write the full sweep report as JSON")
    swp.add_argument("--plot", dest="plot_path", default=None,
                     help="render curves to this image file "
                          "(needs matplotlib)")
    swp.add_argument("--plot-x", default=None,
                     help="axis for the plot's x (default: first "
                          "grid axis)")
    swp.add_argument("--plot-y", default=None,
                     help="metric for the plot's y (default: p50 "
                          "latency for closed loops, throughput for "
                          "open)")
    swp.add_argument("--group-by", default=None,
                     help="axis drawn as one line per value "
                          "(default: protocol when swept)")
    swp.add_argument("--no-cache", action="store_true",
                     help="always run every cell fresh (skip the "
                          "on-disk sim cell cache)")
    swp.add_argument("--cache-dir", default=None,
                     help="cell cache directory (default "
                          ".repro-cache/sweep-cells)")
    swp.add_argument("--quiet", action="store_true",
                     help="suppress the per-cell summary table")

    compare = sub.add_parser(
        "compare",
        help="run one preset across protocols, print a table")
    compare.add_argument("--preset", required=True)
    compare.add_argument("--protocols", default=None,
                         help="comma-separated list "
                              "(default: every registered protocol)")
    compare.add_argument("--seed", type=int, default=None)
    compare.add_argument("--json", dest="json_path", default=None)
    compare.add_argument("--csv", dest="csv_path", default=None,
                         help="write one CSV row per "
                              "(protocol, phase)")

    bench = sub.add_parser(
        "bench",
        help="run the pinned performance grid and write "
             "BENCH_<rev>.json")
    bench.add_argument("--grid", choices=("full", "smoke"),
                       default="full",
                       help="full pinned grid, or the reduced smoke "
                            "subset CI runs")
    bench.add_argument("--out", default=None,
                       help="artifact path (default BENCH_<rev>.json "
                            "in the working directory)")
    bench.add_argument("--baseline", default=None,
                       help="committed BENCH_*.json to gate against; "
                            "a regression exits 1")
    bench.add_argument("--tolerance", type=float, default=0.35,
                       help="allowed wall-clock throughput drop vs. "
                            "the baseline (default 0.35 = 35%%)")
    bench.add_argument("--quiet", action="store_true",
                       help="suppress the per-cell progress lines")

    serve = sub.add_parser(
        "serve",
        help="host a subset of a tcp scenario's replicas in this "
             "process (multi-machine host-map deployments)")
    serve.add_argument("--spec", required=True,
                       help="JSON/TOML scenario spec with a [hosts] "
                            "table pinning the served replicas")
    serve.add_argument("--replicas", required=True,
                       help="comma-separated replica ids to host "
                            "here, e.g. r2,r3")
    serve.add_argument("--snapshot", default=None,
                       help="write a final metrics+health snapshot "
                            "(JSON) here on drain")
    serve.add_argument("--data-dir", default=None,
                       help="back hosted replicas with an on-disk "
                            "WAL + snapshot store under this "
                            "directory and recover from it on start "
                            "(default: .repro-data/<scenario> when "
                            "the spec sets durable=true)")
    serve.add_argument("--trace", action="store_true",
                       help="collect causal spans into a bounded "
                            "ring and serve them on each obs "
                            "endpoint's GET /trace")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="fraction of requests to trace "
                            "(default: 1.0)")
    serve.add_argument("--trace-ring", type=int, default=None,
                       metavar="SPANS",
                       help="ring-buffer capacity in spans "
                            "(default: 4096)")
    serve.add_argument("--json-logs", action="store_true",
                       help="emit structured JSON logs (one object "
                            "per line) with run/replica/seed context")

    from repro.analysis.cli import add_lint_parser
    add_lint_parser(sub)

    sub.add_parser("list-protocols",
                   help="registered protocols and capabilities")
    sub.add_parser("list-presets", help="registered scenario presets")
    return parser


def _resolve_scenario(args: argparse.Namespace):
    if getattr(args, "spec", None):
        scenario = load_spec(args.spec)
        if isinstance(scenario, SweepSpec):
            raise ConfigurationError(
                f"{args.spec} holds a sweep spec; run it with "
                f"`python -m repro sweep --spec {args.spec}`")
    else:
        scenario = preset(args.preset)
    overrides = {}
    if getattr(args, "protocol", None):
        overrides["protocol"] = args.protocol
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if overrides:
        scenario = scenario.with_overrides(**overrides)
    return scenario


def _coerce_token(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        value = float(token)
    except ValueError:
        pass
    else:
        if not math.isfinite(value):
            # Mirror the spec loader: a NaN/inf timeout defeats every
            # validate() comparison and runs silently wrong.
            raise ConfigurationError(
                f"non-finite value {token!r} is not allowed in sweep "
                f"axes")
        return value
    if token.lower() in ("true", "false"):
        return token.lower() == "true"
    if token.lower() in ("none", "null"):
        # e.g. --zip primary_region=virginia,none (leaderless arm)
        return None
    return token


def _parse_axis(expr: str) -> Tuple[str, Tuple[Any, ...]]:
    """``clients=5,10,20`` / ``seed=1..5`` -> (axis, values)."""
    axis, sep, value_expr = expr.partition("=")
    if not sep or not axis or not value_expr:
        raise ConfigurationError(
            f"bad --grid/--zip value {expr!r}: expected AXIS=V1,V2,... "
            f"or AXIS=LO..HI")
    values: List[Any] = []
    for token in value_expr.split(","):
        token = token.strip()
        if not token:
            raise ConfigurationError(
                f"bad --grid/--zip value {expr!r}: empty value "
                f"(trailing or doubled comma?)")
        lo, sep, hi = token.partition("..")
        if sep:
            # '..' always means an integer range; a malformed one is a
            # typo to surface, not a string value to run with.
            if not (_is_int(lo) and _is_int(hi)):
                raise ConfigurationError(
                    f"bad range {token!r} for sweep axis {axis!r}: "
                    f"expected LO..HI with integer bounds")
            if int(hi) < int(lo):
                raise ConfigurationError(
                    f"bad range {token!r} for sweep axis {axis!r}: "
                    f"end before start")
            values.extend(range(int(lo), int(hi) + 1))
        else:
            values.append(_coerce_token(token))
    return axis, tuple(values)


def _is_int(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True


def _resolve_sweep(args: argparse.Namespace) -> SweepSpec:
    """Build the SweepSpec: spec file or preset base + CLI axes (CLI
    axes override same-named file axes)."""
    if args.spec:
        loaded = load_spec(args.spec)
        if isinstance(loaded, Scenario):
            loaded = SweepSpec(base=loaded)
    else:
        loaded = SweepSpec(base=args.preset)
    grid = dict(loaded.grid)
    zipped = dict(loaded.zipped)
    for expr in args.grid:
        axis, values = _parse_axis(expr)
        zipped.pop(axis, None)
        grid[axis] = values
    for expr in args.zip_axes:
        axis, values = _parse_axis(expr)
        grid.pop(axis, None)
        zipped[axis] = values
    return SweepSpec(base=loaded.base, grid=grid, zipped=zipped,
                     name=loaded.name)


def _write_json(path: str, reports: List[ExperimentReport]) -> None:
    if len(reports) == 1:
        payload = reports[0].to_dict()
    else:
        payload = {report.backend: report.to_dict()
                   for report in reports}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, allow_nan=False)
        fh.write("\n")


def _backend_suffixed(path: str, backend: str, multi: bool) -> str:
    """``trace.json`` -> ``trace.sim.json`` when several backends run
    in one invocation, so their exports do not clobber each other."""
    if not multi:
        return path
    stem, dot, ext = path.rpartition(".")
    if not dot:
        return f"{path}.{backend}"
    return f"{stem}.{backend}.{ext}"


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args)
    if args.backend is None:
        backends = scenario.backends
    elif args.backend == "both":
        backends = ("sim", "tcp")
    else:
        backends = (args.backend,)
    tracing = bool(args.trace_path or args.trace_chrome_path)
    reports = []
    for backend in backends:
        runner = ScenarioRunner(backend=backend, trace=tracing,
                                trace_sample_rate=args.trace_sample)
        report = runner.run(scenario)
        reports.append(report)
        if not args.quiet:
            print(report.format_text())
            print()
        if not tracing:
            continue
        multi = len(backends) > 1
        from repro.trace import chrome_trace_json, export_json
        if args.trace_path:
            path = _backend_suffixed(args.trace_path, backend, multi)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(export_json(
                    runner.last_trace_spans,
                    dropped=runner.last_trace["dropped_spans"]))
            if not args.quiet:
                print(f"wrote {path}")
        if args.trace_chrome_path:
            path = _backend_suffixed(args.trace_chrome_path, backend,
                                     multi)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(chrome_trace_json(runner.last_trace_spans))
            if not args.quiet:
                print(f"wrote {path}")
    if args.json_path:
        _write_json(args.json_path, reports)
        if not args.quiet:
            print(f"wrote {args.json_path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import DEFAULT_CACHE_DIR, SweepCellCache

    spec = _resolve_sweep(args)
    total = spec.size()
    # Like `run`: an explicit --backend wins, else honor what the base
    # scenario declares (its first backend; a sweep runs on one).
    backend = args.backend or spec.base_scenario().backends[0]
    cache = None if args.no_cache else SweepCellCache(
        args.cache_dir or DEFAULT_CACHE_DIR)
    runner = SweepRunner(backend=backend, workers=args.workers,
                         cache=cache)

    done = {"n": 0}

    def progress(cell, report):
        done["n"] += 1
        if not args.quiet:
            label = cell.label() or cell.scenario.name
            print(f"[{done['n']}/{total}] {label}: "
                  f"{report.delivered} delivered, "
                  f"{report.throughput_per_sec:.1f}/s")

    report = runner.run(spec, progress=progress)
    if not args.quiet:
        if cache is not None and (cache.hits or cache.misses):
            print(f"cell cache: {cache.hits} hit(s), "
                  f"{cache.misses} miss(es) "
                  f"[{cache.root}; --no-cache to bypass]")
        print()
        print(report.format_text())
    if args.csv_path:
        report.to_csv(args.csv_path)
        if not args.quiet:
            print(f"wrote {args.csv_path}")
    if args.json_path:
        report.save(args.json_path)
        if not args.quiet:
            print(f"wrote {args.json_path}")
    if args.series_csv_path:
        x, y, group_by = _series_axes(args, spec, report,
                                      purpose="--series-csv")
        report.series_to_csv(x, y=y, group_by=group_by,
                             path=args.series_csv_path)
        if not args.quiet:
            print(f"wrote {args.series_csv_path}")
    if args.plot_path:
        from repro.sweep import plot_series
        x, y, group_by = _series_axes(args, spec, report,
                                      purpose="--plot")
        plot_series(report, x, y=y, group_by=group_by,
                    path=args.plot_path)
        if not args.quiet:
            print(f"wrote {args.plot_path}")
    return 0


def _series_axes(args: argparse.Namespace, spec: SweepSpec,
                 report, purpose: str) -> Tuple[str, str, Optional[str]]:
    """Resolve the (x, y, group_by) axes shared by ``--plot`` and
    ``--series-csv``: explicit flags win, else first axis / a mode-
    appropriate latency-or-throughput metric / protocol grouping."""
    axes = list(report.axes)
    if not axes:
        raise ConfigurationError(
            f"nothing to aggregate for {purpose}: the sweep has no "
            f"axes")
    x = args.plot_x or axes[0]
    if args.plot_y:
        y = args.plot_y
    elif spec.base_scenario().workload.mode == "open":
        y = "throughput_per_sec"
    else:
        y = "latency_p50_ms"
    group_by = args.group_by
    if group_by is None and "protocol" in report.axes and \
            x != "protocol":
        group_by = "protocol"
    return x, y, group_by


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = preset(args.preset)
    if args.seed is not None:
        scenario = scenario.with_overrides(seed=args.seed)
    if args.protocols:
        protocols = tuple(p.strip()
                          for p in args.protocols.split(",") if p.strip())
    else:
        protocols = available_protocols()
    reports = []
    for protocol in protocols:
        get_protocol(protocol)  # fail fast with the available choices
        variant = scenario.with_overrides(
            protocol=protocol, name=f"{scenario.name}-{protocol}")
        reports.append(ScenarioRunner(backend="sim").run(variant))

    header = (f"{'protocol':10s} {'n':>6s} {'thr/s':>8s} "
              f"{'mean':>8s} {'p50':>8s} {'p99':>8s} {'fast':>6s} "
              f"{'oc':>4s} {'vc':>4s}")
    print(f"preset {scenario.name!r} across protocols "
          f"(seed={scenario.seed}):")
    print(header)
    print("-" * len(header))
    for protocol, report in zip(protocols, reports):
        latency = report.latency
        fast = report.fast_path_ratio
        fast_s = f"{fast:.0%}" if not math.isnan(fast) else "-"
        print(f"{protocol:10s} {report.delivered:6d} "
              f"{report.throughput_per_sec:8.1f} "
              f"{latency.mean:8.1f} {latency.p50:8.1f} "
              f"{latency.p99:8.1f} {fast_s:>6s} "
              f"{report.owner_changes:4d} {report.view_changes:4d}")
    if args.json_path:
        payload = {report.protocol: report.to_dict()
                   for report in reports}
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, allow_nan=False)
            fh.write("\n")
        print(f"wrote {args.json_path}")
    if args.csv_path:
        rows = [row for report in reports for row in report.to_rows()]
        rows_to_csv(rows, list(REPORT_CSV_COLUMNS), args.csv_path)
        print(f"wrote {args.csv_path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare, current_rev, grid_cells, run_bench

    total = len(grid_cells(args.grid))
    done = {"n": 0}

    def progress(cell, metrics):
        done["n"] += 1
        if not args.quiet:
            events = metrics.get("events_per_second")
            extra = f", {events:.0f} events/s" if events else ""
            print(f"[{done['n']}/{total}] {cell.name}: "
                  f"{metrics['delivered']} delivered in "
                  f"{metrics['wall_seconds']:.2f}s "
                  f"({metrics['throughput']:.0f}/s{extra})")

    artifact = run_bench(grid=args.grid, progress=progress)
    out = args.out or f"BENCH_{artifact['rev']}.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, allow_nan=False)
        fh.write("\n")
    if not args.quiet:
        print(f"wrote {out}")
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        problems = compare(artifact, baseline,
                           tolerance=args.tolerance)
        if problems:
            print(f"bench gate FAILED against {args.baseline} "
                  f"(baseline rev {baseline.get('rev', '?')}, "
                  f"new rev {current_rev()}):", file=sys.stderr)
            for problem in problems:
                print(f"  - {problem}", file=sys.stderr)
            return 1
        if not args.quiet:
            print(f"bench gate passed against {args.baseline} "
                  f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import ServeSession, configure_json_logging

    scenario = load_spec(args.spec)
    if isinstance(scenario, SweepSpec):
        raise ConfigurationError(
            f"{args.spec} holds a sweep spec; serve needs a scenario "
            f"with a 'hosts' table")
    replicas = tuple(r.strip() for r in args.replicas.split(",")
                     if r.strip())
    if not replicas:
        raise ConfigurationError(
            "--replicas needs at least one replica id")
    if args.json_logs:
        configure_json_logging(run=scenario.name, replicas=replicas,
                               seed=str(scenario.seed))
    session = ServeSession(scenario, replicas,
                           snapshot_path=args.snapshot,
                           data_dir=args.data_dir,
                           trace=args.trace,
                           trace_sample_rate=args.trace_sample,
                           trace_ring=args.trace_ring)

    def announce() -> None:
        cluster = session.cluster
        served = ", ".join(
            f"{rid}@{cluster.addresses[rid][0]}:"
            f"{cluster.addresses[rid][1]}" for rid in replicas)
        print(f"serving {served} [scenario {scenario.name!r}, "
              f"{scenario.protocol}]", flush=True)
        obs = ", ".join(f"{rid}@{host}:{port}" for rid, (host, port)
                        in sorted(session.endpoints.items()))
        if obs:
            print(f"obs endpoints (metrics/healthz/control): {obs}",
                  flush=True)

    try:
        asyncio.run(session.run(on_started=announce))
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_list_protocols() -> int:
    print(f"{'name':10s} {'capabilities'}")
    print("-" * 48)
    for name in available_protocols():
        spec = get_protocol(name)
        flags = [flag for flag, on in (
            ("leaderless", spec.leaderless),
            ("speculative", spec.speculative),
            ("batching", spec.supports_batching),
            ("checkpointing", spec.supports_checkpointing),
        ) if on]
        print(f"{name:10s} {', '.join(flags) or '-'}")
    return 0


def _cmd_list_presets() -> int:
    for name in available_presets():
        scenario = preset(name)
        backends = "+".join(scenario.backends)
        print(f"{name:20s} [{scenario.protocol}, {backends}] "
              f"{scenario.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "lint":
            from repro.analysis.cli import cmd_lint
            return cmd_lint(args)
        if args.command == "list-protocols":
            return _cmd_list_protocols()
        if args.command == "list-presets":
            return _cmd_list_presets()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
