"""repro: a full reproduction of ezBFT (Arun, Peluso, Ravindran -- ICDCS
2019), the leaderless byzantine fault-tolerant consensus protocol, plus
the substrates and baselines its evaluation depends on.

Quickstart::

    from repro import build_cluster, EXPERIMENT1

    cluster = build_cluster(
        "ezbft",
        replica_regions=["virginia", "tokyo", "mumbai", "sydney"],
        latency=EXPERIMENT1)
    client = cluster.add_client("c0", region="tokyo")
    results = []
    client.on_delivery = lambda cmd, res, lat, path: results.append(
        (res, lat, path))
    client.submit(client.next_command("put", "greeting", "hello"))
    cluster.run_until_idle()
    print(results)  # [('OK', ~105ms, 'fast')]

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.cluster.builder import Cluster, PROTOCOLS, build_cluster
from repro.cluster.metrics import LatencyRecorder, summarize
from repro.config import ProtocolConfig
from repro.core.batching import RequestBatcher
from repro.core.client import EzBFTClient
from repro.core.replica import EzBFTReplica
from repro.protocols.registry import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.sim.events import Simulator
from repro.sim.latency import (
    EXPERIMENT1,
    EXPERIMENT2,
    LOCAL,
    LatencyMatrix,
    uniform_matrix,
)
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork
from repro.statemachine.base import Command
from repro.statemachine.interference import (
    AlwaysInterfere,
    KVInterference,
    NeverInterfere,
)
from repro.statemachine.base import StateMachine
from repro.statemachine.bank import BankMachine
from repro.statemachine.counter import CounterMachine
from repro.statemachine.kvstore import KVStore
from repro.workload.drivers import (
    BatchingOpenLoopDriver,
    ClosedLoopDriver,
    OpenLoopDriver,
)
from repro.workload.generator import KVWorkload

__version__ = "1.0.0"

__all__ = [
    "build_cluster",
    "Cluster",
    "PROTOCOLS",
    "ProtocolSpec",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "ProtocolConfig",
    "RequestBatcher",
    "EzBFTReplica",
    "EzBFTClient",
    "Simulator",
    "SimNetwork",
    "CpuModel",
    "NetworkConditions",
    "LatencyMatrix",
    "EXPERIMENT1",
    "EXPERIMENT2",
    "LOCAL",
    "uniform_matrix",
    "Command",
    "StateMachine",
    "KVStore",
    "CounterMachine",
    "BankMachine",
    "KVInterference",
    "AlwaysInterfere",
    "NeverInterfere",
    "KVWorkload",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "BatchingOpenLoopDriver",
    "LatencyRecorder",
    "summarize",
]
