"""repro: a full reproduction of ezBFT (Arun, Peluso, Ravindran -- ICDCS
2019), the leaderless byzantine fault-tolerant consensus protocol, plus
the substrates and baselines its evaluation depends on.

Quickstart -- the Scenario API is the canonical experiment surface::

    from repro import preset, run_scenario

    report = run_scenario(preset("smoke"))        # or backend="tcp"
    print(report.format_text())                   # per-phase table
    report.save("out.json")

    # Custom experiments are ~10-line declarative specs:
    from repro import Scenario, WorkloadSpec, CrashReplica, \
        RecoverReplica
    report = run_scenario(Scenario(
        name="my-experiment", protocol="ezbft", latency="experiment1",
        workload=WorkloadSpec(mode="closed", requests_per_client=10),
        faults=(CrashReplica(at_ms=300.0, replica="r1"),
                RecoverReplica(at_ms=2500.0, replica="r1")),
        seed=7))

``python -m repro run --preset figure6-smoke --json out.json`` is the
same thing from the shell; ``build_cluster`` remains the low-level
building block underneath.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.cluster.builder import Cluster, PROTOCOLS, build_cluster
from repro.cluster.metrics import LatencyRecorder, summarize
from repro.config import ProtocolConfig
from repro.core.batching import RequestBatcher
from repro.core.client import EzBFTClient
from repro.core.replica import EzBFTReplica
from repro.protocols.registry import (
    ProtocolSpec,
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.sim.events import Simulator
from repro.sim.latency import (
    EXPERIMENT1,
    EXPERIMENT2,
    LOCAL,
    LatencyMatrix,
    uniform_matrix,
)
from repro.sim.network import CpuModel, NetworkConditions, SimNetwork
from repro.statemachine.base import Command
from repro.statemachine.interference import (
    AlwaysInterfere,
    KVInterference,
    NeverInterfere,
)
from repro.statemachine.base import StateMachine
from repro.statemachine.bank import BankMachine
from repro.statemachine.counter import CounterMachine
from repro.statemachine.kvstore import KVStore
from repro.workload.drivers import (
    BatchingOpenLoopDriver,
    ClosedLoopDriver,
    OpenLoopDriver,
)
from repro.workload.generator import KVWorkload
from repro.netem import LinkModel, LinkRule, NetemProfile
from repro.scenario import (
    BandwidthCap,
    ClientChurn,
    CrashReplica,
    ExperimentReport,
    Heal,
    Jitter,
    LatencyShift,
    PacketLoss,
    Partition,
    Phase,
    RecoverReplica,
    Reorder,
    Scenario,
    ScenarioRunner,
    SwapByzantine,
    WorkloadSpec,
    available_presets,
    dumps_spec,
    load_spec,
    preset,
    register_preset,
    run_scenario,
    save_spec,
)
# NB: the `sweep` keyword-constructor stays in repro.sweep only --
# re-exporting it here would shadow the `repro.sweep` submodule
# attribute on `import repro`.
from repro.sweep import (
    SweepReport,
    SweepRunner,
    SweepSpec,
    run_sweep,
)

__version__ = "1.0.0"

__all__ = [
    "build_cluster",
    "Cluster",
    "PROTOCOLS",
    "ProtocolSpec",
    "register_protocol",
    "get_protocol",
    "available_protocols",
    "ProtocolConfig",
    "RequestBatcher",
    "EzBFTReplica",
    "EzBFTClient",
    "Simulator",
    "SimNetwork",
    "CpuModel",
    "NetworkConditions",
    "LatencyMatrix",
    "EXPERIMENT1",
    "EXPERIMENT2",
    "LOCAL",
    "uniform_matrix",
    "Command",
    "StateMachine",
    "KVStore",
    "CounterMachine",
    "BankMachine",
    "KVInterference",
    "AlwaysInterfere",
    "NeverInterfere",
    "KVWorkload",
    "ClosedLoopDriver",
    "OpenLoopDriver",
    "BatchingOpenLoopDriver",
    "LatencyRecorder",
    "summarize",
    # Scenario API (the canonical experiment surface)
    "Scenario",
    "WorkloadSpec",
    "Phase",
    "CrashReplica",
    "RecoverReplica",
    "Partition",
    "Heal",
    "SwapByzantine",
    "LatencyShift",
    "ClientChurn",
    "PacketLoss",
    "Jitter",
    "BandwidthCap",
    "Reorder",
    # Link-level network emulation (repro.netem)
    "LinkModel",
    "LinkRule",
    "NetemProfile",
    "ScenarioRunner",
    "run_scenario",
    "ExperimentReport",
    "preset",
    "register_preset",
    "available_presets",
    "load_spec",
    "save_spec",
    "dumps_spec",
    # Sweep engine (parameter grids over the scenario API)
    "SweepSpec",
    "SweepRunner",
    "SweepReport",
    "run_sweep",
]
