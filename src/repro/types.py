"""Shared value types used across protocol packages."""

from __future__ import annotations

from typing import NamedTuple, Tuple


class InstanceID(NamedTuple):
    """A slot in a replica's instance space: ``(owner replica id, slot)``.

    The paper writes this as ``I = <R_i, n>``.  ``owner`` is the replica
    whose instance space the slot belongs to (NOT necessarily the replica
    currently owning the space -- ownership can migrate on failure);
    ``slot`` is the 0-based position in that space.
    """

    owner: str
    slot: int

    def to_wire(self) -> list:
        return [self.owner, self.slot]

    @classmethod
    def from_wire(cls, wire) -> "InstanceID":
        return cls(owner=wire[0], slot=int(wire[1]))

    def __str__(self) -> str:
        return f"{self.owner}.{self.slot}"


def deps_to_wire(deps) -> list:
    """Canonical wire form of a dependency set: sorted list of pairs."""
    return [list(d) for d in sorted(deps)]


def deps_from_wire(wire) -> Tuple[InstanceID, ...]:
    """Inverse of :func:`deps_to_wire`; returns a sorted tuple."""
    return tuple(sorted(InstanceID.from_wire(d) for d in wire))
