"""ScenarioRunner: compile a declarative :class:`Scenario` onto a
backend and execute it.

Both backends go through the protocol registry, so every registered
protocol -- builtin or plugin -- runs under every scenario:

- ``"sim"`` builds a :func:`repro.cluster.build_cluster` deployment on
  the deterministic WAN simulator.  Fault events and phase boundaries
  are simulator events, so the whole run (including the fault schedule)
  is reproducible from ``scenario.seed``.
- ``"tcp"`` builds an :class:`repro.transport.AsyncioCluster` on real
  localhost sockets (OS-assigned ports).  The scenario clock is
  wall-clock milliseconds; latency matrices and CPU models do not apply,
  but workloads, phases, and the (TCP-supported) fault schedule do.

The runner returns an :class:`~repro.scenario.report.ExperimentReport`;
:meth:`ScenarioRunner.run_with_cluster` additionally exposes the live
simulated cluster for benchmarks that introspect replica internals.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.metrics import LatencyRecorder
from repro.errors import ConfigurationError, ScenarioTimeoutError
from repro.scenario.faults import SimFaultInjector, TcpFaultInjector
from repro.scenario.report import ExperimentReport, PhaseReport
from repro.scenario.spec import Scenario, WorkloadSpec
from repro.trace import (
    ActiveTracer,
    TraceCollector,
    export_spans,
    summarize_traces,
)
from repro.workload.drivers import (
    BatchingOpenLoopDriver,
    ClosedLoopDriver,
    OpenLoopDriver,
)
from repro.workload.generator import KVWorkload

#: Safety cap on simulated events per run.
MAX_EVENTS = 40_000_000


def _workload_seed(scenario_seed: int, client_index: int) -> int:
    """Per-client workload seed derived from the scenario seed."""
    return scenario_seed * 1000 + client_index + 1


def build_tcp_cluster(scenario: Scenario,
                      start_replicas: Optional[Tuple[str, ...]] = None
                      ) -> "Any":
    """An :class:`~repro.transport.asyncio_tcp.AsyncioCluster` wired
    from a scenario: protocol, timeouts, netem profile, host map, and
    region labels.  Shared by the runner and ``python -m repro serve``
    so every process of a multi-machine deployment derives the same
    configuration from the same spec file."""
    from repro.transport.asyncio_tcp import AsyncioCluster

    workload = scenario.workload
    regions = {f"r{i}": region
               for i, region in enumerate(scenario.replica_regions)}
    cluster = AsyncioCluster(
        protocol=scenario.protocol,
        num_replicas=len(scenario.replica_regions),
        statemachine_factory=scenario.statemachine,
        host_map=dict(scenario.hosts) if scenario.hosts else None,
        start_replicas=start_replicas,
        regions=regions,
        netem=scenario.netem_profile(),
        netem_seed=scenario.seed,
        slow_path_timeout=scenario.slow_path_timeout,
        retry_timeout=scenario.retry_timeout,
        suspicion_timeout=scenario.suspicion_timeout,
        view_change_timeout=scenario.view_change_timeout,
        checkpoint_interval=scenario.checkpoint_interval,
        batch_size=workload.batch_size,
        batch_timeout_ms=workload.batch_timeout_ms,
    )
    if scenario.hosts:
        # Multi-process deployment: every process must be able to
        # verify every client's signatures, including clients created
        # in *another* process.  The schedule fixes the client count,
        # and key derivation is deterministic per (id, seed), so
        # pre-registering here yields the same registry everywhere.
        n_clients = (len(scenario.client_regions()) *
                     workload.clients_per_region +
                     len(_churn_placements(scenario)))
        for i in range(n_clients):
            cluster.registry.create(f"c{i}", seed=b"tcp-demo")
    return cluster


def _churn_placements(scenario: Scenario) -> List[str]:
    """Region placement for every client a ClientChurn event will
    add, in the order the events fire (at_ms, then declaration order)
    -- must mirror :meth:`_ClientPool.spawn` exactly, since the TCP
    backend pre-creates these clients and hands them out in order."""
    from repro.scenario.faults import ClientChurn

    placements: List[str] = []
    churn = sorted((e for e in scenario.faults
                    if isinstance(e, ClientChurn) and e.add),
                   key=lambda e: e.at_ms)
    for event in churn:
        regions = [event.region] if event.region is not None \
            else list(scenario.client_regions())
        for i in range(event.add):
            placements.append(regions[i % len(regions)])
    return placements


class _ClientPool:
    """Creates clients + drivers for a workload spec; shared by the
    initial placement and mid-run :class:`ClientChurn` events."""

    def __init__(self, scenario: Scenario, add_client, recorder=None,
                 elapsed_ms=None):
        self.scenario = scenario
        self.workload = scenario.workload
        self._add_client = add_client
        self.recorder = recorder
        #: Scenario-clock reader; open-loop drivers spawned mid-run by
        #: ClientChurn only get the *remaining* horizon, so churned
        #: load never overruns the declared phases.
        self._elapsed_ms = elapsed_ms or (lambda: 0.0)
        self.drivers: List[Any] = []
        self._stopped: set = set()
        self._counter = 0

    def spawn(self, count: int, region: Optional[str] = None) -> None:
        regions = [region] if region is not None \
            else list(self.scenario.client_regions())
        for i in range(count):
            self._spawn_one(regions[i % len(regions)])

    def spawn_initial(self) -> None:
        for region in self.scenario.client_regions():
            for _ in range(self.workload.clients_per_region):
                self._spawn_one(region)

    def stop(self, count: int) -> None:
        """Stop the ``count`` most recently started still-active
        drivers (repeated churn events wind down successive clients)."""
        for driver in reversed(self.drivers):
            if count <= 0:
                break
            if id(driver) in self._stopped:
                continue
            self._stopped.add(id(driver))
            driver.stop()
            count -= 1

    def _spawn_one(self, region: str) -> None:
        index = self._counter
        self._counter += 1
        client_id = f"c{index}"
        client = self._add_client(client_id, region)
        workload = KVWorkload(
            client_id,
            contention=self.workload.contention,
            value_size=self.workload.value_size,
            seed=_workload_seed(self.scenario.seed, index))
        driver = self._make_driver(client, workload)
        self.drivers.append(driver)
        driver.start()

    def _make_driver(self, client, workload: KVWorkload):
        spec = self.workload
        if spec.mode == "closed":
            return ClosedLoopDriver(
                client, workload,
                num_requests=spec.requests_per_client,
                think_time_ms=spec.think_time_ms)
        duration = max(0.0, self.scenario.nominal_duration_ms() -
                       self._elapsed_ms())
        if spec.batch_size > 1:
            return BatchingOpenLoopDriver(
                client, workload,
                rate_per_sec=spec.rate_per_client,
                duration_ms=duration,
                batch_size=spec.batch_size,
                batch_timeout_ms=spec.batch_timeout_ms,
                max_outstanding=spec.max_outstanding)
        return OpenLoopDriver(
            client, workload,
            rate_per_sec=spec.rate_per_client,
            duration_ms=duration,
            max_outstanding=spec.max_outstanding)

    @property
    def all_done(self) -> bool:
        return all(getattr(d, "done", True) for d in self.drivers)


class ScenarioRunner:
    """Executes scenarios; one runner can execute many.

    ``tcp_timeout_s`` bounds a TCP closed-loop run (sockets are not a
    deterministic simulator; a wedged run must not hang the CLI).  A
    run that exceeds it raises
    :class:`~repro.errors.ScenarioTimeoutError` *after* tearing the
    deployment down -- drivers stopped, scheduled events cancelled,
    sockets closed -- so no loop tasks outlive the failure.
    """

    def __init__(self, backend: str = "sim",
                 max_events: int = MAX_EVENTS,
                 tcp_timeout_s: float = 60.0,
                 instruments: Any = None,
                 scrape: bool = True,
                 scrape_config: Any = None,
                 process_manager: Any = None,
                 data_dir: Optional[str] = None,
                 trace: bool = False,
                 trace_sample_rate: float = 1.0) -> None:
        if backend not in ("sim", "tcp"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose 'sim' or 'tcp'")
        self.backend = backend
        self.max_events = max_events
        self.tcp_timeout_s = tcp_timeout_s
        #: Optional :class:`repro.obs.Instruments` fed request
        #: latencies on the TCP backend (``repro serve`` deployments).
        self.instruments = instruments
        #: Scrape remote replicas' ``/metrics.json`` endpoints (when
        #: the scenario declares ``obs``) to merge their stats into
        #: the report.
        self.scrape = scrape
        #: Optional :class:`repro.obs.ScrapeConfig`: sample those same
        #: endpoints *periodically* during the run (TCP backend only).
        #: The time series lands in :attr:`last_scrape_samples`; the
        #: sweep runner folds it into its report per cell.
        self.scrape_config = scrape_config
        self.last_scrape_samples: Optional[List[Dict[str, Any]]] = None
        #: Optional :class:`~repro.scenario.processes.ServeProcessManager`
        #: hosting remote replicas as child ``repro serve`` processes;
        #: required to route :class:`KillProcess` / ``RestartProcess``
        #: faults on the TCP backend.
        self.process_manager = process_manager
        #: Root data directory for ``durable=true`` scenarios (per-
        #: replica stores live under ``<data_dir>/<replica_id>``);
        #: defaults to ``.repro-data/<scenario.name>``.
        self.data_dir = data_dir
        #: Causal request tracing (see :mod:`repro.trace`).  When on,
        #: one :class:`~repro.trace.ActiveTracer` spans the whole
        #: deployment -- sim runs clock it from the simulator so
        #: seeded traces are byte-identical; TCP runs clock it from
        #: :func:`repro.trace.live.wall_clock_ms`.  The report grows a
        #: ``trace`` critical-path summary and the full export lands
        #: in :attr:`last_trace`.
        self.trace = trace
        self.trace_sample_rate = trace_sample_rate
        #: Schema-stable span export of the most recent traced run
        #: (``python -m repro run --trace`` writes it to disk), plus
        #: the raw spans for the Chrome trace-event form.
        self.last_trace: Optional[Dict[str, Any]] = None
        self.last_trace_spans: List[Any] = []

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario) -> ExperimentReport:
        """Execute ``scenario`` and return its report."""
        if self.backend == "tcp":
            return asyncio.run(self._run_tcp(scenario))
        report, _ = self._run_sim(scenario)
        return report

    def run_with_cluster(self, scenario: Scenario
                         ) -> Tuple[ExperimentReport, Cluster]:
        """Sim-backend run that also returns the live cluster, for
        callers (benchmarks, tests) that inspect replica internals."""
        if self.backend != "sim":
            raise ConfigurationError(
                "run_with_cluster is only meaningful on the sim "
                "backend")
        return self._run_sim(scenario)

    # ------------------------------------------------------------------
    # Tracing plumbing (backend-agnostic)
    # ------------------------------------------------------------------
    def _make_tracer(self, clock):
        """One deployment-wide tracer + collector, or ``(None, None)``
        when tracing is off (every attach below is then skipped and
        the protocol keeps its no-op ``NULL_TRACER`` seams)."""
        if not self.trace:
            return None, None
        collector = TraceCollector()
        tracer = ActiveTracer(clock, collector=collector,
                              sample_rate=self.trace_sample_rate)
        return tracer, collector

    @staticmethod
    def _attach_replica_tracers(tracer, replicas) -> None:
        """Protocols without trace instrumentation (no
        ``attach_tracer``) still run -- they just contribute no
        server-side spans."""
        for replica in replicas:
            attach = getattr(replica, "attach_tracer", None)
            if attach is not None:
                attach(tracer)

    def _finish_trace(self, collector) -> Optional[Dict[str, Any]]:
        """Fold the collected spans into exports: the full span list
        on :attr:`last_trace` / :attr:`last_trace_spans`, the
        critical-path summary as the return value (for the report)."""
        if collector is None:
            return None
        spans = collector.spans()
        self.last_trace_spans = spans
        self.last_trace = export_spans(spans,
                                       dropped=collector.dropped)
        return summarize_traces(spans)

    # ------------------------------------------------------------------
    # Simulator backend
    # ------------------------------------------------------------------
    def _run_sim(self, scenario: Scenario
                 ) -> Tuple[ExperimentReport, Cluster]:
        scenario.validate()
        # repro: allow[wall-clock] -- wall_seconds is reporting-
        # only, excluded from the determinism gates by design.
        wall_start = time.perf_counter()
        workload = scenario.workload
        cluster = build_cluster(
            scenario.protocol,
            list(scenario.replica_regions),
            scenario.latency_matrix(),
            cpu=scenario.cpu,
            conditions=scenario.conditions,
            seed=scenario.seed,
            primary_region=scenario.primary_region,
            primary_index=scenario.primary_index,
            interference=scenario.interference,
            netem=scenario.netem_profile(),
            statemachine_factory=scenario.statemachine,
            slow_path_timeout=scenario.slow_path_timeout,
            retry_timeout=scenario.retry_timeout,
            suspicion_timeout=scenario.suspicion_timeout,
            view_change_timeout=scenario.view_change_timeout,
            checkpoint_interval=scenario.checkpoint_interval,
            batch_size=workload.batch_size,
            batch_timeout_ms=workload.batch_timeout_ms,
        )
        recorder = cluster.recorder
        recorder.discard_first = \
            workload.warmup_requests * workload.clients_per_region

        tracer, collector = self._make_tracer(lambda: cluster.sim.now)
        add_client = cluster.add_client
        if tracer is not None:
            cluster.network.tracer = tracer
            self._attach_replica_tracers(tracer,
                                         cluster.replicas.values())

            def add_client(client_id, region, _add=cluster.add_client):
                # Covers churn-spawned clients too: every client the
                # pool ever creates joins the same tracer.
                client = _add(client_id, region)
                client.tracer = tracer
                return client

        pool = _ClientPool(scenario, add_client, recorder,
                           elapsed_ms=lambda: cluster.sim.now)
        injector = SimFaultInjector(
            cluster,
            spawn_clients=pool.spawn,
            stop_clients=pool.stop,
            statemachine_factory=scenario.statemachine,
            netem_seed=scenario.seed)

        # Phase boundaries and fault events are simulator events: they
        # fire at exact virtual times, deterministically ordered.
        start = 0.0
        for i, phase in enumerate(scenario.phase_plan()):
            if i == 0:
                recorder.begin_phase(phase.name, 0.0)
            else:
                cluster.sim.schedule_at(start, recorder.begin_phase,
                                        phase.name, start)
            start += phase.duration_ms
        for event in scenario.faults:
            cluster.sim.schedule_at(event.at_ms, injector.apply, event)

        pool.spawn_initial()
        cluster.run_until_idle(max_events=self.max_events)

        report = self._build_report(
            scenario, backend="sim", recorder=recorder,
            duration_ms=cluster.sim.now,
            replica_stats=cluster.replica_stats(),
            footprint=cluster.log_footprint(),
            client_stats=[c.stats for c in cluster.clients.values()],
            network={
                "messages_sent": cluster.network.messages_sent,
                "messages_delivered": cluster.network.messages_delivered,
                "bytes_sent": cluster.network.bytes_sent,
                "events_processed": cluster.sim.events_processed,
                **(cluster.network.shaper.stats
                   if cluster.network.shaper is not None else {}),
            },
            fault_log=injector.log,
            # repro: allow[wall-clock] -- reporting-only stopwatch.
            wall_seconds=time.perf_counter() - wall_start,
            trace=self._finish_trace(collector))
        return report, cluster

    # ------------------------------------------------------------------
    async def _scrape_loop(self, endpoints, origin_ms: float,
                           samples: List[Dict[str, Any]]) -> None:
        """Periodic ``/metrics.json`` sampler (TCP backend): one
        sample dict per tick until cancelled.  A dead endpoint shows
        up as ``None`` in that tick's ``replicas`` map -- the time
        series records the outage instead of papering over it."""
        import asyncio as _asyncio

        from repro.obs.scrape import sample_metrics

        loop = _asyncio.get_running_loop()
        config = self.scrape_config
        while True:
            await _asyncio.sleep(config.interval_s)
            stats = await sample_metrics(endpoints,
                                         timeout=config.timeout_s)
            samples.append({
                "t_ms": round(loop.time() * 1000.0 - origin_ms, 3),
                "replicas": stats,
            })

    # ------------------------------------------------------------------
    # Asyncio TCP backend
    # ------------------------------------------------------------------
    async def _run_tcp(self, scenario: Scenario) -> ExperimentReport:
        scenario.validate()
        cluster = build_tcp_cluster(scenario)
        # Remote replicas with a declared obs endpoint are reachable
        # for fault delivery over the serving process's /control.
        obs_map = scenario.obs or {}
        from repro.transport.asyncio_tcp import parse_hostport
        control_endpoints = {
            rid: parse_hostport(obs_map[rid])
            for rid in cluster.remote_replica_ids
            if rid in obs_map}
        managed: Tuple[str, ...] = ()
        if self.process_manager is not None:
            managed = tuple(self.process_manager.replicas)
        TcpFaultInjector.check_supported(
            scenario.faults,
            remote_replicas=cluster.remote_replica_ids,
            controllable=tuple(control_endpoints),
            managed=managed)
        # repro: allow[wall-clock] -- wall_seconds is reporting-
        # only, excluded from the determinism gates by design.
        wall_start = time.perf_counter()
        workload = scenario.workload
        loop = asyncio.get_running_loop()
        origin_ms = loop.time() * 1000.0
        recorder = LatencyRecorder(
            discard_first=(workload.warmup_requests *
                           workload.clients_per_region))
        pool: Optional[_ClientPool] = None
        injector: Optional[TcpFaultInjector] = None
        instruments = self.instruments
        from repro.trace.live import wall_clock_ms
        tracer, collector = self._make_tracer(wall_clock_ms)
        #: call_later handles for scheduled faults/phase boundaries, so
        #: a timed-out run cancels what has not fired yet.
        handles: List[Any] = []
        scrape_samples: List[Dict[str, Any]] = []
        self.last_scrape_samples = None
        sampler: Optional[Any] = None
        if self.scrape_config is not None and control_endpoints:
            sampler = loop.create_task(self._scrape_loop(
                control_endpoints, origin_ms, scrape_samples))

        clients: List[Any] = []

        def add_client_sync(client_id: str, region: str):
            # _ClientPool is synchronous; clients were pre-created in
            # placement order below, so hand them out in order.
            client = clients.pop(0)

            def record(command, result, latency, path,
                       _region=region):
                recorder.record(_region, latency, path,
                                loop.time() * 1000.0 - origin_ms)
                if instruments is not None and instruments.enabled:
                    instruments.request_latency(latency)

            client.on_delivery = record
            return client

        # Pre-create protocol clients (socket setup is async).  Nearest
        # replica has no meaning on localhost; clients round-robin their
        # target replica across the membership so leaderless protocols
        # spread command-leadership like the geo deployment does.
        # ClientChurn clients are pre-created too (idle until their
        # event fires): the schedule fixes their count up front, and a
        # synchronous fault callback cannot open sockets.
        storages: List[Any] = []
        try:
            # Inside the try: a bind failure partway through startup
            # must still stop the nodes that did come up.
            await cluster.start()
            if tracer is not None:
                # One tracer spans the in-process deployment (both
                # backends dispatch handlers single-threaded); its
                # context rides TRACED frames between nodes.
                for node in cluster.nodes.values():
                    node.tracer = tracer
                self._attach_replica_tracers(
                    tracer, cluster.replicas.values())
            if scenario.durable:
                # Back every locally hosted replica with an on-disk
                # store and recover whatever a previous run left there
                # before any load arrives.
                import os
                from repro.storage import ReplicaStorage
                root = self.data_dir or os.path.join(
                    ".repro-data", scenario.name)
                for rid, replica in cluster.replicas.items():
                    if not hasattr(replica, "attach_storage"):
                        continue
                    storage = ReplicaStorage(root, rid)
                    storages.append(storage)
                    replica.attach_storage(storage)
                    replica.recover_from_storage()
            placements = [region
                          for region in scenario.client_regions()
                          for _ in range(workload.clients_per_region)]
            placements += _churn_placements(scenario)
            for index, region in enumerate(placements):
                target = cluster.replica_ids[
                    index % len(cluster.replica_ids)]
                if not cluster.spec.leaderless:
                    target = None
                client = await cluster.add_client(f"c{index}",
                                                  target_replica=target,
                                                  region=region)
                if tracer is not None:
                    # The client's transport node was created after
                    # the replica attach pass -- without the tracer
                    # its sends would never carry TRACED frames.
                    client.tracer = tracer
                    cluster.nodes[f"c{index}"].tracer = tracer
                clients.append(client)

            pool = _ClientPool(
                scenario, add_client_sync, recorder,
                elapsed_ms=lambda: loop.time() * 1000.0 - origin_ms)
            injector = TcpFaultInjector(
                cluster,
                spawn_clients=pool.spawn,
                stop_clients=pool.stop,
                netem_seed=scenario.seed,
                control_endpoints=control_endpoints,
                process_manager=self.process_manager)
            injector.install_filters()

            if cluster.remote_replica_ids:
                # Multi-process deployment: teach every remote replica
                # the local listen addresses before any load, then give
                # the hellos a moment to land.
                cluster.announce_remote()
                await asyncio.sleep(0.2)

            for event in scenario.faults:
                handles.append(
                    loop.call_later(event.at_ms / 1000.0,
                                    injector.apply, event))

            start = 0.0
            for i, phase in enumerate(scenario.phase_plan()):
                if i == 0:
                    recorder.begin_phase(phase.name, 0.0)
                else:
                    handles.append(
                        loop.call_later(start / 1000.0,
                                        recorder.begin_phase,
                                        phase.name, start))
                start += phase.duration_ms

            pool.spawn_initial()

            horizon = scenario.nominal_duration_ms()
            last_fault = max((e.at_ms for e in scenario.faults),
                             default=0.0)
            if workload.mode == "open":
                drain_s = max(horizon, last_fault) / 1000.0 + 0.3
                await asyncio.sleep(drain_s)
            else:
                # Done means: every scheduled fault fired (churn may
                # add drivers late) and every driver finished.
                deadline = loop.time() + self.tcp_timeout_s
                while loop.time() < deadline:
                    if len(injector.log) == len(scenario.faults) and \
                            pool.all_done:
                        break
                    await asyncio.sleep(0.01)
                else:
                    raise ScenarioTimeoutError(
                        f"tcp scenario {scenario.name!r} did not finish "
                        f"within {self.tcp_timeout_s}s")
                # Let in-flight post-commit traffic land before
                # tearing down.
                await asyncio.sleep(0.1)

            if control_endpoints:
                # Forwarded /control deliveries must land before the
                # report is assembled (their errors surface here, not
                # in a stranded task).
                await injector.drain_control()

            duration_ms = loop.time() * 1000.0 - origin_ms
            replica_stats = {rid: dict(r.stats)
                             for rid, r in cluster.replicas.items()}
            scrape_errors: List[str] = []
            if self.scrape and control_endpoints:
                # Pull remote replicas' stats off their /metrics.json
                # endpoints so the report covers the whole deployment,
                # not just the locally hosted slice.
                from repro.obs.scrape import scrape_replica_stats
                remote_stats = await scrape_replica_stats(
                    control_endpoints, errors=scrape_errors)
                for rid, stats in remote_stats.items():
                    if stats is not None:
                        replica_stats[rid] = stats
            from repro.cluster.metrics import replica_footprint
            footprint = {rid: replica_footprint(r)
                         for rid, r in cluster.replicas.items()}
            client_stats = [c.stats for c in cluster.clients.values()]
            network = {
                "frames_sent": sum(n.frames_sent
                                   for n in cluster.nodes.values()),
                "frames_received": sum(n.frames_received
                                       for n in cluster.nodes.values()),
                **(cluster.shaper.stats
                   if cluster.shaper is not None else {}),
            }
            if control_endpoints:
                network["control_errors"] = \
                    len(injector.control_errors)
                if scrape_errors:
                    # Endpoint-named failure strings, not a bare
                    # counter: "which node went dark" reads straight
                    # off the report.
                    network["scrape_errors"] = list(scrape_errors)
        finally:
            # Timeout (or any failure) must not strand a half-run
            # deployment: stop issuing load, cancel what has not fired,
            # close every socket, and let cancelled send tasks and
            # EOF'd connection readers unwind inside this loop.
            if sampler is not None:
                sampler.cancel()
                try:
                    await sampler
                except asyncio.CancelledError:
                    pass
                self.last_scrape_samples = scrape_samples
            for handle in handles:
                handle.cancel()
            if pool is not None:
                for driver in pool.drivers:
                    driver.stop()
            await cluster.stop()
            for storage in storages:
                storage.close()
            await asyncio.sleep(0)

        return self._build_report(
            scenario, backend="tcp", recorder=recorder,
            duration_ms=duration_ms,
            replica_stats=replica_stats, footprint=footprint,
            client_stats=client_stats, network=network,
            fault_log=[{**entry,
                        "applied_ms": entry["applied_ms"] - origin_ms}
                       for entry in injector.log],
            # repro: allow[wall-clock] -- reporting-only stopwatch.
            wall_seconds=time.perf_counter() - wall_start,
            trace=self._finish_trace(collector))

    # ------------------------------------------------------------------
    # Report assembly (backend-agnostic)
    # ------------------------------------------------------------------
    def _build_report(self, scenario: Scenario, *, backend: str,
                      recorder: LatencyRecorder, duration_ms: float,
                      replica_stats: Dict[str, Dict[str, int]],
                      footprint: Dict[str, Dict[str, int]],
                      client_stats: List[Dict[str, int]],
                      network: Dict[str, int],
                      fault_log: List[Dict[str, Any]],
                      wall_seconds: float,
                      trace: Optional[Dict[str, Any]] = None
                      ) -> ExperimentReport:
        phases: List[PhaseReport] = []
        start = 0.0
        for phase in scenario.phase_plan():
            nominal_end = start + phase.duration_ms
            bounded = nominal_end != float("inf")
            end = nominal_end if bounded else duration_ms
            delivered = recorder.delivered(phase=phase.name)
            window = end - start
            if bounded and window > 0:
                throughput = delivered * 1000.0 / window
            else:
                # Implicit request-bounded phase: rate over the
                # observed delivery window, not the (longer) time the
                # simulator took to drain trailing timers.
                throughput = recorder.throughput_per_sec(
                    phase=phase.name)
            phases.append(PhaseReport(
                name=phase.name,
                start_ms=start,
                end_ms=end,
                delivered=delivered,
                throughput_per_sec=throughput,
                latency=recorder.overall(phase=phase.name),
                fast_path_ratio=recorder.fast_path_fraction(
                    phase=phase.name),
                per_region={group: recorder.summary(group,
                                                    phase=phase.name)
                            for group in recorder.groups()},
            ))
            start = end

        def stat_sum(key: str) -> int:
            return sum(stats.get(key, 0)
                       for stats in replica_stats.values())

        aggregate: Dict[str, int] = {}
        for stats in client_stats:
            for key, value in stats.items():
                aggregate[key] = aggregate.get(key, 0) + value

        return ExperimentReport(
            scenario=scenario.name,
            protocol=scenario.protocol,
            backend=backend,
            seed=scenario.seed,
            replica_regions=list(scenario.replica_regions),
            duration_ms=duration_ms,
            phases=phases,
            delivered=recorder.total_delivered,
            throughput_per_sec=recorder.throughput_per_sec(),
            latency=recorder.overall(),
            fast_path_ratio=recorder.fast_path_fraction(),
            warmup_discarded=recorder.warmup_discarded,
            owner_changes=stat_sum("owner_changes_started"),
            view_changes=stat_sum("view_changes"),
            checkpoints_stable=stat_sum("checkpoints_stable"),
            log_footprint_total=sum(sizes.get("total", 0)
                                    for sizes in footprint.values()),
            client_stats=aggregate,
            network=network,
            fault_log=fault_log,
            wall_seconds=wall_seconds,
            trace=trace,
        )


def run_scenario(scenario: Scenario,
                 backend: str = "sim") -> ExperimentReport:
    """One-call convenience: ``run_scenario(preset("smoke"))``."""
    return ScenarioRunner(backend=backend).run(scenario)
