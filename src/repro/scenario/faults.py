"""Typed fault-schedule events and their per-backend injectors.

A scenario's fault schedule is a timeline of frozen dataclass events;
each names a point on the scenario clock (``at_ms``) and a disruption:

- :class:`CrashReplica` / :class:`RecoverReplica` -- fail-stop a replica
  (drop everything it receives and, on the simulator, everything it
  sends) and bring it back.
- :class:`Partition` / :class:`Heal` -- cut the network between two node
  sets; heal restores full connectivity (crashed replicas stay crashed).
- :class:`SwapByzantine` -- replace a replica with a named byzantine
  behaviour from :data:`repro.byzantine.BEHAVIORS` (ezBFT-shaped
  protocols only).
- :class:`LatencyShift` -- scale the WAN latency by a factor (relative
  to the scenario's base, so shifts do not compound).  On the
  simulator it scales the latency matrix; on TCP it scales the live
  netem profile's link delays through the shaper.
- :class:`ClientChurn` -- add load mid-run (new clients with the
  scenario's workload) and/or stop the most recently added clients.
- :class:`PacketLoss` / :class:`Jitter` / :class:`BandwidthCap` /
  :class:`Reorder` -- chaos events that retarget the live
  :class:`~repro.netem.LinkShaper` on matching ``(src, dst)`` link
  tokens (node ids, regions, or ``"*"``), on either backend.  A
  scenario with no declared netem profile gets a shaper materialized
  lazily when the first such event fires.

The injectors apply events to a live deployment and keep a structured
``log`` of what fired when, which the final
:class:`~repro.scenario.report.ExperimentReport` carries so tests can
assert the schedule executed at the right times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "FaultEvent",
    "CrashReplica",
    "RecoverReplica",
    "KillProcess",
    "RestartProcess",
    "Partition",
    "Heal",
    "SwapByzantine",
    "LatencyShift",
    "ClientChurn",
    "PacketLoss",
    "Jitter",
    "BandwidthCap",
    "Reorder",
    "SimFaultInjector",
    "TcpFaultInjector",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base: one disruption at ``at_ms`` on the scenario clock."""

    at_ms: float

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        if self.at_ms < 0:
            raise ConfigurationError(
                f"{type(self).__name__}.at_ms must be >= 0, "
                f"got {self.at_ms}")

    def _check_replica(self, replica: str,
                       replica_ids: Tuple[str, ...]) -> None:
        if replica not in replica_ids:
            raise ConfigurationError(
                f"{type(self).__name__} names unknown replica "
                f"{replica!r} (have {replica_ids})")

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class CrashReplica(FaultEvent):
    """Fail-stop ``replica``: it processes and emits nothing."""

    replica: str = ""

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._check_replica(self.replica, replica_ids)

    def describe(self) -> str:
        return f"crash {self.replica}"


@dataclass(frozen=True)
class RecoverReplica(FaultEvent):
    """Undo a :class:`CrashReplica` for ``replica``."""

    replica: str = ""

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._check_replica(self.replica, replica_ids)

    def describe(self) -> str:
        return f"recover {self.replica}"


@dataclass(frozen=True)
class KillProcess(FaultEvent):
    """SIGKILL the serve process hosting ``replica`` mid-run.

    Unlike :class:`CrashReplica` (an in-memory fiction: the handler is
    swapped out but the process lives on), this is the real fail-stop:
    no drain, no flush -- the replica keeps exactly what its
    ``--data-dir`` retains.  TCP backend only, and only for replicas
    hosted by a runner-managed serve process
    (:class:`~repro.scenario.processes.ServeProcessManager`).
    """

    replica: str = ""

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._check_replica(self.replica, replica_ids)

    def describe(self) -> str:
        return f"kill -9 {self.replica}"


@dataclass(frozen=True)
class RestartProcess(FaultEvent):
    """Respawn the killed serve process for ``replica`` from its data
    dir (recovery = snapshot + WAL replay + state transfer for the
    rest) and re-announce this process's dynamic addresses to it."""

    replica: str = ""

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._check_replica(self.replica, replica_ids)

    def describe(self) -> str:
        return f"restart {self.replica}"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Cut every link between ``sides[0]`` and ``sides[1]`` (node ids;
    clients may be named too).  Links within a side stay up."""

    sides: Tuple[Tuple[str, ...], Tuple[str, ...]] = ((), ())

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        left, right = self.sides
        if not left or not right:
            raise ConfigurationError(
                "Partition sides must both be non-empty")
        if set(left) & set(right):
            raise ConfigurationError(
                f"Partition sides overlap: {set(left) & set(right)}")

    def describe(self) -> str:
        return f"partition {self.sides[0]} | {self.sides[1]}"


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Remove every partition (crashed replicas remain crashed)."""

    def describe(self) -> str:
        return "heal"


@dataclass(frozen=True)
class SwapByzantine(FaultEvent):
    """Replace ``replica`` with the named byzantine ``behavior``."""

    replica: str = ""
    behavior: str = "silent"

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._check_replica(self.replica, replica_ids)
        from repro.byzantine import behavior_by_name
        behavior_by_name(self.behavior)  # raises on unknown names

    def describe(self) -> str:
        return f"swap {self.replica} -> {self.behavior}"


@dataclass(frozen=True)
class LatencyShift(FaultEvent):
    """Scale the WAN matrix by ``factor`` (1.0 restores the base)."""

    factor: float = 1.0

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        if self.factor <= 0:
            raise ConfigurationError(
                f"LatencyShift.factor must be positive, "
                f"got {self.factor}")

    def describe(self) -> str:
        return f"latency x{self.factor:g}"


@dataclass(frozen=True)
class ClientChurn(FaultEvent):
    """Add ``add`` fresh clients in ``region`` and/or stop the ``stop``
    most recently started clients."""

    add: int = 0
    stop: int = 0
    region: Optional[str] = None

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        if self.add < 0 or self.stop < 0:
            raise ConfigurationError(
                "ClientChurn.add/stop must be >= 0")
        if self.add == 0 and self.stop == 0:
            raise ConfigurationError(
                "ClientChurn must add or stop at least one client")

    def describe(self) -> str:
        parts = []
        if self.add:
            where = f" in {self.region}" if self.region else ""
            parts.append(f"+{self.add} clients{where}")
        if self.stop:
            parts.append(f"-{self.stop} clients")
        return ", ".join(parts)


@dataclass(frozen=True)
class _NetemEvent(FaultEvent):
    """Base for chaos events that patch the live link shaper on every
    directed pair matching ``(src, dst)`` tokens (node id, region, or
    ``"*"``)."""

    src: str = "*"
    dst: str = "*"

    def _probability(self, name: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(
                f"{type(self).__name__}.{name} must be in [0, 1], "
                f"got {value}")

    def patch_fields(self) -> Dict[str, Any]:
        """The LinkModel field overrides this event applies."""
        raise NotImplementedError

    def describe(self) -> str:
        link = f"{self.src}->{self.dst}"
        fields = ", ".join(f"{k}={v:g}"
                           for k, v in self.patch_fields().items())
        return f"{type(self).__name__.lower()} [{link}] {fields}"


@dataclass(frozen=True)
class PacketLoss(_NetemEvent):
    """Set the per-frame drop probability on matching links."""

    probability: float = 0.0

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._probability("probability", self.probability)

    def patch_fields(self) -> Dict[str, Any]:
        return {"loss": self.probability}


@dataclass(frozen=True)
class Jitter(_NetemEvent):
    """Set uniform delay jitter (±``jitter_ms``) on matching links."""

    jitter_ms: float = 0.0

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        if self.jitter_ms < 0:
            raise ConfigurationError(
                f"Jitter.jitter_ms must be >= 0, got {self.jitter_ms}")

    def patch_fields(self) -> Dict[str, Any]:
        return {"jitter_ms": self.jitter_ms}


@dataclass(frozen=True)
class BandwidthCap(_NetemEvent):
    """Cap matching links at ``rate_kbps`` (token bucket with
    ``burst_bytes`` of credit); 0 removes the cap."""

    rate_kbps: float = 0.0
    burst_bytes: int = 16_384

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        if self.rate_kbps < 0:
            raise ConfigurationError(
                f"BandwidthCap.rate_kbps must be >= 0, "
                f"got {self.rate_kbps}")
        if self.burst_bytes <= 0:
            raise ConfigurationError(
                f"BandwidthCap.burst_bytes must be positive, "
                f"got {self.burst_bytes}")

    def patch_fields(self) -> Dict[str, Any]:
        return {"rate_kbps": self.rate_kbps,
                "burst_bytes": self.burst_bytes}


@dataclass(frozen=True)
class Reorder(_NetemEvent):
    """Hold back a fraction of frames by ``extra_ms`` on matching
    links so later frames overtake them."""

    probability: float = 0.0
    extra_ms: float = 1.0

    def validate(self, replica_ids: Tuple[str, ...]) -> None:
        super().validate(replica_ids)
        self._probability("probability", self.probability)
        if self.extra_ms < 0:
            raise ConfigurationError(
                f"Reorder.extra_ms must be >= 0, got {self.extra_ms}")

    def patch_fields(self) -> Dict[str, Any]:
        return {"reorder": self.probability,
                "reorder_extra_ms": self.extra_ms}


class _InjectorBase:
    """Shared bookkeeping: structured log + crash/partition state."""

    def __init__(self) -> None:
        self.log: List[Dict[str, Any]] = []
        self._crashed: Dict[str, Callable[[str, Any], None]] = {}
        #: Partition pairs added *by crash isolation* per replica, so
        #: recovery removes exactly these and never heals an explicit
        #: Partition event that happens to involve the same replica.
        self._crash_cuts: Dict[str, set] = {}

    def _record(self, event: FaultEvent, now_ms: float) -> None:
        self.log.append({
            "at_ms": event.at_ms,
            "applied_ms": now_ms,
            "event": type(event).__name__,
            "detail": event.describe(),
        })

    def is_crashed(self, replica_id: str) -> bool:
        """Whether ``replica_id`` is currently crash-stopped (health
        endpoints report this without reaching into injector state)."""
        return replica_id in self._crashed


class SimFaultInjector(_InjectorBase):
    """Applies fault events to a simulated :class:`Cluster`.

    ``spawn_clients(count, region)`` / ``stop_clients(count)`` are
    supplied by the runner so :class:`ClientChurn` can attach drivers
    with the scenario's workload.
    """

    def __init__(self, cluster: Any,
                 spawn_clients: Optional[Callable[[int, Optional[str]],
                                                  None]] = None,
                 stop_clients: Optional[Callable[[int], None]] = None,
                 statemachine_factory: Optional[Callable[[], Any]] = None,
                 netem_seed: int = 0
                 ) -> None:
        super().__init__()
        self.cluster = cluster
        self._spawn_clients = spawn_clients
        self._stop_clients = stop_clients
        self._statemachine_factory = statemachine_factory
        self._base_matrix = cluster.latency
        self._netem_seed = netem_seed

    def _ensure_shaper(self) -> Any:
        """The network's live shaper, materialized on first use for
        scenarios that declared no netem profile."""
        network = self.cluster.network
        if network.shaper is None:
            from repro.netem import LinkShaper
            network.shaper = LinkShaper(seed=self._netem_seed,
                                        region_of=network.region_of)
        return network.shaper

    def _isolate(self, rid: str) -> None:
        """Cut ``rid`` off, remembering which pairs *this* cut added so
        recovery removes only those."""
        network = self.cluster.network
        cuts = self._crash_cuts.setdefault(rid, set())
        for other in network.node_ids():
            if other == rid:
                continue
            for pair in ((rid, other), (other, rid)):
                if pair not in network.conditions.partitions:
                    network.conditions.partitions.add(pair)
                    cuts.add(pair)

    def apply(self, event: FaultEvent) -> None:
        now = self.cluster.sim.now
        network = self.cluster.network
        if isinstance(event, CrashReplica):
            rid = event.replica
            if rid not in self._crashed:
                self._crashed[rid] = network.handler_of(rid)
                network.set_handler(rid, lambda sender, message: None)
                self._isolate(rid)
        elif isinstance(event, RecoverReplica):
            rid = event.replica
            handler = self._crashed.pop(rid, None)
            if handler is not None:
                network.set_handler(rid, handler)
                for pair in self._crash_cuts.pop(rid, set()):
                    network.conditions.partitions.discard(pair)
        elif isinstance(event, Partition):
            left, right = event.sides
            for a in left:
                for b in right:
                    network.conditions.partitions.add((a, b))
                    network.conditions.partitions.add((b, a))
        elif isinstance(event, Heal):
            network.conditions.partitions.clear()
            self._crash_cuts.clear()
            for rid in self._crashed:  # crashed stay cut off
                self._isolate(rid)
        elif isinstance(event, SwapByzantine):
            from repro.byzantine import behavior_by_name, \
                install_byzantine
            factory = self._statemachine_factory
            install_byzantine(
                self.cluster, event.replica,
                behavior_by_name(event.behavior),
                statemachine=factory() if factory is not None else None)
        elif isinstance(event, LatencyShift):
            from repro.sim.latency import scaled_matrix
            matrix = self._base_matrix if event.factor == 1.0 \
                else scaled_matrix(self._base_matrix, event.factor)
            network.latency = matrix
            self.cluster.latency = matrix
            if network.shaper is not None:
                # Keep netem link delays in step with the matrix, like
                # the TCP backend does (a WAN slowdown slows the
                # emulated links too).
                network.shaper.set_delay_scale(event.factor)
        elif isinstance(event, _NetemEvent):
            self._ensure_shaper().patch(event.src, event.dst,
                                        **event.patch_fields())
        elif isinstance(event, ClientChurn):
            if event.add and self._spawn_clients is not None:
                self._spawn_clients(event.add, event.region)
            if event.stop and self._stop_clients is not None:
                self._stop_clients(event.stop)
        else:
            raise ConfigurationError(
                f"unsupported fault event {type(event).__name__}")
        self._record(event, now)


#: Events the TCP backend can apply -- since the netem shaper seam,
#: every built-in fault type, at parity with the simulator.
TCP_SUPPORTED = (CrashReplica, RecoverReplica, Partition, Heal,
                 SwapByzantine, LatencyShift, ClientChurn,
                 PacketLoss, Jitter, BandwidthCap, Reorder,
                 KillProcess, RestartProcess)


class TcpFaultInjector(_InjectorBase):
    """Applies fault events to a live :class:`AsyncioCluster`.

    Partitions are enforced receiver-side: every node's handler is
    wrapped once with a filter that drops frames whose (sender,
    receiver) pair is currently cut.  Netem events and LatencyShift
    retarget the cluster's live :class:`~repro.netem.LinkShaper`
    (materialized lazily when the scenario declared no profile);
    ClientChurn starts/stops workload drivers through the runner's
    ``spawn_clients`` / ``stop_clients`` callbacks.
    """

    def __init__(self, cluster: Any,
                 spawn_clients: Optional[Callable[[int, Optional[str]],
                                                  None]] = None,
                 stop_clients: Optional[Callable[[int], None]] = None,
                 netem_seed: int = 0,
                 control_endpoints: Optional[
                     Dict[str, Tuple[str, int]]] = None,
                 control_seed: bytes = b"tcp-demo",
                 process_manager: Optional[Any] = None) -> None:
        super().__init__()
        self.cluster = cluster
        self._spawn_clients = spawn_clients
        self._stop_clients = stop_clients
        self._netem_seed = netem_seed
        #: Runner-side serve process manager; KillProcess /
        #: RestartProcess route here instead of over /control.
        self._process_manager = process_manager
        self._partitions: set = set()
        self._wrapped = False
        #: replica id -> (host, port) of the serving process's signed
        #: ``/control`` endpoint; events targeting these replicas are
        #: forwarded over HTTP instead of applied locally, and
        #: cluster-wide events are broadcast so every process converges.
        self.control_endpoints: Dict[str, Tuple[str, int]] = \
            dict(control_endpoints or {})
        self._control_seed = control_seed
        self._control_client: Any = None
        self._control_tasks: set = set()
        #: Errors from forwarded control deliveries, surfaced by the
        #: runner after :meth:`drain_control` instead of being lost in
        #: a fire-and-forget task.
        self.control_errors: List[str] = []

    @staticmethod
    def check_supported(events: Tuple[FaultEvent, ...],
                        remote_replicas: Tuple[str, ...] = (),
                        controllable: Tuple[str, ...] = (),
                        managed: Tuple[str, ...] = ()) -> None:
        """Reject events the TCP backend cannot apply: unknown event
        classes, replica-targeted events naming a replica hosted in
        another process with no ``obs`` control endpoint declared (no
        channel can reach its handler), and process-level kill/restart
        events for replicas no runner-side process manager owns."""
        for event in events:
            if not isinstance(event, TCP_SUPPORTED):
                raise ConfigurationError(
                    f"fault event {type(event).__name__} is not "
                    f"supported on the tcp backend (supported: "
                    f"{tuple(t.__name__ for t in TCP_SUPPORTED)})")
            if isinstance(event, (KillProcess, RestartProcess)):
                if event.replica not in managed:
                    raise ConfigurationError(
                        f"fault event {type(event).__name__} targets "
                        f"replica {event.replica!r}, which no "
                        f"runner-managed serve process hosts; spawn it "
                        f"via ServeProcessManager and pass the manager "
                        f"to the runner")
                continue
            targeted = [getattr(event, "replica", None)]
            if isinstance(event, Partition):
                # Partition filters wrap each process's own nodes; the
                # remote side enforces its half when the event is
                # broadcast over /control, so every remote replica in
                # a side needs an endpoint.
                targeted = [m for side in event.sides for m in side]
            for replica in targeted:
                if replica and replica in remote_replicas and \
                        replica not in controllable:
                    raise ConfigurationError(
                        f"fault event {type(event).__name__} targets "
                        f"replica {replica!r}, which the host map "
                        f"places in another process; declare an "
                        f"obs[{replica!r}] control endpoint so the "
                        f"runner can deliver it over /control")

    def _ensure_shaper(self) -> Any:
        shaper = self.cluster.shaper
        if shaper is None:
            from repro.netem import LinkShaper
            shaper = LinkShaper(seed=self._netem_seed,
                                region_of=self.cluster.regions.get)
            self.cluster.attach_shaper(shaper)
        return shaper

    def install_filters(self) -> None:
        """Wrap every node handler with the partition filter.  Called by
        the runner after all nodes exist, before load starts."""
        if self._wrapped:
            return
        for node_id, node in self.cluster.nodes.items():
            node.handler = self._filtering(node_id, node.handler)
        self._wrapped = True

    def _filtering(self, node_id: str, handler):
        def filtered(sender: str, message: Any) -> None:
            if (sender, node_id) in self._partitions:
                return
            if handler is not None:
                handler(sender, message)
        return filtered

    def _now_ms(self) -> float:
        import asyncio
        return asyncio.get_running_loop().time() * 1000.0

    def apply(self, event: FaultEvent) -> None:
        """Route one event: replica-targeted events whose target lives
        in another process go out over that process's signed /control
        endpoint; cluster-wide events (partitions, heal, netem,
        latency) apply locally *and* broadcast to every control
        endpoint so all processes converge on the same network state.
        The event is recorded at dispatch either way -- the runner's
        closed-loop wait counts log entries, and a forwarded event has
        left this process the moment its task is scheduled."""
        target = getattr(event, "replica", None)
        if isinstance(event, (KillProcess, RestartProcess)):
            self._apply_process(event)
        elif target and target in self.control_endpoints:
            # The target replica is not in cluster.nodes here; the
            # serving process applies it through its own injector.
            self._forward(event, (target,))
        else:
            self._apply_local(event)
            if self.control_endpoints and isinstance(
                    event, (Partition, Heal, LatencyShift, _NetemEvent)):
                self._forward(event, tuple(self.control_endpoints))
        self._record(event, self._now_ms())

    def _apply_process(self, event: FaultEvent) -> None:
        """Kill -9 / restart the serve process hosting the target."""
        if self._process_manager is None:
            raise ConfigurationError(
                f"fault event {type(event).__name__} needs a serve "
                f"process manager (ScenarioRunner(process_manager=...))")
        if isinstance(event, KillProcess):
            self._process_manager.kill(event.replica)
            return
        import asyncio
        # Respawn + readiness + re-announce are async; ride the same
        # task set as /control forwards so drain_control barriers them
        # and failures surface in control_errors.
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._restart_process(event.replica))
        self._control_tasks.add(task)
        task.add_done_callback(self._control_done)

    async def _restart_process(self, replica: str) -> None:
        import asyncio
        await self._process_manager.restart(replica)
        # The respawned process lost every dynamically-learned address;
        # re-announce this process's listeners so it can dial back,
        # and give the hello frames a moment to land (same grace the
        # runner allows at startup).
        self.cluster.announce_remote()
        await asyncio.sleep(0.2)

    def _forward(self, event: FaultEvent,
                 replicas: Tuple[str, ...]) -> None:
        import asyncio
        if self._control_client is None:
            from repro.obs.control import ControlClient
            self._control_client = ControlClient(self._control_seed)
        loop = asyncio.get_running_loop()
        # One process can serve several replicas behind one endpoint;
        # send to each distinct address once (the built-in events are
        # idempotent, but a single delivery keeps logs clean).
        seen = set()
        for rid in replicas:
            host, port = self.control_endpoints[rid]
            if (host, port) in seen:
                continue
            seen.add((host, port))
            task = loop.create_task(
                self._control_client.send(host, port, event))
            self._control_tasks.add(task)
            task.add_done_callback(
                lambda t, target=f"{host}:{port}",
                name=type(event).__name__:
                self._control_done(t, target=target, what=name))

    def _control_done(self, task: Any, target: str = "",
                      what: str = "control") -> None:
        self._control_tasks.discard(task)
        suffix = f" to {target}" if target else ""
        if task.cancelled():
            self.control_errors.append(
                f"{what} delivery{suffix} cancelled")
            return
        exc = task.exception()
        if exc is not None:
            # ControlClient.send already names the endpoint in its
            # errors; str(exc) therefore stays attributable on its own
            # (restart tasks pass no target and say so in the message).
            self.control_errors.append(str(exc))

    async def drain_control(self, timeout: float = 5.0) -> None:
        """Wait for in-flight /control deliveries (teardown barrier:
        errors land in :attr:`control_errors`, not in the void)."""
        import asyncio
        pending = {t for t in self._control_tasks if not t.done()}
        if pending:
            await asyncio.wait(pending, timeout=timeout)

    def _apply_local(self, event: FaultEvent) -> None:
        cluster = self.cluster
        if isinstance(event, CrashReplica):
            rid = event.replica
            node = cluster.nodes[rid]
            if rid not in self._crashed:
                self._crashed[rid] = node.handler
                node.handler = lambda sender, message: None
        elif isinstance(event, RecoverReplica):
            rid = event.replica
            handler = self._crashed.pop(rid, None)
            if handler is not None:
                cluster.nodes[rid].handler = handler
        elif isinstance(event, Partition):
            left, right = event.sides
            for a in left:
                for b in right:
                    self._partitions.add((a, b))
                    self._partitions.add((b, a))
        elif isinstance(event, Heal):
            self._partitions.clear()
        elif isinstance(event, SwapByzantine):
            from repro.byzantine import behavior_by_name
            behavior = behavior_by_name(event.behavior)
            rid = event.replica
            node = cluster.nodes[rid]
            old = cluster.replicas[rid]
            replica = behavior(
                rid, cluster.config, node.context(), old.keypair,
                cluster.registry, cluster.statemachine_factory(),
                old.interference)
            cluster.replicas[rid] = replica
            # Re-wrap so partitions keep applying to the new replica.
            node.handler = self._filtering(rid, replica.on_message) \
                if self._wrapped else replica.on_message
        elif isinstance(event, LatencyShift):
            # No latency matrix on TCP: the shift retargets the live
            # netem profile's link delays instead (factor 1.0 restores
            # the base, exactly like the simulator's matrix reset).
            self._ensure_shaper().set_delay_scale(event.factor)
        elif isinstance(event, _NetemEvent):
            self._ensure_shaper().patch(event.src, event.dst,
                                        **event.patch_fields())
        elif isinstance(event, ClientChurn):
            if event.add and self._spawn_clients is not None:
                self._spawn_clients(event.add, event.region)
            if event.stop and self._stop_clients is not None:
                self._stop_clients(event.stop)
        else:
            raise ConfigurationError(
                f"unsupported fault event on tcp backend: "
                f"{type(event).__name__}")
