"""Runner-side management of ``repro serve`` child processes.

The kill -9 story needs a real process to kill: :class:`ServeProcess`
spawns ``python -m repro serve`` for a subset of a scenario's replicas
(pinned by its host map) with a ``--data-dir``, waits for its startup
banner, and can SIGKILL or SIGTERM it; :class:`ServeProcessManager`
maps replica ids to their hosting process so the
:class:`~repro.scenario.faults.KillProcess` /
:class:`~repro.scenario.faults.RestartProcess` fault pair can route
through the :class:`~repro.scenario.faults.TcpFaultInjector`.

Blocking waits (spawn banner, SIGKILL reap) run in the event loop's
default executor when called from async code, so a mid-run restart
never stalls the runner's own traffic.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ServeProcess", "ServeProcessManager"]

#: How long to wait for the "serving ..." banner before giving up.
READY_TIMEOUT_S = 30.0


class ServeProcess:
    """One ``python -m repro serve`` child hosting some replicas.

    The child inherits this interpreter and ``PYTHONPATH`` (plus
    ``extra_env``), prints its banner on stdout (which :meth:`start`
    waits for -- the cluster is listening once it appears), and sends
    stderr to ``log_path`` when given so post-mortems survive the
    process."""

    def __init__(self, spec_path: str, replicas: Tuple[str, ...],
                 data_dir: Optional[str] = None,
                 snapshot_path: Optional[str] = None,
                 log_path: Optional[str] = None,
                 extra_env: Optional[Dict[str, str]] = None) -> None:
        if not replicas:
            raise ConfigurationError(
                "ServeProcess needs at least one replica id")
        self.spec_path = spec_path
        self.replicas = tuple(replicas)
        self.data_dir = data_dir
        self.snapshot_path = snapshot_path
        self.log_path = log_path
        self.extra_env = dict(extra_env or {})
        self._proc: Optional[subprocess.Popen] = None
        self._log_fh = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def argv(self) -> List[str]:
        argv = [sys.executable, "-m", "repro", "serve",
                "--spec", self.spec_path,
                "--replicas", ",".join(self.replicas)]
        if self.data_dir:
            argv += ["--data-dir", self.data_dir]
        if self.snapshot_path:
            argv += ["--snapshot", self.snapshot_path]
        return argv

    def start(self, timeout: float = READY_TIMEOUT_S) -> None:
        """Spawn and block until the serve banner appears (listeners
        are bound and any disk recovery has already run by then)."""
        if self.alive:
            raise ConfigurationError(
                f"serve process for {self.replicas} is already running")
        env = dict(os.environ)
        env.update(self.extra_env)
        stderr: object = None
        if self.log_path:
            self._log_fh = open(self.log_path, "ab")
            stderr = self._log_fh
        self._proc = subprocess.Popen(
            self.argv(), stdout=subprocess.PIPE, stderr=stderr,
            env=env)
        self._wait_ready(timeout)

    def _wait_ready(self, timeout: float) -> None:
        # repro: allow[wall-clock] -- real subprocess spawn deadline,
        # never on the sim path.
        deadline = time.monotonic() + timeout
        assert self._proc is not None and self._proc.stdout is not None
        while True:
            # repro: allow[wall-clock] -- same spawn deadline.
            if time.monotonic() > deadline:
                self.kill()
                raise ConfigurationError(
                    f"serve process for {self.replicas} did not print "
                    f"its banner within {timeout:.0f}s")
            line = self._proc.stdout.readline()
            if not line:
                code = self._proc.poll()
                raise ConfigurationError(
                    f"serve process for {self.replicas} exited "
                    f"(code {code}) before becoming ready")
            if line.decode("utf-8", "replace").startswith("serving "):
                return

    async def start_async(self, timeout: float = READY_TIMEOUT_S
                          ) -> None:
        """:meth:`start` off the event loop thread."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.start(timeout))

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL: no drain, no flush -- the point of the exercise."""
        if self._proc is None:
            return
        try:
            self._proc.kill()
        except OSError:
            pass
        self._reap()

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM (graceful drain) and wait; returns the exit code."""
        if self._proc is None:
            return 0
        if self._proc.poll() is None:
            try:
                self._proc.send_signal(signal.SIGTERM)
            except OSError:
                pass
        try:
            code = self._proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill()
            code = self._proc.returncode
        self._close_pipes()
        return code if code is not None else -1

    def _reap(self) -> None:
        try:
            self._proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass
        self._close_pipes()

    def _close_pipes(self) -> None:
        if self._proc is not None and self._proc.stdout is not None:
            try:
                self._proc.stdout.close()
            except OSError:
                pass
        if self._log_fh is not None:
            try:
                self._log_fh.close()
            except OSError:
                pass
            self._log_fh = None


class ServeProcessManager:
    """replica id -> hosting :class:`ServeProcess`, for fault routing."""

    def __init__(self) -> None:
        self._procs: Dict[str, ServeProcess] = {}

    def register(self, process: ServeProcess) -> ServeProcess:
        for rid in process.replicas:
            self._procs[rid] = process
        return process

    @property
    def replicas(self) -> Tuple[str, ...]:
        """Every replica some registered process hosts."""
        return tuple(sorted(self._procs))

    def process_for(self, replica: str) -> ServeProcess:
        try:
            return self._procs[replica]
        except KeyError:
            raise ConfigurationError(
                f"no registered serve process hosts replica "
                f"{replica!r} (have {self.replicas})") from None

    def kill(self, replica: str) -> None:
        self.process_for(replica).kill()

    async def restart(self, replica: str,
                      timeout: float = READY_TIMEOUT_S) -> None:
        process = self.process_for(replica)
        if process.alive:
            raise ConfigurationError(
                f"serve process for {replica!r} is still alive; "
                f"KillProcess it before RestartProcess")
        await process.start_async(timeout)

    def terminate_all(self) -> None:
        """Teardown: SIGTERM every distinct live process."""
        for process in {id(p): p for p in self._procs.values()}.values():
            if process.alive:
                process.terminate()
            else:
                process.kill()  # reap a SIGKILLed child if needed
