"""Unified scenario/experiment API: one declarative entrypoint for
protocols x workloads x fault schedules, over both backends.

- :class:`Scenario` / :class:`WorkloadSpec` / :class:`Phase` describe an
  experiment (:mod:`repro.scenario.spec`).
- Fault events (:class:`CrashReplica`, :class:`Partition`,
  :class:`SwapByzantine`, ...) schedule disruptions on the scenario
  clock (:mod:`repro.scenario.faults`).
- :class:`ScenarioRunner` compiles a scenario onto the deterministic
  simulator or the asyncio TCP transport and returns an
  :class:`ExperimentReport` (:mod:`repro.scenario.runner` /
  :mod:`repro.scenario.report`).
- :func:`preset` serves the ready-made paper scenarios
  (:mod:`repro.scenario.presets`); ``python -m repro`` is the CLI.
- :func:`load_spec` / :func:`dumps_spec` read and write JSON/TOML
  scenario+sweep documents (:mod:`repro.scenario.loader`), so
  experiments run from files without writing Python.
"""

from repro.scenario.faults import (
    BandwidthCap,
    ClientChurn,
    CrashReplica,
    FaultEvent,
    Heal,
    Jitter,
    KillProcess,
    LatencyShift,
    PacketLoss,
    Partition,
    RecoverReplica,
    Reorder,
    RestartProcess,
    SwapByzantine,
)
from repro.scenario.processes import (
    ServeProcess,
    ServeProcessManager,
)
from repro.scenario.loader import (
    FAULT_TYPES,
    dumps_spec,
    load_spec,
    loads_spec,
    save_spec,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.presets import (
    available_presets,
    preset,
    register_preset,
)
from repro.scenario.report import (
    REPORT_CSV_COLUMNS,
    ExperimentReport,
    PhaseReport,
    rows_to_csv,
)
from repro.scenario.runner import (
    ScenarioRunner,
    build_tcp_cluster,
    run_scenario,
)
from repro.scenario.spec import (
    BACKENDS,
    NAMED_MATRICES,
    Phase,
    Scenario,
    WorkloadSpec,
)

__all__ = [
    "Scenario",
    "WorkloadSpec",
    "Phase",
    "BACKENDS",
    "NAMED_MATRICES",
    "FaultEvent",
    "CrashReplica",
    "RecoverReplica",
    "KillProcess",
    "RestartProcess",
    "ServeProcess",
    "ServeProcessManager",
    "Partition",
    "Heal",
    "SwapByzantine",
    "LatencyShift",
    "ClientChurn",
    "PacketLoss",
    "Jitter",
    "BandwidthCap",
    "Reorder",
    "ScenarioRunner",
    "run_scenario",
    "build_tcp_cluster",
    "ExperimentReport",
    "PhaseReport",
    "REPORT_CSV_COLUMNS",
    "rows_to_csv",
    "preset",
    "register_preset",
    "available_presets",
    "FAULT_TYPES",
    "load_spec",
    "loads_spec",
    "dumps_spec",
    "save_spec",
    "scenario_to_dict",
    "scenario_from_dict",
]
