"""Structured experiment results with JSON and CSV export.

A :class:`ScenarioRunner` run produces one :class:`ExperimentReport`:
per-phase throughput and latency percentiles, fast-path ratio, protocol
health counters (owner/view changes, stable checkpoints, resident log
footprint), aggregate client counters, and the executed fault log.

Everything in :meth:`ExperimentReport.to_dict` is derived from the
scenario clock, so on the deterministic simulator two runs of the same
seeded scenario serialize identically (wall-clock time is reported
separately in :attr:`ExperimentReport.wall_seconds`).

:meth:`ExperimentReport.to_rows` flattens a report into one dict per
phase under the fixed :data:`REPORT_CSV_COLUMNS` column set -- the
tabular form shared by ``compare --csv`` and
:meth:`repro.sweep.SweepReport.to_csv`.  Wall-clock fields are
deliberately excluded so exported CSV is byte-stable across runs of a
seeded sim scenario.
"""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.metrics import LatencySummary

#: Fixed column order for the tabular (CSV) form of a report: one row
#: per phase, run-level counters repeated on every row.  Pinned by the
#: report-schema regression test -- extend deliberately, never reorder.
REPORT_CSV_COLUMNS = (
    "scenario",
    "protocol",
    "backend",
    "seed",
    "phase",
    "start_ms",
    "end_ms",
    "delivered",
    "throughput_per_sec",
    "latency_count",
    "latency_mean_ms",
    "latency_p50_ms",
    "latency_p90_ms",
    "latency_p99_ms",
    "latency_min_ms",
    "latency_max_ms",
    "fast_path_ratio",
    "warmup_discarded",
    "owner_changes",
    "view_changes",
    "checkpoints_stable",
    "log_footprint_total",
)


def rows_to_csv(rows: List[Dict[str, Any]], columns: List[str],
                path: Optional[str] = None) -> str:
    """Serialize ``rows`` (dicts) under a fixed ``columns`` order; None
    (the JSON form of NaN/inf) becomes an empty CSV field.  Returns the
    CSV text; also writes it to ``path`` when given."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns),
                            restval="", extrasaction="ignore",
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({key: ("" if value is None else value)
                         for key, value in row.items()})
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8", newline="") as fh:
            fh.write(text)
    return text


def _clean(value: float) -> Optional[float]:
    """NaN/inf are not valid strict JSON; map them to null."""
    if value is None or math.isnan(value) or math.isinf(value):
        return None
    return value


def _unclean(value: Optional[float]) -> float:
    """Inverse of :func:`_clean` for report reconstruction."""
    return float("nan") if value is None else value


def _summary_from_dict(data: Dict[str, Any]) -> LatencySummary:
    return LatencySummary(
        count=data["count"],
        mean=_unclean(data["mean_ms"]),
        p50=_unclean(data["p50_ms"]),
        p90=_unclean(data["p90_ms"]),
        p99=_unclean(data["p99_ms"]),
        minimum=_unclean(data["min_ms"]),
        maximum=_unclean(data["max_ms"]),
    )


def _summary_dict(summary: LatencySummary) -> Dict[str, Any]:
    return {
        "count": summary.count,
        "mean_ms": _clean(summary.mean),
        "p50_ms": _clean(summary.p50),
        "p90_ms": _clean(summary.p90),
        "p99_ms": _clean(summary.p99),
        "min_ms": _clean(summary.minimum),
        "max_ms": _clean(summary.maximum),
    }


@dataclass
class PhaseReport:
    """Metrics for one named slice of the run timeline."""

    name: str
    start_ms: float
    end_ms: float
    delivered: int
    throughput_per_sec: float
    latency: LatencySummary
    fast_path_ratio: float
    per_region: Dict[str, LatencySummary] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": _clean(self.end_ms),
            "delivered": self.delivered,
            "throughput_per_sec": round(self.throughput_per_sec, 3),
            "latency": _summary_dict(self.latency),
            "fast_path_ratio": _clean(self.fast_path_ratio),
            "per_region": {region: _summary_dict(summary)
                           for region, summary
                           in sorted(self.per_region.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhaseReport":
        return cls(
            name=data["name"],
            start_ms=data["start_ms"],
            end_ms=_unclean(data["end_ms"]),
            delivered=data["delivered"],
            throughput_per_sec=data["throughput_per_sec"],
            latency=_summary_from_dict(data["latency"]),
            fast_path_ratio=_unclean(data["fast_path_ratio"]),
            per_region={region: _summary_from_dict(summary)
                        for region, summary
                        in data.get("per_region", {}).items()},
        )


@dataclass
class ExperimentReport:
    """Everything one scenario run measured."""

    scenario: str
    protocol: str
    backend: str
    seed: int
    replica_regions: List[str]
    duration_ms: float
    phases: List[PhaseReport]
    delivered: int
    throughput_per_sec: float
    latency: LatencySummary
    fast_path_ratio: float
    warmup_discarded: int
    owner_changes: int
    view_changes: int
    checkpoints_stable: int
    log_footprint_total: int
    client_stats: Dict[str, int]
    network: Dict[str, int]
    fault_log: List[Dict[str, Any]] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Critical-path summary from :func:`repro.trace.summarize_traces`
    #: when the run was traced; ``None`` (and absent from the
    #: serialized form) otherwise, so untraced reports keep their
    #: pinned schema byte-for-byte.
    trace: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "backend": self.backend,
            "seed": self.seed,
            "replica_regions": list(self.replica_regions),
            "duration_ms": _clean(self.duration_ms),
            "phases": [phase.to_dict() for phase in self.phases],
            "totals": {
                "delivered": self.delivered,
                "throughput_per_sec": round(self.throughput_per_sec, 3),
                "latency": _summary_dict(self.latency),
                "fast_path_ratio": _clean(self.fast_path_ratio),
                "warmup_discarded": self.warmup_discarded,
            },
            "protocol_health": {
                "owner_changes": self.owner_changes,
                "view_changes": self.view_changes,
                "checkpoints_stable": self.checkpoints_stable,
                "log_footprint_total": self.log_footprint_total,
            },
            "client_stats": dict(sorted(self.client_stats.items())),
            "network": dict(sorted(self.network.items())),
            "fault_log": list(self.fault_log),
            "wall_seconds": round(self.wall_seconds, 3),
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentReport":
        """Reconstruct a report from its :meth:`to_dict` form.

        The round trip preserves :meth:`to_dict` and :meth:`to_rows`
        output exactly (rounding in the serialized form is idempotent),
        which is what lets the sweep cell cache substitute a stored
        report for a fresh run.
        """
        totals = data["totals"]
        health = data["protocol_health"]
        return cls(
            scenario=data["scenario"],
            protocol=data["protocol"],
            backend=data["backend"],
            seed=data["seed"],
            replica_regions=list(data["replica_regions"]),
            duration_ms=_unclean(data["duration_ms"]),
            phases=[PhaseReport.from_dict(phase)
                    for phase in data["phases"]],
            delivered=totals["delivered"],
            throughput_per_sec=totals["throughput_per_sec"],
            latency=_summary_from_dict(totals["latency"]),
            fast_path_ratio=_unclean(totals["fast_path_ratio"]),
            warmup_discarded=totals["warmup_discarded"],
            owner_changes=health["owner_changes"],
            view_changes=health["view_changes"],
            checkpoints_stable=health["checkpoints_stable"],
            log_footprint_total=health["log_footprint_total"],
            client_stats=dict(data["client_stats"]),
            network=dict(data["network"]),
            fault_log=list(data["fault_log"]),
            wall_seconds=data["wall_seconds"],
            trace=data.get("trace"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          allow_nan=False)

    def to_rows(self) -> List[Dict[str, Any]]:
        """One flat dict per phase under :data:`REPORT_CSV_COLUMNS`.

        Latency values are rounded to 3 decimals (microsecond precision
        on a millisecond clock) and NaN/inf map to None, mirroring
        :meth:`to_dict`.  Wall-clock time is excluded on purpose: the
        tabular form must be stable across runs of a seeded scenario.
        """
        def r3(value: Optional[float]) -> Optional[float]:
            value = _clean(value)
            return None if value is None else round(value, 3)

        rows = []
        for phase in self.phases:
            summary = phase.latency
            rows.append({
                "scenario": self.scenario,
                "protocol": self.protocol,
                "backend": self.backend,
                "seed": self.seed,
                "phase": phase.name,
                "start_ms": r3(phase.start_ms),
                "end_ms": r3(phase.end_ms),
                "delivered": phase.delivered,
                "throughput_per_sec": r3(phase.throughput_per_sec),
                "latency_count": summary.count,
                "latency_mean_ms": r3(summary.mean),
                "latency_p50_ms": r3(summary.p50),
                "latency_p90_ms": r3(summary.p90),
                "latency_p99_ms": r3(summary.p99),
                "latency_min_ms": r3(summary.minimum),
                "latency_max_ms": r3(summary.maximum),
                "fast_path_ratio": r3(phase.fast_path_ratio),
                "warmup_discarded": self.warmup_discarded,
                "owner_changes": self.owner_changes,
                "view_changes": self.view_changes,
                "checkpoints_stable": self.checkpoints_stable,
                "log_footprint_total": self.log_footprint_total,
            })
        return rows

    def to_csv(self, path: Optional[str] = None) -> str:
        """The report as CSV text (one row per phase); optionally
        written to ``path``."""
        return rows_to_csv(self.to_rows(), list(REPORT_CSV_COLUMNS),
                           path)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    def format_text(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"scenario   {self.scenario}  "
            f"[{self.protocol} / {self.backend} / seed={self.seed}]",
            f"regions    {', '.join(self.replica_regions)}",
            f"duration   {self.duration_ms:.0f} ms scenario time, "
            f"{self.wall_seconds:.2f} s wall",
            f"delivered  {self.delivered} requests "
            f"({self.throughput_per_sec:.1f}/s, "
            f"{self.warmup_discarded} warmup samples discarded)",
        ]
        fast = self.fast_path_ratio
        if not math.isnan(fast):
            lines.append(f"fast path  {fast:.1%}")
        lines.append(
            f"health     owner_changes={self.owner_changes} "
            f"view_changes={self.view_changes} "
            f"checkpoints_stable={self.checkpoints_stable} "
            f"log_footprint={self.log_footprint_total}")
        header = (f"{'phase':12s} {'window (ms)':>17s} {'n':>6s} "
                  f"{'thr/s':>8s} {'p50':>7s} {'p90':>7s} {'p99':>7s} "
                  f"{'fast':>6s}")
        lines.append("")
        lines.append(header)
        lines.append("-" * len(header))
        for phase in self.phases:
            summary = phase.latency
            fast = phase.fast_path_ratio
            fast_s = f"{fast:.0%}" if not math.isnan(fast) else "-"
            window = f"{phase.start_ms:.0f}-{phase.end_ms:.0f}"
            lines.append(
                f"{phase.name:12s} {window:>17s} "
                f"{phase.delivered:6d} "
                f"{phase.throughput_per_sec:8.1f} "
                f"{summary.p50:7.1f} {summary.p90:7.1f} "
                f"{summary.p99:7.1f} {fast_s:>6s}")
        if self.fault_log:
            lines.append("")
            lines.append("fault schedule:")
            for entry in self.fault_log:
                lines.append(
                    f"  t={entry['applied_ms']:8.1f}ms  "
                    f"{entry['detail']}")
        return "\n".join(lines)
