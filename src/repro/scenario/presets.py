"""Ready-made scenarios for the paper's Section-V experiment grid.

Each preset is a zero-argument factory returning a fresh
:class:`~repro.scenario.spec.Scenario`, so callers can freely override
fields (``preset("smoke").with_overrides(protocol="pbft")``).  The CLI
(``python -m repro list-presets``) lists this registry; the README maps
presets to the paper figures they reproduce.

The ``*-smoke`` variants are scaled down to run in seconds (CI, the
quickstart); the unscaled methodology lives in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError
from repro.netem import LinkModel, NetemProfile
from repro.scenario.faults import (
    ClientChurn,
    CrashReplica,
    Heal,
    LatencyShift,
    Partition,
    RecoverReplica,
    SwapByzantine,
)
from repro.scenario.spec import Phase, Scenario, WorkloadSpec

_PRESETS: Dict[str, Callable[[], Scenario]] = {}

#: Experiment 1 deployment (Table I, Figures 4, 6, 7).
EXP1_REGIONS = ("virginia", "tokyo", "mumbai", "sydney")
#: Experiment 2 deployment (Figure 5).
EXP2_REGIONS = ("ohio", "ireland", "frankfurt", "mumbai")


def register_preset(name: str,
                    factory: Callable[[], Scenario]) -> None:
    """Add a preset; duplicate names raise."""
    if name in _PRESETS:
        raise ConfigurationError(f"preset {name!r} already registered")
    _PRESETS[name] = factory


def preset(name: str) -> Scenario:
    """A fresh Scenario for ``name``; raises with the available names."""
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; choose from "
            f"{available_presets()}") from None
    return factory()


def available_presets() -> Tuple[str, ...]:
    """Registered preset names, in registration order."""
    return tuple(_PRESETS)


# ----------------------------------------------------------------------
# Smoke: the fastest end-to-end scenario, one per protocol.  Every
# registered builtin protocol is covered, on both backends.
# ----------------------------------------------------------------------
def _smoke(protocol: str) -> Callable[[], Scenario]:
    def factory() -> Scenario:
        return Scenario(
            name=f"smoke-{protocol}",
            protocol=protocol,
            replica_regions=("local",) * 4,
            latency="local",
            workload=WorkloadSpec(mode="closed", clients_per_region=2,
                                  requests_per_client=6),
            seed=1,
            slow_path_timeout=200.0,
            retry_timeout=2000.0,
            suspicion_timeout=1000.0,
            view_change_timeout=2000.0,
            backends=("sim", "tcp"),
            description=f"Fast sanity run of {protocol}: 4 LAN "
                        f"replicas, 2 closed-loop clients x 6 requests.",
        )
    return factory


for _protocol in ("ezbft", "pbft", "zyzzyva", "fab"):
    register_preset(f"smoke-{_protocol}", _smoke(_protocol))
register_preset("smoke", _smoke("ezbft"))


# ----------------------------------------------------------------------
# Paper experiment presets.
# ----------------------------------------------------------------------
def _figure4() -> Scenario:
    return Scenario(
        name="figure4",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=10,
                              warmup_requests=1, contention=0.02),
        seed=4,
        description="Figure 4: per-region client latency on the "
                    "Experiment-1 WAN, 2% contention, warmup excluded. "
                    "Use `compare` to sweep all four protocols.",
    )


def _figure5a() -> Scenario:
    return Scenario(
        name="figure5a",
        protocol="ezbft",
        replica_regions=EXP2_REGIONS,
        latency="experiment2",
        primary_region="ireland",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=10,
                              warmup_requests=1),
        seed=5,
        description="Figure 5a: Experiment-2 regions (overlapping "
                    "transatlantic paths), primary in Ireland for the "
                    "single-leader baselines.",
    )


def _figure6_smoke() -> Scenario:
    return Scenario(
        name="figure6-smoke",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="closed", clients_per_region=5,
                              requests_per_client=10,
                              warmup_requests=1, contention=0.5),
        seed=6,
        backends=("sim", "tcp"),
        description="Figure 6 (scaled down): client scalability -- 5 "
                    "closed-loop clients per region, 50% contention. "
                    "Runs on both backends.",
    )


def _figure7_smoke() -> Scenario:
    return Scenario(
        name="figure7-smoke",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="open",
                              client_regions=("virginia",),
                              clients_per_region=8,
                              rate_per_client=50.0),
        phases=(Phase("ramp", 500.0), Phase("steady", 1500.0)),
        seed=7,
        slow_path_timeout=8_000.0,
        retry_timeout=120_000.0,
        suspicion_timeout=120_000.0,
        view_change_timeout=120_000.0,
        description="Figure 7 (scaled down): open-loop throughput from "
                    "Virginia with ramp/steady phases; recovery timers "
                    "pushed out so saturation is not mistaken for "
                    "faults.",
    )


def _crash_recovery() -> Scenario:
    return Scenario(
        name="crash-recovery",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="closed",
                              client_regions=("tokyo",),
                              clients_per_region=1,
                              requests_per_client=6),
        faults=(CrashReplica(at_ms=10.0, replica="r1"),
                RecoverReplica(at_ms=4000.0, replica="r1")),
        seed=11,
        slow_path_timeout=300.0,
        retry_timeout=900.0,
        suspicion_timeout=400.0,
        description="Fault schedule: crash the Tokyo replica under its "
                    "own client's load -> RESENDREQ / suspicion "
                    "timeout -> owner change -> recover.  "
                    "Deterministic under the seed.",
    )


def _equivocation() -> Scenario:
    return Scenario(
        name="equivocation",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="closed",
                              client_regions=("tokyo",),
                              clients_per_region=1,
                              requests_per_client=4),
        faults=(SwapByzantine(at_ms=0.0, replica="r1",
                              behavior="equivocate"),),
        seed=12,
        slow_path_timeout=300.0,
        retry_timeout=900.0,
        suspicion_timeout=400.0,
        description="Fault schedule: the client's nearest replica "
                    "equivocates; proof-of-misbehavior freezes its "
                    "space and the command commits through the next "
                    "owner (paper step 4.4).",
    )


def _partition_heal() -> Scenario:
    return Scenario(
        name="partition-heal",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="open",
                              client_regions=("virginia",),
                              clients_per_region=2,
                              rate_per_client=20.0),
        phases=(Phase("healthy", 1000.0), Phase("partitioned", 1500.0),
                Phase("healed", 1500.0)),
        faults=(Partition(at_ms=1000.0,
                          sides=(("r3",), ("r0", "r1", "r2"))),
                Heal(at_ms=2500.0)),
        seed=13,
        slow_path_timeout=600.0,
        retry_timeout=60_000.0,
        suspicion_timeout=60_000.0,
        view_change_timeout=60_000.0,
        description="Sydney partitioned away mid-run: the fast path "
                    "(needs all 3f+1) collapses to the slow path in "
                    "the 'partitioned' phase; commits continue on the "
                    "2f+1 slow path, and the straggler's log gap keeps "
                    "the fast path down until it catches up.",
    )


def _churn_latency_shift() -> Scenario:
    return Scenario(
        name="churn-latency-shift",
        protocol="ezbft",
        replica_regions=EXP1_REGIONS,
        latency="experiment1",
        workload=WorkloadSpec(mode="open",
                              client_regions=("virginia", "tokyo"),
                              clients_per_region=2,
                              rate_per_client=15.0),
        phases=(Phase("baseline", 1200.0), Phase("stressed", 1800.0)),
        faults=(ClientChurn(at_ms=1200.0, add=4, region="mumbai"),
                LatencyShift(at_ms=1200.0, factor=1.5),),
        seed=14,
        slow_path_timeout=2_000.0,
        retry_timeout=60_000.0,
        suspicion_timeout=60_000.0,
        view_change_timeout=60_000.0,
        description="Open-loop run that gains 4 Mumbai clients and a "
                    "1.5x WAN slowdown mid-run; per-phase latency "
                    "shows the shift.",
    )


def _lossy_wan() -> Scenario:
    return Scenario(
        name="lossy-wan",
        protocol="ezbft",
        replica_regions=("local",) * 4,
        latency="local",
        netem=NetemProfile(default=LinkModel(
            delay_ms=12.0, jitter_ms=4.0, loss=0.01)),
        workload=WorkloadSpec(mode="closed", clients_per_region=2,
                              requests_per_client=6,
                              think_time_ms=40.0),
        faults=(LatencyShift(at_ms=400.0, factor=2.0),),
        seed=21,
        slow_path_timeout=250.0,
        retry_timeout=1200.0,
        suspicion_timeout=60_000.0,
        view_change_timeout=60_000.0,
        backends=("sim", "tcp"),
        description="Lossy WAN: every link carries 12±4ms emulated "
                    "delay and 1% loss, and the WAN slows 2x mid-run "
                    "(LatencyShift).  Identical spec on both backends; "
                    "deterministic under the seed on sim.",
    )


register_preset("figure4", _figure4)
register_preset("lossy-wan", _lossy_wan)
register_preset("figure5a", _figure5a)
register_preset("figure6-smoke", _figure6_smoke)
register_preset("figure7-smoke", _figure7_smoke)
register_preset("crash-recovery", _crash_recovery)
register_preset("equivocation", _equivocation)
register_preset("partition-heal", _partition_heal)
register_preset("churn-latency-shift", _churn_latency_shift)
