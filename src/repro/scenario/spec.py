"""Declarative experiment specs: one dataclass describes a whole run.

A :class:`Scenario` names everything the paper's Section-V evaluation
varies -- protocol, geo topology, workload shape, client placement,
phases, a fault schedule, and a seed -- and compiles onto either the
deterministic WAN simulator or the asyncio TCP backend through
:class:`~repro.scenario.runner.ScenarioRunner`.  A new experiment is a
~10-line spec, not a bespoke script::

    from repro.scenario import Scenario, WorkloadSpec, CrashReplica, \
        RecoverReplica, ScenarioRunner

    scenario = Scenario(
        name="crash-owner-change",
        protocol="ezbft",
        replica_regions=("virginia", "tokyo", "mumbai", "sydney"),
        latency="experiment1",
        workload=WorkloadSpec(mode="closed", clients_per_region=1,
                              requests_per_client=12),
        faults=(CrashReplica(at_ms=300.0, replica="r1"),
                RecoverReplica(at_ms=2500.0, replica="r1")),
        seed=7,
    )
    report = ScenarioRunner().run(scenario)
    print(report.to_json())
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.netem import NetemProfile
from repro.netem.model import ANY, _is_client_id
from repro.scenario.faults import (
    ClientChurn,
    FaultEvent,
    Partition,
    _NetemEvent,
)
from repro.sim.latency import (
    EXPERIMENT1,
    EXPERIMENT2,
    LOCAL,
    LatencyMatrix,
)
from repro.sim.network import CpuModel, NetworkConditions
from repro.statemachine.base import StateMachine
from repro.statemachine.kvstore import KVStore

#: Latency matrices addressable by name in specs / presets / the CLI.
NAMED_MATRICES = {
    "local": LOCAL,
    "experiment1": EXPERIMENT1,
    "experiment2": EXPERIMENT2,
}

#: Scenario backends.
BACKENDS = ("sim", "tcp")


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of the client load.

    ``mode`` selects the paper's two methodologies: ``"closed"`` clients
    wait for each reply before the next request (latency experiments);
    ``"open"`` clients fire at ``rate_per_client`` requests/sec for the
    scenario duration (throughput experiments).

    ``client_regions`` places clients (default: one group per replica
    region); ``clients_per_region`` scales each group.
    ``warmup_requests`` excludes each client's first N samples
    recorder-side (see
    :class:`~repro.cluster.metrics.LatencyRecorder`).
    """

    mode: str = "closed"
    client_regions: Optional[Tuple[str, ...]] = None
    clients_per_region: int = 1
    requests_per_client: int = 8
    think_time_ms: float = 0.0
    rate_per_client: float = 60.0
    max_outstanding: int = 10_000
    contention: float = 0.0
    value_size: int = 16
    warmup_requests: int = 0
    batch_size: int = 1
    batch_timeout_ms: float = 10.0

    def validate(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(
                f"workload mode must be 'closed' or 'open', "
                f"got {self.mode!r}")
        if self.clients_per_region < 1:
            raise ConfigurationError("clients_per_region must be >= 1")
        if self.mode == "closed" and self.requests_per_client < 1:
            raise ConfigurationError("requests_per_client must be >= 1")
        if self.mode == "open" and self.rate_per_client <= 0:
            raise ConfigurationError("rate_per_client must be positive")
        if self.warmup_requests < 0:
            raise ConfigurationError("warmup_requests must be >= 0")
        if not 0.0 <= self.contention <= 1.0:
            raise ConfigurationError("contention must be in [0, 1]")


@dataclass(frozen=True)
class Phase:
    """One named slice of the run timeline, for per-phase reporting."""

    name: str
    duration_ms: float

    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be non-empty")
        if self.duration_ms <= 0:
            raise ConfigurationError(
                f"phase {self.name!r} duration must be positive")


@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible experiment description.

    ``latency`` is a :class:`LatencyMatrix` or one of the names in
    :data:`NAMED_MATRICES`; it (and region placement generally) only
    affects the sim backend -- the TCP backend runs on localhost sockets
    but keeps the same region labels for grouping.

    ``phases`` slices the timeline for per-phase reporting; when empty
    the whole run is one implicit ``"main"`` phase.  ``duration_ms``
    bounds open-loop load generation (defaulting to the phase sum);
    closed-loop scenarios run until every client finishes.

    ``faults`` is the fault schedule: typed events applied at their
    ``at_ms`` on the scenario clock (simulated ms on the sim backend,
    wall-clock ms on TCP).

    ``seed`` is the *single* source of randomness: it derives the
    network jitter/drop RNG and every client's workload stream, so two
    runs of the same scenario are identical end-to-end.
    """

    name: str
    protocol: str = "ezbft"
    replica_regions: Tuple[str, ...] = ("virginia", "tokyo",
                                        "mumbai", "sydney")
    latency: Union[str, LatencyMatrix] = "experiment1"
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    phases: Tuple[Phase, ...] = ()
    duration_ms: Optional[float] = None
    faults: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    #: Link-level network emulation (loss / jitter / reorder /
    #: duplication / bandwidth caps) applied identically on both
    #: backends through the :class:`repro.netem.LinkShaper` seam.
    #: Either a full :class:`NetemProfile` or the name of a preset in
    #: :data:`repro.netem.NETEM_PRESETS` (``"lossy-wan"``, ...), so
    #: sweep axes can say ``netem=lossy-wan,clean``.
    netem: Union[str, NetemProfile, None] = None
    #: TCP backend only: replica id -> ``"host:port"`` for replicas
    #: hosted in *another* process (``python -m repro serve``); the
    #: runner starts the rest locally and dials these.
    hosts: Optional[Mapping[str, str]] = None
    #: TCP backend only: replica id -> ``"host:port"`` observability
    #: endpoint (``/metrics`` + ``/healthz`` + signed ``/control``) the
    #: serving process binds for that replica.  The scenario process
    #: uses these to deliver remote-targeted faults and to scrape
    #: remote replica stats into the report.
    obs: Optional[Mapping[str, str]] = None
    statemachine: Callable[[], StateMachine] = KVStore
    interference: Any = None
    primary_region: Optional[str] = None
    primary_index: int = 0
    cpu: Optional[CpuModel] = None
    conditions: Optional[NetworkConditions] = None
    slow_path_timeout: float = 400.0
    retry_timeout: float = 1200.0
    suspicion_timeout: float = 600.0
    view_change_timeout: float = 1500.0
    checkpoint_interval: int = 128
    #: TCP backend only: back every locally hosted replica with an
    #: on-disk WAL + snapshot store (``repro.storage``) so a process
    #: killed with SIGKILL can restart from its data directory.  A
    #: first-class sweep axis (``durable=true``); the sim backend is
    #: in-memory by construction and rejects it.
    durable: bool = False
    #: Which backends this scenario is meant to run on by default (the
    #: CLI's ``--backend`` overrides).
    backends: Tuple[str, ...] = ("sim",)
    description: str = ""

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if len(self.replica_regions) < 4:
            raise ConfigurationError(
                "BFT scenarios need at least 4 replicas")
        self.workload.validate()
        matrix = self.latency_matrix()
        for region in self.replica_regions:
            if region not in matrix.regions:
                raise ConfigurationError(
                    f"replica region {region!r} not in latency matrix "
                    f"{matrix.name!r}")
        for region in self.client_regions():
            if region not in matrix.regions:
                raise ConfigurationError(
                    f"client region {region!r} not in latency matrix "
                    f"{matrix.name!r}")
        seen = set()
        for phase in self.phases:
            phase.validate()
            if phase.name in seen:
                raise ConfigurationError(
                    f"duplicate phase name {phase.name!r}")
            seen.add(phase.name)
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ConfigurationError("duration_ms must be positive")
        if self.workload.mode == "open" and \
                self.nominal_duration_ms() is None:
            raise ConfigurationError(
                "open-loop scenarios need a horizon: set duration_ms "
                "or declare phases")
        replica_ids = self.replica_ids()
        horizon = self.nominal_duration_ms()
        for i, event in enumerate(self.faults):
            event.validate(replica_ids)
            self._validate_fault_endpoints(i, event, replica_ids,
                                           matrix)
            if horizon is not None and event.at_ms > horizon:
                raise ConfigurationError(
                    f"fault event {event!r} scheduled after the "
                    f"scenario horizon ({horizon}ms)")
        profile = self.netem_profile()
        if profile is not None:
            profile.validate(
                known_tokens=set(matrix.regions) | set(replica_ids),
                key="netem")
        self._validate_hosts(replica_ids)
        self._validate_obs(replica_ids)
        for backend in self.backends:
            if backend not in BACKENDS:
                raise ConfigurationError(
                    f"unknown backend {backend!r}; choose from "
                    f"{BACKENDS}")
        if self.durable and "tcp" not in self.backends:
            raise ConfigurationError(
                "durable=true needs the tcp backend (the simulator "
                "is in-memory by construction); add 'tcp' to backends")

    def _validate_fault_endpoints(self, index: int, event: FaultEvent,
                                  replica_ids: Tuple[str, ...],
                                  matrix: LatencyMatrix) -> None:
        """Catch schedule typos at validation time with the key named,
        instead of a mid-run failure: Partition sides must name real
        replicas (or client ids ``cN``), ClientChurn regions must be
        in the latency matrix."""
        if isinstance(event, Partition):
            for s, side in enumerate(event.sides):
                for member in side:
                    if member in replica_ids or _is_client_id(member):
                        continue
                    raise ConfigurationError(
                        f"faults[{index}].sides[{s}] names unknown "
                        f"node {member!r} (replicas: {replica_ids}, "
                        f"or client ids c0..cN)")
        elif isinstance(event, ClientChurn):
            if event.region is not None and \
                    event.region not in matrix.regions:
                raise ConfigurationError(
                    f"faults[{index}].region {event.region!r} is not "
                    f"in latency matrix {matrix.name!r} "
                    f"(regions: {matrix.regions})")
        elif isinstance(event, _NetemEvent):
            # A typoed link token would make the chaos event a silent
            # no-op (the patch matches no pair) while the fault log
            # still claims it fired.
            known = set(matrix.regions) | set(replica_ids)
            for side in ("src", "dst"):
                token = getattr(event, side)
                if token == ANY or token in known or \
                        _is_client_id(token):
                    continue
                raise ConfigurationError(
                    f"faults[{index}].{side} names unknown endpoint "
                    f"{token!r} (known: {tuple(sorted(known))}, "
                    f"client ids c0..cN, or '*')")

    def _validate_hosts(self, replica_ids: Tuple[str, ...]) -> None:
        if self.hosts is None:
            return
        if not self.hosts:
            raise ConfigurationError(
                "hosts must map at least one replica (or be omitted)")
        from repro.transport.asyncio_tcp import parse_hostport
        from repro.errors import TransportError
        for rid, value in self.hosts.items():
            if rid not in replica_ids:
                raise ConfigurationError(
                    f"hosts names unknown replica {rid!r} "
                    f"(have {replica_ids})")
            try:
                parse_hostport(value)
            except TransportError as exc:
                raise ConfigurationError(
                    f"hosts[{rid!r}]: {exc}") from None
        if len(self.hosts) >= len(replica_ids):
            raise ConfigurationError(
                "hosts cannot place every replica remotely: at least "
                "one replica must run in the scenario process")

    def _validate_obs(self, replica_ids: Tuple[str, ...]) -> None:
        if self.obs is None:
            return
        if not self.obs:
            raise ConfigurationError(
                "obs must map at least one replica (or be omitted)")
        from repro.transport.asyncio_tcp import parse_hostport
        from repro.errors import TransportError
        hosts = self.hosts or {}
        for rid, value in self.obs.items():
            if rid not in replica_ids:
                raise ConfigurationError(
                    f"obs names unknown replica {rid!r} "
                    f"(have {replica_ids})")
            if rid not in hosts:
                raise ConfigurationError(
                    f"obs[{rid!r}] has no matching hosts entry: obs "
                    f"endpoints belong to replicas another process "
                    f"serves (have hosts for "
                    f"{tuple(sorted(hosts))})")
            try:
                parse_hostport(value)
            except TransportError as exc:
                raise ConfigurationError(
                    f"obs[{rid!r}]: {exc}") from None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def latency_matrix(self) -> LatencyMatrix:
        if isinstance(self.latency, LatencyMatrix):
            return self.latency
        try:
            return NAMED_MATRICES[self.latency]
        except KeyError:
            raise ConfigurationError(
                f"unknown latency matrix {self.latency!r}; choose from "
                f"{tuple(NAMED_MATRICES)} or pass a LatencyMatrix"
            ) from None

    def netem_profile(self) -> Optional[NetemProfile]:
        """The effective netem profile: ``None`` passes through, a
        preset name resolves through :data:`repro.netem.NETEM_PRESETS`
        (key-named error on unknown names)."""
        from repro.netem import resolve_netem
        return resolve_netem(self.netem, key="netem")

    def replica_ids(self) -> Tuple[str, ...]:
        return tuple(f"r{i}" for i in range(len(self.replica_regions)))

    def client_regions(self) -> Tuple[str, ...]:
        if self.workload.client_regions is not None:
            return self.workload.client_regions
        # One client group per distinct replica region, in order.
        seen = []
        for region in self.replica_regions:
            if region not in seen:
                seen.append(region)
        return tuple(seen)

    def phase_plan(self) -> Tuple[Phase, ...]:
        """The explicit phases, or the implicit single ``main`` phase."""
        if self.phases:
            return self.phases
        duration = self.nominal_duration_ms()
        return (Phase("main", duration if duration is not None
                      else float("inf")),)

    def nominal_duration_ms(self) -> Optional[float]:
        """The declared timeline length: ``duration_ms``, else the phase
        sum, else ``None`` (closed-loop runs bound by request count)."""
        if self.duration_ms is not None:
            return self.duration_ms
        if self.phases:
            return sum(p.duration_ms for p in self.phases)
        return None

    def with_overrides(self, **changes: Any) -> "Scenario":
        """A copy with fields replaced (CLI ``--protocol``/``--seed``)."""
        return replace(self, **changes)
