"""JSON/TOML (de)serialization for scenarios and sweeps.

A spec document is a mapping with exactly one top-level table:
``{"scenario": {...}}`` or ``{"sweep": {...}}``.  The scenario table
mirrors :class:`~repro.scenario.spec.Scenario` field-for-field (nested
``workload`` table, ``phases``/``faults`` arrays of tables, fault
``type`` naming the event class); the sweep table is
``{"base": "preset-name" | {scenario table}, "grid": {...},
"zip": {...}}`` mirroring :class:`~repro.sweep.spec.SweepSpec`.

Design constraints:

- **Round-trippable**: ``loads_spec(dumps_spec(x, fmt), fmt)`` equals
  ``x`` by dataclass equality for every serializable scenario -- in
  particular every registered preset -- in both formats.
- **Errors name the offending key**: an unknown or mistyped key raises
  :class:`~repro.errors.ConfigurationError` mentioning it, so a typo'd
  hand-written spec fails with a usable message, not a stack trace.
- **No third-party dependencies**: TOML is parsed with the stdlib
  ``tomllib`` (Python 3.11+; older interpreters get a clear error for
  TOML input, JSON always works) and emitted by the minimal writer
  below, which covers exactly the shapes these documents use.

Example (``python -m repro run --spec exp.toml``)::

    [scenario]
    name = "my-crash-run"
    protocol = "ezbft"
    seed = 7

    [scenario.workload]
    mode = "closed"
    requests_per_client = 12

    [[scenario.faults]]
    type = "CrashReplica"
    at_ms = 300.0
    replica = "r1"
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.scenario import faults as fault_mod
from repro.scenario.faults import FaultEvent
from repro.scenario.spec import Phase, Scenario, WorkloadSpec
from repro.statemachine.kvstore import KVStore

__all__ = [
    "FAULT_TYPES",
    "SPEC_FORMATS",
    "scenario_to_dict",
    "scenario_from_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "spec_to_dict",
    "dumps_spec",
    "loads_spec",
    "load_spec",
    "save_spec",
]

#: Fault event classes addressable by ``type`` in spec documents.
FAULT_TYPES: Dict[str, type] = {
    cls.__name__: cls
    for cls in (fault_mod.CrashReplica, fault_mod.RecoverReplica,
                fault_mod.KillProcess, fault_mod.RestartProcess,
                fault_mod.Partition, fault_mod.Heal,
                fault_mod.SwapByzantine, fault_mod.LatencyShift,
                fault_mod.ClientChurn, fault_mod.PacketLoss,
                fault_mod.Jitter, fault_mod.BandwidthCap,
                fault_mod.Reorder)
}

SPEC_FORMATS = ("json", "toml")

#: Scenario fields that cannot be expressed in a spec document (live
#: Python objects).  Serialization requires them at their defaults;
#: deserialized scenarios always get the defaults.
_UNSERIALIZABLE = ("statemachine", "interference", "cpu", "conditions")


def _type_name(value: Any) -> str:
    return type(value).__name__


def _expect(value: Any, types: Tuple[type, ...], key: str) -> Any:
    # bool is an int subclass; a bare isinstance check would quietly
    # accept `seed = true`.
    if isinstance(value, bool) and bool not in types:
        raise ConfigurationError(
            f"spec key {key!r} must be {'/'.join(t.__name__ for t in types)}, "
            f"got bool")
    if not isinstance(value, types):
        raise ConfigurationError(
            f"spec key {key!r} must be "
            f"{'/'.join(t.__name__ for t in types)}, "
            f"got {_type_name(value)}")
    return value


def _str_tuple(value: Any, key: str) -> Tuple[str, ...]:
    _expect(value, (list, tuple), key)
    return tuple(_expect(item, (str,), f"{key}[{i}]")
                 for i, item in enumerate(value))


# ----------------------------------------------------------------------
# Scenario <-> dict
# ----------------------------------------------------------------------
def _fault_to_dict(event: FaultEvent) -> Dict[str, Any]:
    name = type(event).__name__
    if name not in FAULT_TYPES:
        raise ConfigurationError(
            f"cannot serialize custom fault event type {name!r}")
    data: Dict[str, Any] = {"type": name}
    for f in dataclasses.fields(event):
        value = getattr(event, f.name)
        if f.name == "sides":
            value = [list(side) for side in value]
        if value is None:
            continue
        data[f.name] = value
    return data


def _fault_from_dict(data: Any, key: str) -> FaultEvent:
    _expect(data, (dict,), key)
    data = dict(data)
    type_name = data.pop("type", None)
    if type_name is None:
        raise ConfigurationError(
            f"spec key {key!r} is missing the fault 'type' key")
    cls = FAULT_TYPES.get(type_name)
    if cls is None:
        raise ConfigurationError(
            f"spec key {key!r} names unknown fault type {type_name!r}; "
            f"choose from {tuple(FAULT_TYPES)}")
    known = {f.name for f in dataclasses.fields(cls)}
    for field_name in data:
        if field_name not in known:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"({type_name} accepts {tuple(sorted(known))})")
    if "sides" in data:
        sides = _expect(data["sides"], (list, tuple), f"{key}.sides")
        if len(sides) != 2:
            raise ConfigurationError(
                f"spec key {key}.sides must have exactly 2 entries, "
                f"got {len(sides)}")
        data["sides"] = tuple(
            _str_tuple(side, f"{key}.sides[{i}]")
            for i, side in enumerate(sides))
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid fault event at {key}: {exc}") from None


def _workload_to_dict(workload: WorkloadSpec) -> Dict[str, Any]:
    data: Dict[str, Any] = {}
    for f in dataclasses.fields(workload):
        value = getattr(workload, f.name)
        if value is None:
            continue  # TOML has no null; absent means default None
        if f.name == "client_regions":
            value = list(value)
        data[f.name] = value
    return data


_WORKLOAD_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "mode": (str,),
    "client_regions": (list, tuple),
    "clients_per_region": (int,),
    "requests_per_client": (int,),
    "think_time_ms": (int, float),
    "rate_per_client": (int, float),
    "max_outstanding": (int,),
    "contention": (int, float),
    "value_size": (int,),
    "warmup_requests": (int,),
    "batch_size": (int,),
    "batch_timeout_ms": (int, float),
}


def _workload_from_dict(data: Any, key: str = "scenario.workload"
                        ) -> WorkloadSpec:
    _expect(data, (dict,), key)
    kwargs: Dict[str, Any] = {}
    for field_name, value in data.items():
        if field_name not in _WORKLOAD_SCHEMA:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(accepts {tuple(sorted(_WORKLOAD_SCHEMA))})")
        qualified = f"{key}.{field_name}"
        _expect(value, _WORKLOAD_SCHEMA[field_name], qualified)
        if field_name == "client_regions":
            value = _str_tuple(value, qualified)
        kwargs[field_name] = value
    return WorkloadSpec(**kwargs)


# ----------------------------------------------------------------------
# Netem profile <-> dict
# ----------------------------------------------------------------------
def _link_model_to_dict(model: Any) -> Dict[str, Any]:
    from repro.netem.model import LinkModel
    return {f.name: getattr(model, f.name)
            for f in dataclasses.fields(LinkModel)}


_LINK_MODEL_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "delay_ms": (int, float),
    "jitter_ms": (int, float),
    "loss": (int, float),
    "duplicate": (int, float),
    "reorder": (int, float),
    "reorder_extra_ms": (int, float),
    "rate_kbps": (int, float),
    "burst_bytes": (int,),
}


def _link_model_from_dict(data: Any, key: str) -> Any:
    from repro.netem import LinkModel
    _expect(data, (dict,), key)
    kwargs: Dict[str, Any] = {}
    for field_name, value in data.items():
        if field_name not in _LINK_MODEL_SCHEMA:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(a link model accepts "
                f"{tuple(sorted(_LINK_MODEL_SCHEMA))})")
        qualified = f"{key}.{field_name}"
        _expect(value, _LINK_MODEL_SCHEMA[field_name], qualified)
        # Keep float fields floats across the round trip (TOML/JSON
        # may carry `12` for `12.0`; dataclass equality is exact on
        # type-sensitive consumers only, but float(12) == 12 anyway).
        kwargs[field_name] = value
    return LinkModel(**kwargs)


def _netem_to_dict(profile: Any) -> Dict[str, Any]:
    data: Dict[str, Any] = {
        "default": _link_model_to_dict(profile.default)}
    if profile.rules:
        data["rules"] = [
            {"src": rule.src, "dst": rule.dst,
             **_link_model_to_dict(rule.model)}
            for rule in profile.rules]
    return data


def _netem_from_dict(data: Any, key: str = "scenario.netem") -> Any:
    from repro.netem import LinkModel, LinkRule, NetemProfile
    _expect(data, (dict,), key)
    known = ("default", "rules")
    for field_name in data:
        if field_name not in known:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(accepts {known})")
    default = LinkModel()
    if "default" in data:
        default = _link_model_from_dict(data["default"],
                                        f"{key}.default")
    rules = []
    if "rules" in data:
        _expect(data["rules"], (list, tuple), f"{key}.rules")
        for i, entry in enumerate(data["rules"]):
            rule_key = f"{key}.rules[{i}]"
            _expect(entry, (dict,), rule_key)
            entry = dict(entry)
            src = _expect(entry.pop("src", "*"), (str,),
                          f"{rule_key}.src")
            dst = _expect(entry.pop("dst", "*"), (str,),
                          f"{rule_key}.dst")
            rules.append(LinkRule(
                src=src, dst=dst,
                model=_link_model_from_dict(entry, rule_key)))
    return NetemProfile(default=default, rules=tuple(rules))


def _hosts_from_dict(data: Any, key: str) -> Dict[str, str]:
    _expect(data, (dict,), key)
    return {
        _expect(rid, (str,), f"{key} key"):
            _expect(value, (str,), f"{key}.{rid}")
        for rid, value in data.items()
    }


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """The serializable dict form of ``scenario``.

    Raises :class:`ConfigurationError` if the scenario holds live
    Python objects a document cannot carry: a non-default state
    machine, interference, CPU model, network conditions, or an
    anonymous (unnamed) latency matrix.
    """
    if scenario.statemachine is not KVStore:
        raise ConfigurationError(
            "cannot serialize scenario key 'statemachine': only the "
            "default KVStore is expressible in a spec document")
    for field_name in ("interference", "cpu", "conditions"):
        if getattr(scenario, field_name) is not None:
            raise ConfigurationError(
                f"cannot serialize scenario key {field_name!r}: live "
                f"Python objects are not expressible in a spec "
                f"document")
    latency = scenario.latency
    if not isinstance(latency, str):
        from repro.scenario.spec import NAMED_MATRICES
        named = {id(matrix): name
                 for name, matrix in NAMED_MATRICES.items()}
        latency = named.get(id(latency))
        if latency is None:
            raise ConfigurationError(
                "cannot serialize scenario key 'latency': pass a named "
                "matrix (e.g. 'experiment1'), not a LatencyMatrix "
                "object")

    data: Dict[str, Any] = {
        "name": scenario.name,
        "protocol": scenario.protocol,
        "replica_regions": list(scenario.replica_regions),
        "latency": latency,
        "workload": _workload_to_dict(scenario.workload),
        "seed": scenario.seed,
        "primary_index": scenario.primary_index,
        "slow_path_timeout": scenario.slow_path_timeout,
        "retry_timeout": scenario.retry_timeout,
        "suspicion_timeout": scenario.suspicion_timeout,
        "view_change_timeout": scenario.view_change_timeout,
        "checkpoint_interval": scenario.checkpoint_interval,
        "backends": list(scenario.backends),
        "description": scenario.description,
    }
    if scenario.phases:
        data["phases"] = [{"name": p.name, "duration_ms": p.duration_ms}
                          for p in scenario.phases]
    if scenario.faults:
        data["faults"] = [_fault_to_dict(e) for e in scenario.faults]
    if scenario.duration_ms is not None:
        data["duration_ms"] = scenario.duration_ms
    if scenario.primary_region is not None:
        data["primary_region"] = scenario.primary_region
    if scenario.netem is not None:
        data["netem"] = scenario.netem \
            if isinstance(scenario.netem, str) \
            else _netem_to_dict(scenario.netem)
    if scenario.hosts is not None:
        data["hosts"] = dict(scenario.hosts)
    if scenario.obs is not None:
        data["obs"] = dict(scenario.obs)
    if scenario.durable:
        data["durable"] = True
    return data


_SCENARIO_SCHEMA: Dict[str, Tuple[type, ...]] = {
    "name": (str,),
    "protocol": (str,),
    "replica_regions": (list, tuple),
    "latency": (str,),
    "workload": (dict,),
    "phases": (list, tuple),
    "duration_ms": (int, float),
    "faults": (list, tuple),
    "seed": (int,),
    "netem": (dict, str),
    "hosts": (dict,),
    "obs": (dict,),
    "primary_region": (str,),
    "primary_index": (int,),
    "slow_path_timeout": (int, float),
    "retry_timeout": (int, float),
    "suspicion_timeout": (int, float),
    "view_change_timeout": (int, float),
    "checkpoint_interval": (int,),
    "durable": (bool,),
    "backends": (list, tuple),
    "description": (str,),
}


def scenario_from_dict(data: Any, key: str = "scenario") -> Scenario:
    """Build (and validate) a :class:`Scenario` from its dict form."""
    _expect(data, (dict,), key)
    kwargs: Dict[str, Any] = {}
    for field_name, value in data.items():
        if field_name not in _SCENARIO_SCHEMA:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(accepts {tuple(sorted(_SCENARIO_SCHEMA))})")
        qualified = f"{key}.{field_name}"
        _expect(value, _SCENARIO_SCHEMA[field_name], qualified)
        if field_name in ("replica_regions", "backends"):
            value = _str_tuple(value, qualified)
        elif field_name == "workload":
            value = _workload_from_dict(value, qualified)
        elif field_name == "phases":
            value = tuple(
                _phase_from_dict(p, f"{qualified}[{i}]")
                for i, p in enumerate(value))
        elif field_name == "faults":
            value = tuple(
                _fault_from_dict(e, f"{qualified}[{i}]")
                for i, e in enumerate(value))
        elif field_name == "netem" and isinstance(value, dict):
            value = _netem_from_dict(value, qualified)
        elif field_name in ("hosts", "obs"):
            value = _hosts_from_dict(value, qualified)
        kwargs[field_name] = value
    if "name" not in kwargs:
        raise ConfigurationError(
            f"spec table {key!r} is missing the required 'name' key")
    scenario = Scenario(**kwargs)
    scenario.validate()
    return scenario


def _phase_from_dict(data: Any, key: str) -> Phase:
    _expect(data, (dict,), key)
    known = ("name", "duration_ms")
    for field_name in data:
        if field_name not in known:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(a phase accepts {known})")
    if "name" not in data or "duration_ms" not in data:
        raise ConfigurationError(
            f"spec key {key!r} needs both 'name' and 'duration_ms'")
    return Phase(name=_expect(data["name"], (str,), f"{key}.name"),
                 duration_ms=_expect(data["duration_ms"], (int, float),
                                     f"{key}.duration_ms"))


# ----------------------------------------------------------------------
# Sweep <-> dict
# ----------------------------------------------------------------------
def sweep_to_dict(spec: Any) -> Dict[str, Any]:
    """The serializable dict form of a
    :class:`~repro.sweep.spec.SweepSpec` (string preset bases stay
    strings)."""
    base = spec.base
    data: Dict[str, Any] = {}
    if spec.name:
        data["name"] = spec.name
    data["base"] = base if isinstance(base, str) \
        else scenario_to_dict(base)
    for section, axes in (("grid", spec.grid), ("zip", spec.zipped)):
        if not axes:
            continue
        for key, values in axes.items():
            for value in values:
                if value is not None and \
                        not isinstance(value, (str, int, float, bool)):
                    raise ConfigurationError(
                        f"sweep axis {key!r} holds live Python "
                        f"objects ({_type_name(value)}); only scalar "
                        f"axes are expressible in a spec document")
        data[section] = {key: list(values)
                         for key, values in axes.items()}
    return data


def _axis_values(value: Any, key: str) -> Tuple[Any, ...]:
    _expect(value, (list, tuple), key)
    if not value:
        raise ConfigurationError(f"spec key {key!r} must be non-empty")
    out = []
    for i, item in enumerate(value):
        # None is a legal axis value (e.g. primary_region=None for the
        # leaderless arm of a zipped protocol block); JSON carries it
        # as null.  TOML cannot -- sweep_to_dict rejects it at dump
        # time with the axis named.
        if item is not None:
            _expect(item, (str, int, float, bool), f"{key}[{i}]")
        out.append(item)
    return tuple(out)


def sweep_from_dict(data: Any, key: str = "sweep"):
    """Build a :class:`~repro.sweep.spec.SweepSpec` from its dict form
    (validated structurally here, semantically at expansion)."""
    from repro.sweep.spec import SweepSpec

    _expect(data, (dict,), key)
    known = ("name", "base", "grid", "zip")
    for field_name in data:
        if field_name not in known:
            raise ConfigurationError(
                f"unknown key {field_name!r} in {key} "
                f"(accepts {known})")
    if "base" not in data:
        raise ConfigurationError(
            f"spec table {key!r} is missing the required 'base' key "
            f"(a preset name or a scenario table)")
    base = data["base"]
    if isinstance(base, dict):
        base = scenario_from_dict(base, f"{key}.base")
    else:
        _expect(base, (str,), f"{key}.base")
    grid: Dict[str, Tuple[Any, ...]] = {}
    if "grid" in data:
        table = _expect(data["grid"], (dict,), f"{key}.grid")
        for axis, values in table.items():
            grid[axis] = _axis_values(values, f"{key}.grid.{axis}")
    zipped: Dict[str, Tuple[Any, ...]] = {}
    if "zip" in data:
        table = _expect(data["zip"], (dict,), f"{key}.zip")
        for axis, values in table.items():
            zipped[axis] = _axis_values(values, f"{key}.zip.{axis}")
    name = ""
    if "name" in data:
        name = _expect(data["name"], (str,), f"{key}.name")
    return SweepSpec(base=base, grid=grid, zipped=zipped, name=name)


# ----------------------------------------------------------------------
# Documents: dumps / loads / files
# ----------------------------------------------------------------------
def spec_to_dict(spec: Union[Scenario, Any]) -> Dict[str, Any]:
    """Wrap a Scenario or SweepSpec in its one-key document form."""
    from repro.sweep.spec import SweepSpec

    if isinstance(spec, Scenario):
        return {"scenario": scenario_to_dict(spec)}
    if isinstance(spec, SweepSpec):
        return {"sweep": sweep_to_dict(spec)}
    raise ConfigurationError(
        f"cannot serialize {_type_name(spec)}: expected Scenario or "
        f"SweepSpec")


def dumps_spec(spec: Union[Scenario, Any], fmt: str = "json") -> str:
    """Serialize a Scenario or SweepSpec document to ``fmt``."""
    document = spec_to_dict(spec)
    _reject_non_finite(document, "<document root>")
    if fmt == "json":
        return json.dumps(document, indent=2, allow_nan=False) + "\n"
    if fmt == "toml":
        _reject_none_axes(document)
        return _toml_dumps(document)
    raise ConfigurationError(
        f"unknown spec format {fmt!r}; choose from {SPEC_FORMATS}")


def _reject_non_finite(value: Any, key: str) -> None:
    """Strict discipline for spec documents, both directions: no
    NaN/inf anywhere (lenient parsers accept them, strict JSON cannot
    express them, and a NaN timeout defeats every validate()
    comparison), failing with the offending key named."""
    if isinstance(value, float) and not math.isfinite(value):
        raise ConfigurationError(
            f"spec key {key!r} is non-finite ({value!r}); scenario "
            f"specs must use finite numbers")
    if isinstance(value, dict):
        for sub_key, sub_value in value.items():
            _reject_non_finite(sub_value, f"{key}.{sub_key}"
                               if key != "<document root>"
                               else str(sub_key))
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _reject_non_finite(item, f"{key}[{i}]")


def _reject_none_axes(document: Dict[str, Any]) -> None:
    """TOML has no null: fail at dump time naming the axis, not deep
    inside the writer."""
    sweep_table = document.get("sweep", {})
    for section in ("grid", "zip"):
        for axis, values in sweep_table.get(section, {}).items():
            if any(v is None for v in values):
                raise ConfigurationError(
                    f"sweep axis {axis!r} contains null, which TOML "
                    f"cannot express; write this sweep as JSON")


def _parse_document(data: Any) -> Union[Scenario, Any]:
    _expect(data, (dict,), "<document root>")
    keys = set(data)
    if keys == {"scenario"}:
        return scenario_from_dict(data["scenario"])
    if keys == {"sweep"}:
        return sweep_from_dict(data["sweep"])
    raise ConfigurationError(
        f"a spec document needs exactly one top-level table, "
        f"'scenario' or 'sweep'; got {tuple(sorted(keys)) or '()'}")


def loads_spec(text: str, fmt: str = "json") -> Union[Scenario, Any]:
    """Parse a spec document from ``text`` (``fmt``: json or toml)."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"invalid JSON spec: {exc}") \
                from None
    elif fmt == "toml":
        try:
            import tomllib
        except ImportError:
            raise ConfigurationError(
                "TOML specs need Python 3.11+ (stdlib tomllib); "
                "use JSON on this interpreter") from None
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML spec: {exc}") \
                from None
    else:
        raise ConfigurationError(
            f"unknown spec format {fmt!r}; choose from {SPEC_FORMATS}")
    # json.loads accepts NaN/Infinity and tomllib accepts 'nan'/'inf';
    # a NaN timeout would load silently and defeat every comparison in
    # Scenario.validate, so reject here with the key named (mirroring
    # dumps_spec).
    _reject_non_finite(data, "<document root>")
    return _parse_document(data)


def _format_of(path: str) -> str:
    lowered = path.lower()
    if lowered.endswith(".json"):
        return "json"
    if lowered.endswith(".toml"):
        return "toml"
    raise ConfigurationError(
        f"cannot infer spec format of {path!r}: expected a .json or "
        f".toml extension")


def load_spec(path: str) -> Union[Scenario, Any]:
    """Load a Scenario or SweepSpec from a ``.json``/``.toml`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return loads_spec(text, _format_of(path))


def save_spec(spec: Union[Scenario, Any], path: str) -> None:
    """Write a Scenario or SweepSpec to a ``.json``/``.toml`` file."""
    # Serialize before opening: a failed dump must not truncate an
    # existing spec file.
    text = dumps_spec(spec, _format_of(path))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


# ----------------------------------------------------------------------
# Minimal TOML writer
# ----------------------------------------------------------------------
def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Keep floats floats across the round trip ("10" would load as
        # int; equality still holds but the document would shift type).
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # TOML basic strings == JSON strings
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise ConfigurationError(
        f"cannot express {_type_name(value)} in TOML")


def _toml_table(name: str, table: Dict[str, Any],
                lines: List[str]) -> None:
    scalars = {k: v for k, v in table.items()
               if not isinstance(v, dict) and not
               (isinstance(v, (list, tuple)) and v and
                isinstance(v[0], dict))}
    subtables = {k: v for k, v in table.items() if isinstance(v, dict)}
    table_arrays = {k: v for k, v in table.items()
                    if isinstance(v, (list, tuple)) and v and
                    isinstance(v[0], dict)}
    if name:
        lines.append(f"[{name}]")
    for key, value in scalars.items():
        lines.append(f"{key} = {_toml_scalar(value)}")
    for key, value in subtables.items():
        lines.append("")
        _toml_table(f"{name}.{key}" if name else key, value, lines)
    for key, value in table_arrays.items():
        for item in value:
            lines.append("")
            lines.append(f"[[{name}.{key}]]" if name else f"[[{key}]]")
            for sub_key, sub_value in item.items():
                lines.append(f"{sub_key} = {_toml_scalar(sub_value)}")


def _toml_dumps(document: Dict[str, Any]) -> str:
    lines: List[str] = []
    for key, value in document.items():
        if not isinstance(value, dict):
            raise ConfigurationError(
                f"top-level spec key {key!r} must be a table")
        _toml_table(key, value, lines)
    return "\n".join(lines) + "\n"
