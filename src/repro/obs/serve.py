"""ServeSession: a served replica subset with live observability.

``python -m repro serve`` used to be a bare cluster that parked on an
event forever; this wraps the same :func:`build_tcp_cluster` subset
with the full obs surface:

- one process-wide :class:`MetricsRegistry`, with
  :class:`LiveInstruments` attached to every hosted replica, its
  transport node, and the shared netem shaper;
- pull gauges (``repro_replica_stat``, ``repro_checkpoint_lag``,
  ``repro_uptime_ms``) refreshed by a collector at scrape time;
- per-replica :class:`ObsServer` endpoints (from the scenario's
  ``[obs]`` table) serving ``/metrics``, ``/healthz`` and the signed
  ``/control`` channel backed by a serve-side
  :class:`TcpFaultInjector`;
- graceful drain on SIGTERM/SIGINT: stop accepting scrapes/control,
  flush in-flight sends, write a final metrics+health snapshot to
  disk, close every socket.

The session is plain asyncio with no CLI coupling, so tests drive it
in-process (obs ports may be overridden to OS-assigned ones).
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.storage import atomic_write_json
from repro.obs.control import (
    DEFAULT_CONTROL_SEED,
    ControlChannel,
    control_keypair,
)
from repro.obs.health import HealthMonitor
from repro.obs.http import ObsServer
from repro.obs.instruments import LiveInstruments
from repro.obs.metrics import SNAPSHOT_SCHEMA_VERSION, MetricsRegistry

logger = logging.getLogger("repro.obs.serve")

#: How long drain waits for in-flight send tasks before closing.
DRAIN_FLUSH_TIMEOUT_S = 2.0


class ServeSession:
    """One process's hosted replicas plus their obs endpoints.

    ``replicas`` must all be pinned in the scenario's ``hosts`` table.
    Obs endpoints come from the scenario's ``obs`` table;
    ``obs_addresses`` overrides them (tests bind port 0).  A replica
    with no obs entry is hosted without an endpoint.
    """

    def __init__(self, scenario: Any, replicas: Tuple[str, ...],
                 snapshot_path: Optional[str] = None,
                 obs_addresses: Optional[
                     Dict[str, Tuple[str, int]]] = None,
                 control_seed: bytes = DEFAULT_CONTROL_SEED,
                 data_dir: Optional[str] = None,
                 trace: bool = False,
                 trace_sample_rate: float = 1.0,
                 trace_ring: Optional[int] = None) -> None:
        from repro.transport.asyncio_tcp import parse_hostport

        scenario.validate()
        self.scenario = scenario
        self.replicas = tuple(replicas)
        if not self.replicas:
            raise ConfigurationError(
                "serve needs at least one replica id")
        hosts = dict(scenario.hosts or {})
        for rid in self.replicas:
            if rid not in hosts:
                raise ConfigurationError(
                    f"replica {rid!r} has no hosts entry in scenario "
                    f"{scenario.name!r}; serve only hosts replicas "
                    f"the spec pins to an address "
                    f"(have {tuple(sorted(hosts))})")
        self.snapshot_path = snapshot_path
        #: Root directory for per-replica WAL + snapshot stores.  When
        #: set, every hosted replica persists its protocol evidence and
        #: recovers from disk on start -- the restartable half of the
        #: kill -9 story.
        self.data_dir = data_dir
        self._control_seed = control_seed
        if obs_addresses is not None:
            self._obs_addresses = dict(obs_addresses)
        else:
            self._obs_addresses = {
                rid: parse_hostport(value)
                for rid, value in (scenario.obs or {}).items()
                if rid in self.replicas}

        #: Live tracing: spans land in a bounded ring (default
        #: :data:`repro.trace.tracer.DEFAULT_RING_SPANS`) served on
        #: each endpoint's ``GET /trace``, so memory stays flat over
        #: weeks of traffic.  Off by default -- the hot path keeps its
        #: no-op seams.
        self.trace = trace
        self.trace_sample_rate = trace_sample_rate
        self.trace_ring = trace_ring
        self.tracer: Optional[Any] = None
        self._trace_collector: Optional[Any] = None

        self.registry = MetricsRegistry()
        self.cluster: Optional[Any] = None
        self.injector: Optional[Any] = None
        self.channel: Optional[ControlChannel] = None
        self.monitors: Dict[str, HealthMonitor] = {}
        self.servers: Dict[str, ObsServer] = {}
        self._live: Dict[str, LiveInstruments] = {}
        self._storages: Dict[str, Any] = {}
        self._start_ms = 0.0
        self._now_ms = lambda: 0.0

    # ------------------------------------------------------------------
    @property
    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        """Started obs endpoints per hosted replica (real ports)."""
        return {rid: server.address
                for rid, server in self.servers.items()}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        from repro.scenario.faults import TcpFaultInjector
        from repro.scenario.runner import build_tcp_cluster

        loop = asyncio.get_running_loop()
        self._now_ms = lambda: loop.time() * 1000.0
        self._start_ms = self._now_ms()

        self.cluster = build_tcp_cluster(
            self.scenario, start_replicas=self.replicas)
        await self.cluster.start()
        if self.data_dir or self.scenario.durable:
            # Attach the on-disk store and recover whatever a prior
            # incarnation left behind *before* the banner announces
            # readiness -- peers must never reach a replica that has
            # not caught up with its own disk yet.  Anything past the
            # WAL's truncation point arrives later through the normal
            # state-transfer path.
            import os
            from repro.storage import ReplicaStorage
            root = self.data_dir or os.path.join(
                ".repro-data", self.scenario.name)
            for rid in self.replicas:
                replica = self.cluster.replicas[rid]
                if not hasattr(replica, "attach_storage"):
                    continue
                storage = ReplicaStorage(root, rid)
                self._storages[rid] = storage
                replica.attach_storage(storage)
                summary = replica.recover_from_storage()
                logger.info(
                    "recovered %s from %s", rid, storage.root,
                    extra={"snapshot_watermark":
                           summary.snapshot_watermark,
                           "records_replayed":
                           summary.records_replayed})
        self.injector = TcpFaultInjector(
            self.cluster, netem_seed=self.scenario.seed)
        self.injector.install_filters()

        if self.trace:
            from repro.trace import ActiveTracer, TraceCollector
            from repro.trace.live import wall_clock_ms
            from repro.trace.tracer import DEFAULT_RING_SPANS
            self._trace_collector = TraceCollector(
                max_spans=self.trace_ring or DEFAULT_RING_SPANS)
            # Epoch-based clock: a multi-process deployment's spans
            # land on one comparable timeline, and incoming TRACED
            # frames from a tracing scenario client slot right in.
            self.tracer = ActiveTracer(
                wall_clock_ms, collector=self._trace_collector,
                sample_rate=self.trace_sample_rate)
            for rid in self.replicas:
                self.cluster.nodes[rid].tracer = self.tracer
                replica = self.cluster.replicas[rid]
                attach = getattr(replica, "attach_tracer", None)
                if attach is not None:
                    attach(self.tracer)

        for rid in self.replicas:
            live = LiveInstruments(
                self.registry, replica=rid,
                protocol=self.scenario.protocol, now_ms=self._now_ms)
            self._live[rid] = live
            self.cluster.replicas[rid].instruments = live
            self.cluster.nodes[rid].instruments = live
        if self.cluster.shaper is not None and self._live:
            # One shared shaper: link series carry src->dst labels, so
            # any hosted replica's instrument set can record them.
            self.cluster.shaper.instruments = \
                next(iter(self._live.values()))

        self._uptime = self.registry.gauge(
            "repro_uptime_ms", "Time since this serve session started",
            unit="ms")
        self._stat_gauge = self.registry.gauge(
            "repro_replica_stat",
            "Raw replica protocol stat counters, refreshed per scrape",
            labels=("replica", "stat"))
        self._lag_gauge = self.registry.gauge(
            "repro_checkpoint_lag",
            "Executions past the latest stable checkpoint watermark",
            labels=("replica",))
        self.registry.register_collector(self._collect)

        self.channel = ControlChannel(
            self._apply_fault, self.cluster.replica_ids,
            keypair=control_keypair(self._control_seed),
            on_applied=self._on_control)
        for rid in self.replicas:
            self.monitors[rid] = HealthMonitor(
                rid, self.scenario.protocol,
                self.cluster.replicas[rid], self.cluster.nodes[rid],
                self.cluster.config, self._now_ms,
                is_crashed=lambda r=rid: self.injector.is_crashed(r))
        for rid, (host, port) in sorted(self._obs_addresses.items()):
            server = ObsServer(
                self.registry, healthz=self.monitors[rid].healthz,
                control=self.channel.handle,
                trace=self.trace_export if self.trace else None,
                host=host, port=port)
            await server.start()
            self.servers[rid] = server
        logger.info("serving %s", ", ".join(self.replicas),
                    extra={"obs_endpoints": {
                        rid: f"{h}:{p}" for rid, (h, p)
                        in self.endpoints.items()}})

    # ------------------------------------------------------------------
    def _apply_fault(self, event: Any) -> None:
        self.injector.apply(event)
        # SwapByzantine rebuilds the replica object; re-attach its
        # instrument set so the byzantine stand-in keeps reporting.
        for rid, live in self._live.items():
            replica = self.cluster.replicas[rid]
            if replica.instruments is not live:
                replica.instruments = live

    def _on_control(self, event_name: str) -> None:
        for live in self._live.values():
            live.control_event(event_name)
            break

    def _collect(self) -> None:
        self._uptime.set(self._now_ms() - self._start_ms)
        for rid in self.replicas:
            replica = self.cluster.replicas[rid]
            stats = getattr(replica, "stats", {})
            for stat in sorted(stats):
                self._stat_gauge.labels(rid, stat).set(stats[stat])
            executed = int(stats.get("executed", 0))
            log = getattr(replica, "checkpoint_log", None)
            watermark = int(log[-1][0]) if log else 0
            self._lag_gauge.labels(rid).set(
                max(0, executed - watermark))

    # ------------------------------------------------------------------
    def trace_export(self) -> Dict[str, Any]:
        """The ring's current span export (``GET /trace`` body)."""
        from repro.trace import export_spans

        collector = self._trace_collector
        if collector is None:
            return export_spans(())
        return export_spans(collector.spans(),
                            dropped=collector.dropped)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The drain-time snapshot: metrics plus final health."""
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "scenario": self.scenario.name,
            "protocol": self.scenario.protocol,
            "replicas": list(self.replicas),
            "metrics": self.registry.snapshot(),
            "health": {rid: monitor.healthz()
                       for rid, monitor in sorted(
                           self.monitors.items())},
        }

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush, snapshot, close."""
        for server in self.servers.values():
            await server.stop()
        if self.cluster is not None:
            for node in self.cluster.nodes.values():
                await node.flush_sends(timeout=DRAIN_FLUSH_TIMEOUT_S)
        if self.snapshot_path:
            # tmp + os.replace: a crash mid-write must never leave a
            # truncated snapshot where the previous good one stood.
            atomic_write_json(self.snapshot_path, self.snapshot(),
                              indent=2, sort_keys=True)
            logger.info("wrote final snapshot",
                        extra={"path": self.snapshot_path})
        if self.cluster is not None:
            await self.cluster.stop()
        for storage in self._storages.values():
            storage.close()
        self._storages.clear()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    async def run(self, on_started: Optional[Any] = None) -> None:
        """Start, serve until SIGTERM/SIGINT (or cancellation), drain.
        ``on_started()`` fires once the cluster and obs endpoints are
        up (the CLI prints its banner there)."""
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        # Handlers go in before the banner: the moment ``on_started``
        # announces the endpoints, a SIGTERM must drain, not kill.
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):
                pass  # e.g. non-main thread or unsupported platform
        try:
            await self.start()
            if on_started is not None:
                on_started()
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.drain()
