"""The signed ``/control`` channel: fault events for remote replicas.

Multi-process deployments used to reject any replica-targeted fault
naming a replica hosted in another process -- its handler lived out of
reach.  The control channel closes that gap: the scenario process
serializes the fault event (the same dict form spec files use), signs
the envelope, and POSTs it to the serving process's obs endpoint,
whose :class:`ControlChannel` verifies and applies it through the
local :class:`~repro.scenario.faults.TcpFaultInjector`.

Authentication rides the deployment's existing deterministic key
derivation: both processes derive the same HMAC key for the reserved
``obs-control`` identity from the shared cluster seed, exactly like
replica/client keys.  Envelopes carry a random nonce; replays are
rejected (409), bad signatures are rejected (403), and events the TCP
injector cannot apply are rejected (422) -- each with the offending
detail named, mirroring the spec loader's error discipline.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional, Tuple

from repro.crypto.keys import KeyPair
from repro.errors import ConfigurationError

#: Envelope format version.
CONTROL_SCHEMA_VERSION = 1

#: The reserved node identity whose derived key signs control traffic.
CONTROL_IDENTITY = "obs-control"

#: The deterministic key-derivation seed TCP deployments share.
DEFAULT_CONTROL_SEED = b"tcp-demo"


def control_keypair(seed: bytes = DEFAULT_CONTROL_SEED) -> KeyPair:
    """The control-channel signing key for a deployment seed.  Every
    process of one deployment derives the same key, so the serving
    side can verify without any key exchange."""
    return KeyPair.generate(CONTROL_IDENTITY, seed=seed)


def _canonical(envelope: Dict[str, Any]) -> bytes:
    """The byte string the MAC covers: everything but the mac itself,
    canonically encoded."""
    unsigned = {k: v for k, v in envelope.items() if k != "mac"}
    return json.dumps(unsigned, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def sign_event(event: Any, keypair: KeyPair,
               nonce: Optional[str] = None) -> bytes:
    """Serialize + sign one fault event into a POST body."""
    from repro.scenario.loader import _fault_to_dict

    envelope: Dict[str, Any] = {
        "v": CONTROL_SCHEMA_VERSION,
        "nonce": nonce if nonce is not None else os.urandom(16).hex(),
        "event": _fault_to_dict(event),
    }
    envelope["mac"] = keypair.mac(_canonical(envelope))
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


class ControlChannel:
    """Server side: verify an envelope and apply its event locally.

    ``apply`` is the local fault sink -- normally the serve-side
    :meth:`TcpFaultInjector.apply`.  ``on_applied`` (if given) fires
    after a successful apply, e.g. to bump the control-event counter.
    """

    #: Replay-protection window: how many recent nonces are remembered.
    #: A long-lived serve process must not leak one set entry per signed
    #: request forever; evicting insertion-order keeps memory constant
    #: while still 409-ing any replay within the last
    #: ``MAX_SEEN_NONCES`` requests (a replay older than that also has
    #: to beat the 16-byte-random-nonce birthday odds to matter).
    MAX_SEEN_NONCES = 4096

    def __init__(self, apply: Callable[[Any], None],
                 replica_ids: Tuple[str, ...],
                 keypair: Optional[KeyPair] = None,
                 on_applied: Optional[Callable[[str], None]] = None
                 ) -> None:
        from collections import OrderedDict

        self._apply = apply
        self._replica_ids = tuple(replica_ids)
        self._keypair = keypair or control_keypair()
        self._on_applied = on_applied
        self._seen_nonces: "OrderedDict[str, None]" = OrderedDict()

    def handle(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        """Process one POST body; returns ``(http_status, payload)``."""
        try:
            envelope = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid control envelope: {exc}"}
        if not isinstance(envelope, dict):
            return 400, {"error": "control envelope must be an object"}
        missing = [k for k in ("v", "nonce", "event", "mac")
                   if k not in envelope]
        if missing:
            return 400, {"error": f"control envelope is missing "
                                  f"{missing}"}
        if envelope["v"] != CONTROL_SCHEMA_VERSION:
            return 400, {"error": f"unsupported control schema "
                                  f"version {envelope['v']!r} "
                                  f"(speak {CONTROL_SCHEMA_VERSION})"}
        expected = self._keypair.mac(_canonical(envelope))
        import hmac as _hmac
        if not isinstance(envelope["mac"], str) or \
                not _hmac.compare_digest(expected, envelope["mac"]):
            return 403, {"error": "control envelope signature does "
                                  "not verify"}
        nonce = envelope["nonce"]
        if nonce in self._seen_nonces:
            return 409, {"error": f"control nonce {nonce!r} was "
                                  f"already used (replay?)"}
        self._seen_nonces[nonce] = None
        while len(self._seen_nonces) > self.MAX_SEEN_NONCES:
            self._seen_nonces.popitem(last=False)

        from repro.scenario.faults import TCP_SUPPORTED
        from repro.scenario.loader import _fault_from_dict
        try:
            event = _fault_from_dict(envelope["event"], "control.event")
            if not isinstance(event, TCP_SUPPORTED):
                raise ConfigurationError(
                    f"fault event {type(event).__name__} is not "
                    f"supported on the tcp backend")
            event.validate(self._replica_ids)
        except ConfigurationError as exc:
            return 422, {"error": str(exc)}
        try:
            self._apply(event)
        except Exception as exc:  # surfaced to the caller, not raised
            return 500, {"error": f"applying "
                                  f"{type(event).__name__}: {exc}"}
        name = type(event).__name__
        if self._on_applied is not None:
            self._on_applied(name)
        return 200, {"applied": True, "event": name,
                     "detail": event.describe()}


class ControlClient:
    """Scenario-process side: sign and deliver events to an endpoint."""

    def __init__(self, seed: bytes = DEFAULT_CONTROL_SEED) -> None:
        self._keypair = control_keypair(seed)

    async def send(self, host: str, port: int, event: Any,
                   timeout: float = 5.0) -> Dict[str, Any]:
        """POST one signed event; raises on any non-200 answer.

        Every failure mode -- refused connection, timeout, malformed
        response -- names the target endpoint, so a forwarded fault
        that never landed is attributable from the error alone.
        """
        import asyncio

        from repro.errors import TransportError
        from repro.obs.http import http_request

        body = sign_event(event, self._keypair)
        try:
            status, raw = await http_request(host, port, "/control",
                                             method="POST", body=body,
                                             timeout=timeout)
        except (OSError, asyncio.TimeoutError, TransportError) as exc:
            detail = str(exc) or type(exc).__name__
            raise TransportError(
                f"POST /control on {host}:{port} "
                f"({type(event).__name__}) failed: {detail}") from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            payload = {"error": raw[:200].decode("latin-1")}
        if status != 200:
            raise ConfigurationError(
                f"control endpoint {host}:{port} rejected "
                f"{type(event).__name__} ({status}): "
                f"{payload.get('error', payload)}")
        return payload
