"""Metrics primitives: counters, gauges, histograms, one registry.

Golden-signal observability for live deployments needs exactly three
instrument shapes, and nothing here may pull in a dependency:

- :class:`Counter` -- monotonically increasing event counts
  (commits, executions, dropped frames).
- :class:`Gauge` -- point-in-time values (checkpoint lag, uptime),
  usually refreshed by a registered *collector* right before a scrape.
- :class:`Histogram` -- value distributions over **pinned** bucket
  boundaries (request latency).  Buckets are part of the metric's
  schema: dashboards and the golden exposition tests rely on them
  never drifting, so the default boundaries live in one tuple here.

Every metric is a *family*: it declares its label names up front and
hands out children per label-value tuple via :meth:`labels`.  Hot
paths bind children once at setup (an attribute holding the child)
so recording is a couple of float ops -- no dict lookup, no string
formatting.

The registry renders two schema-stable forms:

- :meth:`MetricsRegistry.snapshot` -- a plain dict (sorted families,
  sorted samples) for ``/metrics.json``, drain-time snapshots and
  sweep scraping.  ``schema_version`` guards consumers.
- :meth:`MetricsRegistry.to_prometheus` -- the text exposition format
  for ``/metrics`` (``# HELP`` / ``# TYPE`` headers, ``_bucket`` /
  ``_sum`` / ``_count`` histogram series with cumulative ``le``
  labels).
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Version tag carried by every snapshot; bump when the snapshot
#: *structure* (not the metric set) changes shape.
SNAPSHOT_SCHEMA_VERSION = 1

#: Pinned latency bucket boundaries in milliseconds.  These are part
#: of the exposition schema -- the golden tests pin them -- so widen
#: them deliberately, never casually.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigurationError(
            f"invalid metric name {name!r}: must match "
            f"[a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


def _check_labels(label_names: Sequence[str],
                  metric: str) -> Tuple[str, ...]:
    names = tuple(label_names)
    for label in names:
        if not _LABEL_RE.match(label):
            raise ConfigurationError(
                f"invalid label name {label!r} on metric {metric!r}")
    if len(set(names)) != len(names):
        raise ConfigurationError(
            f"duplicate label names on metric {metric!r}: {names}")
    return names


def _fmt_value(value: float) -> str:
    """Exposition value formatting: integers stay integral."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class _CounterChild:
    """One (label-values) series of a counter family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; inc({amount}) is not allowed")
        self.value += amount


class _GaugeChild:
    """One (label-values) series of a gauge family."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    """One (label-values) series of a histogram family."""

    __slots__ = ("_bounds", "counts", "count", "sum")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self._bounds = bounds
        #: Per-bucket (non-cumulative) counts; exposition cumulates.
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self._bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le, cumulative count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket in zip(self._bounds, self.counts):
            running += bucket
            out.append((_fmt_value(bound), running))
        out.append(("+Inf", self.count))
        return out


class _Family:
    """Shared family machinery: label-keyed children."""

    kind = ""
    _child_cls: type = object

    def __init__(self, name: str, help: str = "",
                 unit: str = "",
                 label_names: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.unit = unit
        self.label_names = _check_labels(label_names, name)
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        return self._child_cls()

    def labels(self, *values: str) -> Any:
        """The child for one label-value tuple, created on first use.
        Hot paths call this once at setup and keep the child."""
        if len(values) != len(self.label_names):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels "
                f"{self.label_names}, got {len(values)} value(s)")
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _unlabeled(self) -> Any:
        if self.label_names:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled "
                f"({self.label_names}); use .labels(...)")
        return self.labels()

    def _sorted_children(self):
        return sorted(self._children.items())

    def _label_str(self, values: Tuple[str, ...]) -> str:
        if not self.label_names:
            return ""
        pairs = ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, values))
        return "{" + pairs + "}"


class Counter(_Family):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def snapshot_samples(self) -> List[Dict[str, Any]]:
        return [{"labels": dict(zip(self.label_names, key)),
                 "value": child.value}
                for key, child in self._sorted_children()]

    def expose(self, lines: List[str]) -> None:
        for key, child in self._sorted_children():
            lines.append(f"{self.name}{self._label_str(key)} "
                         f"{_fmt_value(child.value)}")


class Gauge(_Family):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    snapshot_samples = Counter.snapshot_samples
    expose = Counter.expose


class Histogram(_Family):
    kind = "histogram"

    def __init__(self, name: str, help: str = "", unit: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
                 ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly "
                f"increasing, got {bounds}")
        super().__init__(name, help=help, unit=unit,
                         label_names=label_names)
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    def snapshot_samples(self) -> List[Dict[str, Any]]:
        return [{"labels": dict(zip(self.label_names, key)),
                 "count": child.count,
                 "sum": child.sum,
                 "buckets": dict(child.cumulative())}
                for key, child in self._sorted_children()]

    def expose(self, lines: List[str]) -> None:
        for key, child in self._sorted_children():
            base = self._label_str(key)
            for le, running in child.cumulative():
                if base:
                    labels = base[:-1] + f',le="{le}"}}'
                else:
                    labels = f'{{le="{le}"}}'
                lines.append(f"{self.name}_bucket{labels} {running}")
            lines.append(f"{self.name}_sum{base} "
                         f"{_fmt_value(child.sum)}")
            lines.append(f"{self.name}_count{base} {child.count}")


class MetricsRegistry:
    """All of one process's metric families, plus pull collectors.

    A *collector* is a zero-argument callable invoked right before
    every snapshot/exposition; it refreshes pull-style gauges (replica
    stats, checkpoint lag, uptime) so scrape output reflects the
    moment of the scrape without per-event bookkeeping.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family) or \
                    existing.label_names != family.label_names:
                raise ConfigurationError(
                    f"metric {family.name!r} already registered with a "
                    f"different type or label set")
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", unit: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(
            Counter(name, help=help, unit=unit, label_names=labels))

    def gauge(self, name: str, help: str = "", unit: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(
            Gauge(name, help=help, unit=unit, label_names=labels))

    def histogram(self, name: str, help: str = "", unit: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
                  ) -> Histogram:
        family = self._register(
            Histogram(name, help=help, unit=unit, label_names=labels,
                      buckets=buckets))
        if isinstance(family, Histogram) and \
                family.buckets != tuple(float(b) for b in buckets):
            raise ConfigurationError(
                f"histogram {name!r} already registered with buckets "
                f"{family.buckets}")
        return family

    def register_collector(self, fn: Callable[[], None]) -> None:
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Schema-stable dict form (families and samples sorted)."""
        self.collect()
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "metrics": [
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "unit": family.unit,
                    "label_names": list(family.label_names),
                    "samples": family.snapshot_samples(),
                }
                for _, family in sorted(self._families.items())
            ],
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for _, family in sorted(self._families.items()):
            help_text = family.help
            if family.unit:
                help_text = (f"{help_text} [{family.unit}]"
                             if help_text else f"[{family.unit}]")
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(help_text)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            family.expose(lines)
        return "\n".join(lines) + "\n"
