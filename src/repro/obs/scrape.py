"""Scraping live obs endpoints into report-shaped stats.

Multi-process runs leave the scenario process blind to remote
replicas' internals: their ``replica_stats`` used to be reported
empty.  With each served process exposing ``/metrics.json``, the
runner (and the sweep runner above it) can pull the same
``repro_replica_stat`` gauge samples the serve loop refreshes per
scrape, and fold them into the report exactly where locally-hosted
replica stats go.

:class:`ScrapeConfig` + :func:`sample_metrics` are the periodic
flavour: the sweep runner ships a (picklable) config into each cell's
worker process, the scenario runner samples every ``interval_s``
during the run, and the time series folds into the sweep report --
dashboards over sweep time without in-process recorders.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

logger = logging.getLogger("repro.obs.scrape")

#: The pull-gauge family the serve loop maintains per hosted replica.
REPLICA_STAT_FAMILY = "repro_replica_stat"


@dataclass(frozen=True)
class ScrapeConfig:
    """Periodic ``/metrics.json`` sampling during a run.

    Plain frozen floats so sweep workers can unpickle it; endpoints
    are *not* part of the config -- each cell scrapes whatever its
    scenario's ``obs`` table pins, so one config serves a whole grid.
    """

    #: Seconds between samples.
    interval_s: float = 1.0
    #: Per-endpoint fetch timeout; a slow endpoint must not stall the
    #: sampler past the next tick.
    timeout_s: float = 2.0


def replica_stats_from_snapshot(snapshot: Mapping[str, Any],
                                replica_id: str) -> Dict[str, int]:
    """Extract one replica's stat dict from a metrics snapshot.

    Returns ``{}`` when the snapshot carries no samples for that
    replica (e.g. the endpoint hosts different replicas).
    """
    stats: Dict[str, int] = {}
    for family in snapshot.get("metrics", ()):
        if family.get("name") != REPLICA_STAT_FAMILY:
            continue
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            if labels.get("replica") != replica_id:
                continue
            stat = labels.get("stat")
            if stat:
                stats[stat] = int(sample.get("value", 0))
    return stats


async def scrape_replica_stats(
        endpoints: Mapping[str, Tuple[str, int]],
        timeout: float = 5.0,
        errors: Optional[List[str]] = None,
) -> Dict[str, Optional[Dict[str, int]]]:
    """Fetch ``/metrics.json`` from each replica's obs endpoint.

    ``endpoints`` maps replica id to ``(host, port)``.  Unreachable
    endpoints yield ``None`` for that replica rather than failing the
    whole scrape -- a dead node is a finding, not an error -- but each
    failure is logged (and appended to ``errors`` when given) naming
    the endpoint it came from, so "which node went dark" never has to
    be reverse-engineered from a bare counter.
    """
    import asyncio

    from repro.obs.http import fetch_json

    async def _one(rid: str, host: str, port: int
                   ) -> Tuple[str, Optional[Dict[str, int]]]:
        try:
            snapshot = await fetch_json(host, port, "/metrics.json",
                                        timeout=timeout)
        except Exception as exc:
            detail = (f"scraping {rid}: GET /metrics.json on "
                      f"{host}:{port} failed: {exc}")
            logger.warning(detail)
            if errors is not None:
                errors.append(detail)
            return rid, None
        return rid, replica_stats_from_snapshot(snapshot, rid)

    results = await asyncio.gather(
        *(_one(rid, host, port)
          for rid, (host, port) in sorted(endpoints.items())))
    return dict(results)


async def sample_metrics(
        endpoints: Mapping[str, Tuple[str, int]],
        timeout: float = 2.0,
) -> Dict[str, Optional[Dict[str, int]]]:
    """One periodic sample: per-replica stat dicts (``None`` = the
    endpoint did not answer).  A thin alias over
    :func:`scrape_replica_stats` kept separate so periodic samplers
    and the end-of-run fold can diverge later without call-site
    churn."""
    return await scrape_replica_stats(endpoints, timeout=timeout)
