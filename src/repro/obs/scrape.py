"""Scraping live obs endpoints into report-shaped stats.

Multi-process runs leave the scenario process blind to remote
replicas' internals: their ``replica_stats`` used to be reported
empty.  With each served process exposing ``/metrics.json``, the
runner (and the sweep runner above it) can pull the same
``repro_replica_stat`` gauge samples the serve loop refreshes per
scrape, and fold them into the report exactly where locally-hosted
replica stats go.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

#: The pull-gauge family the serve loop maintains per hosted replica.
REPLICA_STAT_FAMILY = "repro_replica_stat"


def replica_stats_from_snapshot(snapshot: Mapping[str, Any],
                                replica_id: str) -> Dict[str, int]:
    """Extract one replica's stat dict from a metrics snapshot.

    Returns ``{}`` when the snapshot carries no samples for that
    replica (e.g. the endpoint hosts different replicas).
    """
    stats: Dict[str, int] = {}
    for family in snapshot.get("metrics", ()):
        if family.get("name") != REPLICA_STAT_FAMILY:
            continue
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            if labels.get("replica") != replica_id:
                continue
            stat = labels.get("stat")
            if stat:
                stats[stat] = int(sample.get("value", 0))
    return stats


async def scrape_replica_stats(
        endpoints: Mapping[str, Tuple[str, int]],
        timeout: float = 5.0,
) -> Dict[str, Optional[Dict[str, int]]]:
    """Fetch ``/metrics.json`` from each replica's obs endpoint.

    ``endpoints`` maps replica id to ``(host, port)``.  Unreachable
    endpoints yield ``None`` for that replica rather than failing the
    whole scrape -- a dead node is a finding, not an error.
    """
    import asyncio

    from repro.obs.http import fetch_json

    async def _one(rid: str, host: str, port: int
                   ) -> Tuple[str, Optional[Dict[str, int]]]:
        try:
            snapshot = await fetch_json(host, port, "/metrics.json",
                                        timeout=timeout)
        except Exception:
            return rid, None
        return rid, replica_stats_from_snapshot(snapshot, rid)

    results = await asyncio.gather(
        *(_one(rid, host, port)
          for rid, (host, port) in sorted(endpoints.items())))
    return dict(results)
