"""The instrumentation seam: no-op by default, live under ``serve``.

Hot paths (replica commit/execute, owner changes, transport frames,
the netem shaper) call one-argument methods on an ``instruments``
attribute.  The default is the module-level :data:`NULL` singleton
whose every method is ``pass`` -- a disabled deployment pays one
attribute load and an empty call at *protocol event* frequency (not
per message), which the bench baseline gate verifies stays in the
noise.  Truly per-frame sites (transport dispatch, shaper plans)
additionally guard on :attr:`Instruments.enabled` so the disabled
path is a single attribute test.

``repro serve`` swaps in a :class:`LiveInstruments` that binds metric
children from a shared :class:`~repro.obs.metrics.MetricsRegistry`
once at construction, so recording an event is a float add.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
)


class Instruments:
    """No-op instrument set: the default for every seam.

    Subclasses override what they measure; sites never check for
    ``None``, they just call.  Keep every method argument-cheap --
    plain scalars already at hand, no formatting at the call site.
    """

    #: Per-frame sites check this before calling (branch beats call).
    enabled = False

    def commit(self, path: str) -> None:
        """A command committed (``path`` is ``"fast"`` or ``"slow"``)."""

    def execute(self) -> None:
        """One command executed against the state machine."""

    def request_latency(self, latency_ms: float) -> None:
        """A client-observed request completed in ``latency_ms``."""

    def owner_change(self) -> None:
        """An owner-change vote started (ezBFT-shaped protocols)."""

    def view_change(self) -> None:
        """A view change completed (primary-based protocols)."""

    def checkpoint_stable(self, watermark: int) -> None:
        """A checkpoint reached a stability quorum at ``watermark``."""

    def frame_received(self) -> None:
        """One transport frame decoded and dispatched."""

    def frame_sent(self) -> None:
        """One transport frame written to a socket."""

    def frame_dropped(self) -> None:
        """One transport frame dropped (unknown peer / netem loss)."""

    def netem_dropped(self, src: str, dst: str) -> None:
        """The shaper dropped a frame on the ``src->dst`` link."""

    def netem_delayed(self, src: str, dst: str,
                      delay_ms: float) -> None:
        """The shaper added ``delay_ms`` on the ``src->dst`` link."""

    def control_event(self, event: str) -> None:
        """A signed control-channel fault event was applied."""


#: The shared no-op default every instrumented object starts with.
NULL = Instruments()


class LiveInstruments(Instruments):
    """Registry-backed instruments for one served replica.

    All families live in one process-wide registry; per-replica series
    are distinguished by the ``replica`` label, so a process hosting
    several replicas exposes one coherent scrape.  ``now_ms`` supplies
    the clock for interval measurements (the serve loop passes
    ``loop.time() * 1000``).
    """

    enabled = True

    def __init__(self, registry: MetricsRegistry, *, replica: str,
                 protocol: str,
                 now_ms: Optional[Callable[[], float]] = None) -> None:
        self.registry = registry
        self.replica = replica
        self.protocol = protocol
        self._now_ms = now_ms or (lambda: 0.0)
        self._last_exec_ms: Optional[float] = None

        commits = registry.counter(
            "repro_commits_total",
            "Commands committed, by protocol path",
            labels=("replica", "protocol", "path"))
        self._commit_fast = commits.labels(replica, protocol, "fast")
        self._commit_slow = commits.labels(replica, protocol, "slow")
        self._executed = registry.counter(
            "repro_executed_total",
            "Commands executed against the state machine",
            labels=("replica", "protocol")).labels(replica, protocol)
        self._owner_changes = registry.counter(
            "repro_owner_changes_total",
            "Owner-change votes started",
            labels=("replica",)).labels(replica)
        self._view_changes = registry.counter(
            "repro_view_changes_total",
            "View changes completed",
            labels=("replica",)).labels(replica)
        self._checkpoints = registry.counter(
            "repro_checkpoints_stable_total",
            "Checkpoints that reached a 2f+1 stability quorum",
            labels=("replica",)).labels(replica)
        frames = registry.counter(
            "repro_frames_total",
            "Transport frames, by direction/outcome",
            labels=("replica", "direction"))
        self._frames_rx = frames.labels(replica, "received")
        self._frames_tx = frames.labels(replica, "sent")
        self._frames_drop = frames.labels(replica, "dropped")
        self._latency = registry.histogram(
            "repro_request_latency_ms",
            "Client-observed request latency", unit="ms",
            labels=("replica",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS).labels(replica)
        self._exec_interval = registry.histogram(
            "repro_exec_interval_ms",
            "Gap between successive executions (liveness signal)",
            unit="ms", labels=("replica",),
            buckets=DEFAULT_LATENCY_BUCKETS_MS).labels(replica)
        self._netem_drops = registry.counter(
            "repro_netem_dropped_total",
            "Frames the netem shaper dropped, per directed link",
            labels=("link",))
        self._netem_delay = registry.counter(
            "repro_netem_delay_ms_total",
            "Delay the netem shaper added, per directed link",
            unit="ms", labels=("link",))
        self._control = registry.counter(
            "repro_control_events_total",
            "Signed control-channel fault events applied",
            labels=("event",))
        self._checkpoint_watermark = registry.gauge(
            "repro_checkpoint_stable_watermark",
            "Execution count of the latest stable checkpoint",
            labels=("replica",)).labels(replica)

    # ------------------------------------------------------------------
    def commit(self, path: str) -> None:
        (self._commit_fast if path == "fast"
         else self._commit_slow).inc()

    def execute(self) -> None:
        self._executed.inc()
        now = self._now_ms()
        if self._last_exec_ms is not None:
            self._exec_interval.observe(now - self._last_exec_ms)
        self._last_exec_ms = now

    def request_latency(self, latency_ms: float) -> None:
        self._latency.observe(latency_ms)

    def owner_change(self) -> None:
        self._owner_changes.inc()

    def view_change(self) -> None:
        self._view_changes.inc()

    def checkpoint_stable(self, watermark: int) -> None:
        self._checkpoints.inc()
        self._checkpoint_watermark.set(watermark)

    def frame_received(self) -> None:
        self._frames_rx.inc()

    def frame_sent(self) -> None:
        self._frames_tx.inc()

    def frame_dropped(self) -> None:
        self._frames_drop.inc()

    def netem_dropped(self, src: str, dst: str) -> None:
        self._netem_drops.labels(f"{src}->{dst}").inc()

    def netem_delayed(self, src: str, dst: str,
                      delay_ms: float) -> None:
        self._netem_delay.labels(f"{src}->{dst}").inc(delay_ms)

    def control_event(self, event: str) -> None:
        self._control.labels(event).inc()
