"""A tiny asyncio HTTP/1.0 endpoint for ``/metrics`` + ``/healthz`` +
``/control``, and the matching raw client.

Deliberately minimal and stdlib-only: ``asyncio.start_server``, one
request per connection (``Connection: close``), request line + headers
+ ``Content-Length`` body.  That is all a Prometheus scrape, a curl
health probe, or the scenario process's control client needs, and it
keeps the endpoint inside the repo's no-dependency constraint.  The
client side (:func:`http_request`) exists because ``urllib`` would
block the shared event loop -- the asyncio-safety linter rightly
rejects it inside ``async def``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import TransportError
from repro.obs.metrics import MetricsRegistry

#: Request/response body size guard (both directions).
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error",
}


def _response(status: int, body: bytes, content_type: str) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.0 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("ascii") + body


class ObsServer:
    """One replica's observability endpoint.

    Routes:

    - ``GET /metrics`` -- Prometheus text exposition (0.0.4).
    - ``GET /metrics.json`` -- the schema-stable snapshot dict.
    - ``GET /healthz`` -- liveness JSON (always 200; the status lives
      in the body so "degraded" is distinguishable from "dead").
    - ``GET /trace`` -- the replica's ring-buffered span export (see
      :mod:`repro.trace`); 404 unless serving started with tracing.
    - ``POST /control`` -- signed fault/netem events; delegated to the
      ``control`` callable, which returns ``(status, body_dict)``.

    ``healthz`` is a zero-argument callable returning the health dict;
    ``trace`` a zero-argument callable returning the span-export dict;
    ``control`` takes the raw body bytes.  Port 0 binds an OS-assigned
    port (read it back from :attr:`address`).
    """

    def __init__(self, registry: MetricsRegistry,
                 healthz: Optional[Callable[[], Dict[str, Any]]] = None,
                 control: Optional[
                     Callable[[bytes], Tuple[int, Dict[str, Any]]]] = None,
                 trace: Optional[Callable[[], Dict[str, Any]]] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry
        self.healthz = healthz
        self.control = control
        self.trace = trace
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, body, ctype = await self._respond(reader)
            writer.write(_response(status, body, ctype))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, bytes, str]:
        try:
            method, path, body = await _read_request(reader)
        except TransportError as exc:
            return _json_error(400, str(exc))
        if path == "/metrics":
            if method != "GET":
                return _json_error(405, "use GET")
            text = self.registry.to_prometheus()
            return (200, text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8")
        if path == "/metrics.json":
            if method != "GET":
                return _json_error(405, "use GET")
            return _json_body(200, self.registry.snapshot())
        if path == "/healthz":
            if method != "GET":
                return _json_error(405, "use GET")
            if self.healthz is None:
                return _json_error(404, "no health monitor attached")
            return _json_body(200, self.healthz())
        if path == "/trace":
            if method != "GET":
                return _json_error(405, "use GET")
            if self.trace is None:
                return _json_error(404, "tracing not enabled")
            return _json_body(200, self.trace())
        if path == "/control":
            if method != "POST":
                return _json_error(405, "use POST")
            if self.control is None:
                return _json_error(404, "no control channel attached")
            status, payload = self.control(body)
            return _json_body(status, payload)
        return _json_error(404, f"unknown path {path!r}")


def _json_body(status: int, payload: Dict[str, Any]
               ) -> Tuple[int, bytes, str]:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return (status, body, "application/json")


def _json_error(status: int, message: str) -> Tuple[int, bytes, str]:
    return _json_body(status, {"error": message})


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, bytes]:
    """Parse one request: ``(method, path, body)``."""
    line = await reader.readline()
    parts = line.decode("latin-1").split()
    if len(parts) < 3:
        raise TransportError(f"malformed request line {line!r}")
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise TransportError(
                    f"bad Content-Length {value.strip()!r}") from None
    if length > MAX_BODY_BYTES:
        raise TransportError(f"body of {length} bytes exceeds limit")
    body = await reader.readexactly(length) if length else b""
    return method, path, body


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
async def http_request(host: str, port: int, path: str,
                       method: str = "GET",
                       body: Optional[bytes] = None,
                       timeout: float = 5.0
                       ) -> Tuple[int, bytes]:
    """One raw HTTP/1.0 exchange: ``(status, body)``."""
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout=timeout)
    try:
        payload = body or b""
        head = (f"{method} {path} HTTP/1.0\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(MAX_BODY_BYTES + 4096),
                                     timeout=timeout)
    finally:
        writer.close()
    head_bytes, _, response_body = raw.partition(b"\r\n\r\n")
    status_line = head_bytes.split(b"\r\n", 1)[0].decode("latin-1")
    parts = status_line.split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise TransportError(
            f"malformed HTTP status line {status_line!r}")
    return int(parts[1]), response_body


async def fetch_json(host: str, port: int, path: str,
                     timeout: float = 5.0) -> Any:
    """GET ``path`` and decode the JSON body (raises on non-200)."""
    status, body = await http_request(host, port, path,
                                      timeout=timeout)
    if status != 200:
        raise TransportError(
            f"GET {path} on {host}:{port} returned {status}: "
            f"{body[:200]!r}")
    return json.loads(body.decode("utf-8"))
