"""Structured JSON logging for served deployments.

Interactive runs keep the human-readable default; ``repro serve``
switches its process to one-JSON-object-per-line records so multi-host
logs can be shipped, joined and filtered.  Every record carries the
deployment context (run id, replica ids hosted here, cluster seed)
bound once at configuration time -- grepping ``replica":"r2`` across a
fleet's stdout finds one node's story without per-call plumbing.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, Optional, Sequence


class JsonFormatter(logging.Formatter):
    """Render each record as one sorted-key JSON object per line.

    ``context`` is merged into every record; record-level ``extra``
    keys win on collision so call sites can override.  Uses the
    record's own ``created`` timestamp (seconds since the epoch) --
    no second clock read per line.
    """

    #: LogRecord attributes that are plumbing, not payload.
    _RESERVED = frozenset(vars(logging.makeLogRecord({})))

    def __init__(self, context: Optional[Dict[str, Any]] = None) -> None:
        super().__init__()
        self.context = dict(context or {})

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        payload.update(self.context)
        for key, value in vars(record).items():
            if key not in self._RESERVED and key not in payload:
                payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=repr)


def configure_json_logging(run: str = "",
                           replicas: Sequence[str] = (),
                           seed: str = "",
                           level: int = logging.INFO,
                           logger: Optional[logging.Logger] = None
                           ) -> logging.Handler:
    """Attach a JSON stderr handler carrying the deployment context.

    Applies to the ``repro`` logger subtree (or ``logger`` if given)
    so library users' root configuration is left alone.  Returns the
    handler so tests and drain paths can detach it.
    """
    context: Dict[str, Any] = {}
    if run:
        context["run"] = run
    if replicas:
        context["replicas"] = ",".join(replicas)
    if seed:
        context["seed"] = seed
    handler = logging.StreamHandler()
    handler.setFormatter(JsonFormatter(context))
    target = logger if logger is not None \
        else logging.getLogger("repro")
    target.addHandler(handler)
    target.setLevel(level)
    return handler
