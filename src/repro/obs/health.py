"""Protocol liveness for one served replica: the ``/healthz`` body.

Health is judged from signals the replica and its transport node
already maintain -- no extra hot-path bookkeeping:

- **progress**: the replica's ``executed`` counter.  The monitor
  tracks when it last advanced (sampled lazily at healthz time), so
  ``last_commit_age_ms`` is the staleness of the newest execution.
- **quorum reachability**: the transport node records when it last
  decoded a frame from each peer (only while instruments are live);
  a peer heard from inside :data:`REACHABLE_WINDOW_MS` counts as
  reachable, plus this replica itself.
- **checkpoint lag**: executions past the latest stable checkpoint
  watermark -- growing lag means garbage collection has stalled.

``status`` is ``"degraded"`` when the replica is crashed (via the
fault injector) or when traffic has flowed but fewer than a slow
quorum of replicas are currently reachable; otherwise ``"ok"``.  The
endpoint always answers 200 -- health is in the body, not the status
code, so a scrape can tell "degraded" from "dead".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

#: Version tag on every healthz body; bump on structural changes.
HEALTH_SCHEMA_VERSION = 1

#: A peer silent for longer than this is considered unreachable.
REACHABLE_WINDOW_MS = 3000.0


class HealthMonitor:
    """Computes the ``/healthz`` dict for one hosted replica.

    ``now_ms`` is the serve loop's clock; ``is_crashed`` asks the
    fault injector whether a CrashReplica currently silences us.
    """

    def __init__(self, replica_id: str, protocol: str,
                 replica: Any, node: Any, config: Any,
                 now_ms: Callable[[], float],
                 is_crashed: Optional[Callable[[], bool]] = None
                 ) -> None:
        self.replica_id = replica_id
        self.protocol = protocol
        self.replica = replica
        self.node = node
        self.config = config
        self._now_ms = now_ms
        self._is_crashed = is_crashed or (lambda: False)
        self._start_ms = now_ms()
        self._seen_executed = 0
        self._progress_ms: Optional[float] = None

    # ------------------------------------------------------------------
    def _executed(self) -> int:
        return int(self.replica.stats.get("executed", 0))

    def _stable_watermark(self) -> int:
        log = getattr(self.replica, "checkpoint_log", None)
        if not log:
            return 0
        return int(log[-1][0])

    def _quorum(self, now: float) -> Dict[str, Any]:
        peers: Dict[str, Optional[float]] = {}
        last_rx = getattr(self.node, "last_rx_ms", {})
        reachable = 1  # this replica counts toward its own quorum
        for rid in self.config.replica_ids:
            if rid == self.replica_id:
                continue
            seen = last_rx.get(rid)
            if seen is None:
                peers[rid] = None
                continue
            age = max(0.0, now - seen)
            peers[rid] = age
            if age <= REACHABLE_WINDOW_MS:
                reachable += 1
        return {
            "required": self.config.slow_quorum_size,
            "reachable": reachable,
            "peers": peers,
        }

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        now = self._now_ms()
        executed = self._executed()
        if executed > self._seen_executed:
            self._seen_executed = executed
            self._progress_ms = now
        last_commit_age = None if self._progress_ms is None \
            else max(0.0, now - self._progress_ms)
        watermark = self._stable_watermark()
        quorum = self._quorum(now)
        crashed = bool(self._is_crashed())

        reasons = []
        if crashed:
            reasons.append("replica is crashed (fault injector)")
        total_rx = getattr(self.node, "frames_received", 0)
        if total_rx > 0 and quorum["reachable"] < quorum["required"]:
            reasons.append(
                f"only {quorum['reachable']} of a required "
                f"{quorum['required']} replicas reachable")

        return {
            "schema_version": HEALTH_SCHEMA_VERSION,
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "replica": self.replica_id,
            "protocol": self.protocol,
            "uptime_ms": max(0.0, now - self._start_ms),
            "crashed": crashed,
            "executed": executed,
            "last_commit_age_ms": last_commit_age,
            "quorum": quorum,
            "checkpoint": {
                "stable_watermark": watermark,
                "lag": max(0, executed - watermark),
            },
        }
