"""repro.obs: golden-signal observability for live deployments.

Stdlib-only metrics (:mod:`repro.obs.metrics`), the no-op/live
instrument seam (:mod:`repro.obs.instruments`), protocol health
(:mod:`repro.obs.health`), the asyncio HTTP endpoint
(:mod:`repro.obs.http`), the signed fault control channel
(:mod:`repro.obs.control`), structured JSON logging
(:mod:`repro.obs.logging`), live-endpoint scraping
(:mod:`repro.obs.scrape`), and the serve session tying them together
(:mod:`repro.obs.serve`).

This layer may read the wall clock (it observes real deployments);
the analysis layer map whitelists it alongside transport/bench/sweep.
"""

from repro.obs.control import (
    CONTROL_SCHEMA_VERSION,
    ControlChannel,
    ControlClient,
    control_keypair,
    sign_event,
)
from repro.obs.health import HEALTH_SCHEMA_VERSION, HealthMonitor
from repro.obs.http import ObsServer, fetch_json, http_request
from repro.obs.instruments import NULL, Instruments, LiveInstruments
from repro.obs.logging import JsonFormatter, configure_json_logging
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    SNAPSHOT_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.scrape import (
    ScrapeConfig,
    replica_stats_from_snapshot,
    sample_metrics,
    scrape_replica_stats,
)
from repro.obs.serve import ServeSession

__all__ = [
    "CONTROL_SCHEMA_VERSION",
    "ControlChannel",
    "ControlClient",
    "control_keypair",
    "sign_event",
    "HEALTH_SCHEMA_VERSION",
    "HealthMonitor",
    "ObsServer",
    "fetch_json",
    "http_request",
    "NULL",
    "Instruments",
    "LiveInstruments",
    "JsonFormatter",
    "configure_json_logging",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "SNAPSHOT_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScrapeConfig",
    "replica_stats_from_snapshot",
    "sample_metrics",
    "scrape_replica_stats",
    "ServeSession",
]
