"""Scenario sweep engine: parameter grids over the scenario API.

The paper's figures are parameter sweeps; this package turns the
PR 3 scenario API into a figure-reproduction machine:

- :class:`SweepSpec` (:mod:`repro.sweep.spec`): a base scenario or
  preset name plus cartesian ``grid`` and lockstep ``zipped`` axes
  over clients/contention/batch size/seeds/protocol/any field.
- :class:`SweepRunner` (:mod:`repro.sweep.runner`): executes every
  cell via :class:`~repro.scenario.runner.ScenarioRunner` on either
  backend, optionally across worker processes.
- :class:`SweepReport` (:mod:`repro.sweep.report`): per-cell
  :class:`~repro.scenario.report.ExperimentReport` plus grouped
  mean/min/max series, CSV/JSON export.
- :func:`plot_series` (:mod:`repro.sweep.plot`): matplotlib-optional
  paper-style curves -- this package imports (and works) without
  matplotlib; only calling the plot helper requires it.

``python -m repro sweep`` is the CLI face::

    python -m repro sweep --preset smoke --grid clients=2,4 \
        --grid seed=1,2 --csv out.csv
"""

from repro.sweep.cache import (
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    SweepCellCache,
)
from repro.sweep.plot import plot_series
from repro.sweep.report import (
    METRICS,
    SERIES_CSV_COLUMNS,
    SeriesPoint,
    SweepCellResult,
    SweepReport,
    metric_value,
)
from repro.sweep.runner import SweepRunner, run_sweep
from repro.sweep.spec import (
    PARAM_ALIASES,
    SweepCell,
    SweepSpec,
    apply_params,
    resolve_param,
    sweep,
)

__all__ = [
    "SweepCellCache",
    "CACHE_VERSION",
    "DEFAULT_CACHE_DIR",
    "SweepSpec",
    "SweepCell",
    "SweepRunner",
    "SweepReport",
    "SweepCellResult",
    "SeriesPoint",
    "METRICS",
    "SERIES_CSV_COLUMNS",
    "PARAM_ALIASES",
    "metric_value",
    "resolve_param",
    "apply_params",
    "sweep",
    "run_sweep",
    "plot_series",
]
