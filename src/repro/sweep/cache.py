"""On-disk sweep cell cache.

A sweep cell on the sim backend is a pure function of its scenario spec
(the sim is deterministic per seed), so re-running a grid after adding
one axis value, or re-plotting with different series axes, repeats work
whose outcome is already known byte-for-byte.  The cache stores each
cell's :meth:`~repro.scenario.report.ExperimentReport.to_dict` under a
key derived from the *serialized* scenario -- exactly the
``(spec hash, backend, seed)`` identity (the seed is part of the spec
document) -- and replays it through
:meth:`~repro.scenario.report.ExperimentReport.from_dict`, which round
trips ``to_dict``/``to_rows`` output exactly.

Only spec-serializable scenarios are cacheable: one holding live Python
objects (a custom state machine, CPU model, interference, or anonymous
latency matrix) has no stable document form, so those cells silently
run fresh.  TCP cells are never cached by the runner -- their metrics
are wall-clock measurements, and a cached measurement is not a
measurement.

The cache is advisory: corrupt or unreadable entries are treated as
misses, and writes are atomic (tmp file + rename) so a killed run never
leaves a half-written entry.  ``CACHE_VERSION`` is part of every key;
bump it when the report schema or run semantics change so stale entries
can never be replayed as fresh results.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.storage import atomic_write_json
from repro.scenario.report import ExperimentReport
from repro.scenario.spec import Scenario

#: Bump to invalidate every existing cache entry (schema/semantics
#: changes).
CACHE_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join(".repro-cache", "sweep-cells")


class SweepCellCache:
    """Content-addressed store of finished sweep cell reports."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        #: Cells whose scenario has no serializable spec form.
        self.uncacheable = 0

    # ------------------------------------------------------------------
    def cell_key(self, scenario: Scenario, backend: str,
                 max_events: int) -> Optional[str]:
        """Hex digest identifying one cell run, or ``None`` when the
        scenario cannot be serialized (uncacheable)."""
        from repro.scenario.loader import scenario_to_dict
        try:
            spec = scenario_to_dict(scenario)
        except ConfigurationError:
            self.uncacheable += 1
            return None
        blob = json.dumps(
            {"v": CACHE_VERSION, "backend": backend,
             "max_events": max_events, "spec": spec},
            sort_keys=True, separators=(",", ":"))
        # repro: allow[digest-outside-crypto] -- content-address of a
        # spec blob for cache keying, not a protocol digest.
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------
    def get(self, key: Optional[str]) -> Optional[ExperimentReport]:
        """The cached report for ``key``, or ``None`` on a miss.

        Anything unreadable -- missing file, truncated JSON, a schema
        the current code cannot reconstruct -- is a miss.
        """
        if key is None:
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            report = ExperimentReport.from_dict(entry["report"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, key: Optional[str], report: ExperimentReport) -> None:
        """Store ``report`` under ``key`` (no-op for uncacheable cells).

        Write failures are swallowed: a read-only or full disk degrades
        to an uncached sweep, it does not fail the run.
        """
        if key is None:
            return
        path = self._path(key)
        entry: Dict[str, Any] = {
            "version": CACHE_VERSION,
            "report": report.to_dict(),
        }
        try:
            atomic_write_json(path, entry)
        except (OSError, ValueError):
            pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "uncacheable": self.uncacheable}
