"""Matplotlib-optional plotting for sweep results.

``repro.sweep`` must work on machines without matplotlib (CI, minimal
containers): nothing in this module imports it at module load.  Calling
:func:`plot_series` without matplotlib installed raises
:class:`~repro.errors.ConfigurationError` with the install hint; CSV
export is the dependency-free alternative.

The rendered figure is a paper-style curve chart: one line per group
(protocol, usually) with mean markers and a min/max band across the
collapsed axes (seeds, usually), a single y axis, recessive grid, and
a colorblind-safe fixed-order palette.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ConfigurationError
from repro.sweep.report import SweepReport

#: Fixed-order categorical palette (colorblind-validated: worst
#: adjacent-pair CVD deltaE 9.1, normal-vision 19.6).  Hues are
#: assigned to groups in declaration order, never cycled per-chart.
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Axis labels for the metric names (fallback: the raw name).
_METRIC_LABELS = {
    "throughput_per_sec": "throughput (req/s)",
    "latency_mean_ms": "mean latency (ms)",
    "latency_p50_ms": "median latency (ms)",
    "latency_p90_ms": "p90 latency (ms)",
    "latency_p99_ms": "p99 latency (ms)",
    "fast_path_ratio": "fast-path ratio",
    "delivered": "requests delivered",
}


def _import_pyplot():
    try:
        import matplotlib
    except ImportError:
        raise ConfigurationError(
            "plotting needs the optional matplotlib dependency "
            "(pip install matplotlib); use to_csv() for "
            "dependency-free export") from None
    matplotlib.use("Agg")  # headless: never require a display
    import matplotlib.pyplot as plt
    return plt


def plot_series(report: SweepReport, x: str,
                y: str = "throughput_per_sec",
                group_by: Optional[str] = None,
                path: Optional[str] = None,
                title: Optional[str] = None,
                logx: bool = False) -> Any:
    """Render grouped mean curves (min/max band) for one sweep metric.

    ``x``/``group_by`` are sweep axes, ``y`` a metric name from
    :data:`repro.sweep.report.METRICS`.  Writes a PNG/SVG/PDF to
    ``path`` (by extension) when given; always returns the matplotlib
    figure for further styling.
    """
    plt = _import_pyplot()
    series = report.series(x, y=y, group_by=group_by)
    if not series:
        raise ConfigurationError(
            f"sweep {report.name!r} has no data to plot for "
            f"x={x!r}, y={y!r}")

    fig, ax = plt.subplots(figsize=(6.0, 3.8))
    for slot, (group, points) in enumerate(series.items()):
        color = PALETTE[slot % len(PALETTE)]
        xs = [p.x for p in points]
        means = [p.mean for p in points]
        # Only the ungrouped single curve wears the sweep name; a
        # legitimate None *value* on a grouping axis keeps its own
        # label (e.g. primary_region=None is the leaderless arm).
        label = str(group) if group_by is not None else report.name
        ax.plot(xs, means, color=color, linewidth=2, marker="o",
                markersize=6, label=label)
        if any(p.count > 1 for p in points):
            ax.fill_between(xs, [p.minimum for p in points],
                            [p.maximum for p in points],
                            color=color, alpha=0.15, linewidth=0)
            # Honest error bars: the 95% CI on the mean (Student's t
            # across the collapsed axes, usually seeds), distinct from
            # the min/max envelope behind it.  Single-sample points
            # have no defined spread and get no bar at all -- a
            # zero-height bar would visually claim "measured spread:
            # zero".
            with_ci = [p for p in points if p.ci95 is not None]
            if with_ci:
                ax.errorbar([p.x for p in with_ci],
                            [p.mean for p in with_ci],
                            yerr=[p.ci95 for p in with_ci],
                            fmt="none", ecolor=color, elinewidth=1.2,
                            capsize=3)

    if logx:
        from matplotlib import ticker
        ax.set_xscale("log")
        ax.set_xticks([p.x for p in next(iter(series.values()))])
        ax.get_xaxis().set_major_formatter(ticker.ScalarFormatter())
    ax.set_xlabel(x)
    ax.set_ylabel(_METRIC_LABELS.get(y, y))
    ax.set_title(title or report.name)
    ax.grid(True, linewidth=0.5, alpha=0.3)
    ax.spines["top"].set_visible(False)
    ax.spines["right"].set_visible(False)
    ax.set_ylim(bottom=0)
    if len(series) > 1:
        ax.legend(frameon=False)
    fig.tight_layout()
    if path is not None:
        fig.savefig(path, dpi=150)
        plt.close(fig)
    return fig
