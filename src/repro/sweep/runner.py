"""SweepRunner: execute every cell of a SweepSpec and aggregate.

Serial by default (and always deterministic in cell order); pass
``workers=N`` to fan cells out over N worker *processes* -- each cell
is an independent single-process simulation, so process pools scale a
big grid across cores with zero shared state.  Results are re-ordered
by cell index, so serial and parallel runs of the same sweep produce
identical reports (the sim backend is deterministic per cell either
way).

Scenarios shipped to workers must be picklable: the presets and
anything built from plain dataclass fields are; a scenario closing
over a lambda ``statemachine`` is not (run those with ``workers=1``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.scrape import ScrapeConfig
from repro.scenario.report import ExperimentReport
from repro.scenario.runner import MAX_EVENTS, ScenarioRunner
from repro.scenario.spec import Scenario
from repro.sweep.cache import SweepCellCache
from repro.sweep.report import SweepCellResult, SweepReport
from repro.sweep.spec import SweepSpec


def _run_cell(backend: str, scenario: Scenario, max_events: int,
              tcp_timeout_s: float,
              scrape: Optional[ScrapeConfig] = None
              ) -> Tuple[ExperimentReport,
                         Optional[List[Dict[str, Any]]]]:
    """Top-level (picklable) worker: one cell, one report (plus the
    periodic scrape series when the cell's scenario exposes obs
    endpoints and a :class:`ScrapeConfig` was shipped along)."""
    runner = ScenarioRunner(backend=backend, max_events=max_events,
                            tcp_timeout_s=tcp_timeout_s,
                            scrape_config=scrape)
    report = runner.run(scenario)
    return report, runner.last_scrape_samples


class SweepRunner:
    """Executes sweeps; one runner can execute many."""

    def __init__(self, backend: str = "sim", workers: int = 1,
                 max_events: int = MAX_EVENTS,
                 tcp_timeout_s: float = 60.0,
                 cache: Optional[Union[str, SweepCellCache]] = None,
                 scrape: Optional[ScrapeConfig] = None
                 ) -> None:
        if backend not in ("sim", "tcp"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose 'sim' or 'tcp'")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.backend = backend
        self.workers = workers
        self.max_events = max_events
        self.tcp_timeout_s = tcp_timeout_s
        #: Optional on-disk cell cache (a directory path or a
        #: :class:`SweepCellCache`).  Only consulted on the sim backend:
        #: sim cells are deterministic per spec, TCP cells are live
        #: wall-clock measurements.
        if isinstance(cache, str):
            cache = SweepCellCache(cache)
        self.cache = cache
        #: Optional :class:`~repro.obs.ScrapeConfig`: periodically
        #: sample ``/metrics.json`` from each cell's obs-declared
        #: replicas while the cell runs (TCP backend; the frozen
        #: dataclass pickles into worker processes).  Per-cell series
        #: land on :attr:`SweepCellResult.scrape` -- the first-class
        #: alternative to in-process recorders for long-lived
        #: deployments.
        if scrape is not None and backend != "tcp":
            raise ConfigurationError(
                "periodic scraping needs the tcp backend; sim cells "
                "have no live obs endpoints to sample")
        self.scrape = scrape

    def _cell_key(self, scenario: Scenario) -> Optional[str]:
        if self.cache is None or self.backend != "sim":
            return None
        return self.cache.cell_key(scenario, self.backend,
                                   self.max_events)

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec,
            progress: Optional[object] = None) -> SweepReport:
        """Expand ``spec``, run every cell, and aggregate.

        ``progress`` is an optional callable invoked as
        ``progress(cell, report)`` after each cell completes (CLI
        progress lines); on parallel runs it fires in completion
        order.
        """
        cells = list(spec.cells())  # eager: a bad grid fails up front
        keys = [self._cell_key(cell.scenario) for cell in cells]
        cached = {
            cell.index: report
            for cell, key in zip(cells, keys)
            if key is not None
            and (report := self.cache.get(key)) is not None
        }
        pending = [cell for cell in cells if cell.index not in cached]
        if progress is not None:
            for cell in cells:
                if cell.index in cached:
                    progress(cell, cached[cell.index])
        if self.workers > 1 and len(pending) > 1:
            fresh = self._run_parallel(pending, progress)
        else:
            fresh = []
            for cell in pending:
                report, samples = _run_cell(
                    self.backend, cell.scenario,
                    self.max_events, self.tcp_timeout_s, self.scrape)
                if progress is not None:
                    progress(cell, report)
                fresh.append((report, samples))
        by_index = dict(cached)
        scrape_by_index: Dict[int, Optional[List[Dict[str, Any]]]] = {}
        for cell, (report, samples) in zip(pending, fresh):
            by_index[cell.index] = report
            scrape_by_index[cell.index] = samples
        if self.cache is not None:
            for cell, key in zip(cells, keys):
                if key is not None and cell.index not in cached:
                    self.cache.put(key, by_index[cell.index])
        return SweepReport(
            name=spec.sweep_name,
            backend=self.backend,
            axes=spec.axes(),
            cells=[SweepCellResult(
                params=cell.params,
                report=by_index[cell.index],
                scrape=scrape_by_index.get(cell.index))
                   for cell in cells])

    # ------------------------------------------------------------------
    def _run_parallel(self, cells, progress):
        from concurrent.futures import (
            ProcessPoolExecutor,
            as_completed,
        )

        results: dict = {}
        max_workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_run_cell, self.backend, cell.scenario,
                            self.max_events, self.tcp_timeout_s,
                            self.scrape): cell
                for cell in cells
            }
            for future in as_completed(futures):
                cell = futures[future]
                # propagate worker failures
                report, samples = future.result()
                if progress is not None:
                    progress(cell, report)
                results[cell.index] = (report, samples)
        return [results[cell.index] for cell in cells]


def run_sweep(spec: SweepSpec, backend: str = "sim",
              workers: int = 1) -> SweepReport:
    """One-call convenience:
    ``run_sweep(sweep("smoke", clients=(2, 4)))``."""
    return SweepRunner(backend=backend, workers=workers).run(spec)
