"""SweepRunner: execute every cell of a SweepSpec and aggregate.

Serial by default (and always deterministic in cell order); pass
``workers=N`` to fan cells out over N worker *processes* -- each cell
is an independent single-process simulation, so process pools scale a
big grid across cores with zero shared state.  Results are re-ordered
by cell index, so serial and parallel runs of the same sweep produce
identical reports (the sim backend is deterministic per cell either
way).

Scenarios shipped to workers must be picklable: the presets and
anything built from plain dataclass fields are; a scenario closing
over a lambda ``statemachine`` is not (run those with ``workers=1``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.scenario.report import ExperimentReport
from repro.scenario.runner import MAX_EVENTS, ScenarioRunner
from repro.scenario.spec import Scenario
from repro.sweep.report import SweepCellResult, SweepReport
from repro.sweep.spec import SweepSpec


def _run_cell(backend: str, scenario: Scenario, max_events: int,
              tcp_timeout_s: float) -> ExperimentReport:
    """Top-level (picklable) worker: one cell, one report."""
    runner = ScenarioRunner(backend=backend, max_events=max_events,
                            tcp_timeout_s=tcp_timeout_s)
    return runner.run(scenario)


class SweepRunner:
    """Executes sweeps; one runner can execute many."""

    def __init__(self, backend: str = "sim", workers: int = 1,
                 max_events: int = MAX_EVENTS,
                 tcp_timeout_s: float = 60.0) -> None:
        if backend not in ("sim", "tcp"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose 'sim' or 'tcp'")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.backend = backend
        self.workers = workers
        self.max_events = max_events
        self.tcp_timeout_s = tcp_timeout_s

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec,
            progress: Optional[object] = None) -> SweepReport:
        """Expand ``spec``, run every cell, and aggregate.

        ``progress`` is an optional callable invoked as
        ``progress(cell, report)`` after each cell completes (CLI
        progress lines); on parallel runs it fires in completion
        order.
        """
        cells = list(spec.cells())  # eager: a bad grid fails up front
        if self.workers > 1 and len(cells) > 1:
            reports = self._run_parallel(cells, progress)
        else:
            reports = []
            for cell in cells:
                report = _run_cell(self.backend, cell.scenario,
                                   self.max_events, self.tcp_timeout_s)
                if progress is not None:
                    progress(cell, report)
                reports.append(report)
        return SweepReport(
            name=spec.sweep_name,
            backend=self.backend,
            axes=spec.axes(),
            cells=[SweepCellResult(params=cell.params, report=report)
                   for cell, report in zip(cells, reports)])

    # ------------------------------------------------------------------
    def _run_parallel(self, cells, progress):
        from concurrent.futures import (
            ProcessPoolExecutor,
            as_completed,
        )

        reports: dict = {}
        max_workers = min(self.workers, len(cells))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_run_cell, self.backend, cell.scenario,
                            self.max_events, self.tcp_timeout_s): cell
                for cell in cells
            }
            for future in as_completed(futures):
                cell = futures[future]
                report = future.result()  # propagate worker failures
                if progress is not None:
                    progress(cell, report)
                reports[cell.index] = report
        return [reports[cell.index] for cell in cells]


def run_sweep(spec: SweepSpec, backend: str = "sim",
              workers: int = 1) -> SweepReport:
    """One-call convenience:
    ``run_sweep(sweep("smoke", clients=(2, 4)))``."""
    return SweepRunner(backend=backend, workers=workers).run(spec)
