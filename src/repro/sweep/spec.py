"""SweepSpec: a base scenario plus a parameter grid.

The paper's figures are parameter sweeps -- client counts (Fig. 6),
contention levels (Fig. 4), batch sizes, seeds, protocols (every
comparison figure).  A :class:`SweepSpec` names one base scenario (a
:class:`~repro.scenario.spec.Scenario` or a preset name) and the axes
to vary:

- ``grid`` axes combine **cartesian**: ``{"clients": (1, 10),
  "seed": (1, 2)}`` expands to four cells.
- ``zipped`` axes vary **together** (all the same length), for series
  whose knobs travel in lockstep -- e.g. Figure 6 sweeps
  ``protocol=("zyzzyva", "ezbft")`` zipped with
  ``contention=(0.0, 0.5)`` and each protocol's own timeout.  The
  zipped block acts as one extra cartesian axis of row-tuples.

Axis names resolve to scenario fields (``seed``, ``protocol``,
``primary_region``, ``slow_path_timeout``, ...), workload fields
(``contention``, ``batch_size``, ...; bare names work, as does an
explicit ``workload.`` prefix), or the short aliases in
:data:`PARAM_ALIASES` (``clients``, ``requests``, ``rate``).  Unknown
names raise :class:`~repro.errors.ConfigurationError` naming the axis.

Expansion (:meth:`SweepSpec.cells`) is deterministic: grid axes vary
with the *last* axis fastest (``itertools.product`` order), the zipped
block last of all, and each cell's scenario is validated eagerly so a
bad grid fails before anything runs.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.scenario.spec import Scenario, WorkloadSpec

#: Short axis names for the knobs the paper sweeps most.
PARAM_ALIASES: Dict[str, str] = {
    "clients": "workload.clients_per_region",
    "requests": "workload.requests_per_client",
    "rate": "workload.rate_per_client",
    "contention": "workload.contention",
    "batch_size": "workload.batch_size",
    "batch_timeout_ms": "workload.batch_timeout_ms",
    "value_size": "workload.value_size",
    "warmup": "workload.warmup_requests",
}

_WORKLOAD_FIELDS = {f.name for f in dataclasses.fields(WorkloadSpec)}
#: Scenario fields an axis may set (live-object fields excluded).
_SCENARIO_FIELDS = {
    f.name for f in dataclasses.fields(Scenario)
    if f.name not in ("workload", "phases", "faults", "statemachine",
                      "interference", "cpu", "conditions")
}


def resolve_param(name: str) -> str:
    """Resolve an axis name to ``field`` or ``workload.field``; raises
    naming the axis and the known choices."""
    target = PARAM_ALIASES.get(name, name)
    if target.startswith("workload."):
        field_name = target[len("workload."):]
        if field_name in _WORKLOAD_FIELDS:
            return f"workload.{field_name}"
        raise ConfigurationError(
            f"unknown sweep axis {name!r}: no WorkloadSpec field "
            f"{field_name!r} (have {tuple(sorted(_WORKLOAD_FIELDS))})")
    if target in _WORKLOAD_FIELDS:
        return f"workload.{target}"
    if target in _SCENARIO_FIELDS:
        return target
    choices = tuple(sorted(set(PARAM_ALIASES) | _SCENARIO_FIELDS
                           | _WORKLOAD_FIELDS))
    raise ConfigurationError(
        f"unknown sweep axis {name!r}; choose from {choices}")


@dataclass(frozen=True)
class SweepCell:
    """One point of the expanded grid: its axis values and the fully
    overridden, validated scenario."""

    index: int
    params: Tuple[Tuple[str, Any], ...]
    scenario: Scenario

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.params)


def _as_values(values: Any, axis: str) -> Tuple[Any, ...]:
    """An axis accepts a sequence or a single scalar (pinned axis)."""
    if isinstance(values, (str, bytes)) or not hasattr(values,
                                                       "__iter__"):
        return (values,)
    out = tuple(values)
    if not out:
        raise ConfigurationError(
            f"sweep axis {axis!r} must have at least one value")
    return out


@dataclass(eq=True)
class SweepSpec:
    """A base scenario (or preset name) plus cartesian ``grid`` axes
    and lockstep ``zipped`` axes.  See the module docstring."""

    base: Union[str, Scenario]
    grid: Mapping[str, Any] = field(default_factory=dict)
    zipped: Mapping[str, Any] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        # Normalize axis values to tuples at construction so equality
        # is representation-independent: a spec built with list
        # literals equals the same spec loaded back from JSON/TOML
        # (the loader produces tuples).
        self.grid = {axis: _as_values(values, axis)
                     for axis, values in self.grid.items()}
        self.zipped = {axis: _as_values(values, axis)
                       for axis, values in self.zipped.items()}

    # ------------------------------------------------------------------
    def base_scenario(self) -> Scenario:
        if isinstance(self.base, Scenario):
            return self.base
        from repro.scenario.presets import preset
        return preset(self.base)

    @property
    def sweep_name(self) -> str:
        if self.name:
            return self.name
        base = self.base if isinstance(self.base, str) \
            else self.base.name
        return f"{base}-sweep"

    # ------------------------------------------------------------------
    def axes(self) -> Dict[str, Tuple[Any, ...]]:
        """Axis name -> declared values, grid first then zipped, in
        declaration order.  Validates names, shapes, and overlaps."""
        grid = {axis: _as_values(values, axis)
                for axis, values in self.grid.items()}
        zipped = {axis: _as_values(values, axis)
                  for axis, values in self.zipped.items()}
        overlap = set(grid) & set(zipped)
        if overlap:
            raise ConfigurationError(
                f"sweep axes appear in both grid and zip: "
                f"{tuple(sorted(overlap))}")
        lengths = {axis: len(values) for axis, values in zipped.items()}
        if len(set(lengths.values())) > 1:
            raise ConfigurationError(
                f"zipped sweep axes must all have the same length, "
                f"got {lengths}")
        # Distinct axis names may alias the same field ('clients' vs
        # 'workload.clients_per_region'): one would silently overwrite
        # the other while both appeared in the exported params.
        targets: dict = {}
        for axis in itertools.chain(grid, zipped):
            target = resolve_param(axis)
            if target in targets:
                raise ConfigurationError(
                    f"sweep axes {targets[target]!r} and {axis!r} "
                    f"both set {target!r}; keep one")
            targets[target] = axis
        return {**grid, **zipped}

    def size(self) -> int:
        axes = self.axes()
        total = 1
        for axis, values in axes.items():
            if axis not in self.zipped:
                total *= len(values)
        if self.zipped:
            # The zipped block is one extra axis of row-tuples.
            first = next(iter(self.zipped))
            total *= len(axes[first])
        return total

    # ------------------------------------------------------------------
    def cells(self) -> Iterator[SweepCell]:
        """Expand the grid into validated, named scenario cells."""
        base = self.base_scenario()
        axes = self.axes()
        grid_axes = [axis for axis in axes if axis in self.grid]
        zip_axes = [axis for axis in axes if axis in self.zipped]
        grid_values = [axes[axis] for axis in grid_axes]
        if zip_axes:
            zip_rows = list(zip(*(axes[axis] for axis in zip_axes)))
        else:
            zip_rows = [()]

        index = 0
        for combo in itertools.product(*grid_values):
            for row in zip_rows:
                params = tuple(zip(grid_axes, combo)) + \
                    tuple(zip(zip_axes, row))
                scenario = apply_params(base, dict(params))
                label = ",".join(f"{k}={v}" for k, v in params)
                scenario = replace(
                    scenario,
                    name=f"{base.name}[{label}]" if label
                    else base.name)
                scenario.validate()
                yield SweepCell(index=index, params=params,
                                scenario=scenario)
                index += 1


def _check_axis_type(axis: str, target: str, value: Any) -> None:
    """Eager per-field type check against the spec loader's schemas,
    so a bad grid fails with the axis named instead of a mid-run
    TypeError (e.g. ``clients=1.5`` into an int field)."""
    # Same-package reuse of the loader's field schemas keeps the two
    # validation surfaces (spec files, sweep axes) in lockstep.
    from repro.scenario.loader import _SCENARIO_SCHEMA, _WORKLOAD_SCHEMA

    if value is None:
        return  # pins an optional field (e.g. primary_region=None)
    if target == "netem":
        # Python-built sweeps may grid over whole netem profiles;
        # spec-file sweeps (scalar axes only) use preset names, so
        # ``netem=lossy-wan,clean`` works from --grid too.  Resolve
        # names eagerly: a typo fails at expansion with the axis
        # named, not mid-run in cell 37.
        from repro.netem import NetemProfile, netem_preset
        if isinstance(value, NetemProfile):
            return
        if isinstance(value, str):
            netem_preset(value, key=f"sweep axis {axis!r}")
            return
        raise ConfigurationError(
            f"sweep axis {axis!r} value {value!r} must be a "
            f"NetemProfile, a preset name, or None")
    if target.startswith("workload."):
        expected = _WORKLOAD_SCHEMA.get(target[len("workload."):])
    else:
        expected = _SCENARIO_SCHEMA.get(target)
    if expected is None:
        return
    bad_bool = isinstance(value, bool) and bool not in expected
    if bad_bool or not isinstance(value, expected):
        raise ConfigurationError(
            f"sweep axis {axis!r} value {value!r} must be "
            f"{'/'.join(t.__name__ for t in expected)}, "
            f"got {type(value).__name__}")


def apply_params(base: Scenario, params: Mapping[str, Any]) -> Scenario:
    """A copy of ``base`` with each axis value applied to its resolved
    scenario/workload field."""
    scenario_overrides: Dict[str, Any] = {}
    workload_overrides: Dict[str, Any] = {}
    for axis, value in params.items():
        target = resolve_param(axis)
        _check_axis_type(axis, target, value)
        if target.startswith("workload."):
            workload_overrides[target[len("workload."):]] = value
        else:
            scenario_overrides[target] = value
    workload = replace(base.workload, **workload_overrides) \
        if workload_overrides else base.workload
    return replace(base, workload=workload, **scenario_overrides)


def sweep(base: Union[str, Scenario],
          zip_: Optional[Mapping[str, Any]] = None,
          name: str = "",
          **grid: Any) -> SweepSpec:
    """Keyword-friendly constructor:
    ``sweep("smoke", clients=(2, 4), seed=range(3))``."""
    return SweepSpec(base=base, grid=dict(grid),
                     zipped=dict(zip_ or {}), name=name)
