"""SweepReport: per-cell experiment reports plus grouped series.

The aggregate view (:meth:`SweepReport.series`) is what the paper's
figures plot: pick an x axis (a sweep axis), a metric, and optionally a
grouping axis (one line per value, typically ``protocol``); cells that
differ only in the remaining axes (typically ``seed``) collapse into
mean/min/max per point.

The tabular view (:meth:`SweepReport.to_rows` / ``to_csv``) emits one
row per (cell, phase): the cell's axis values prepended to the fixed
:data:`~repro.scenario.report.REPORT_CSV_COLUMNS` set.  Wall-clock
fields are excluded, so sweep CSV is byte-stable across runs of a
seeded sim sweep.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenario.report import (
    REPORT_CSV_COLUMNS,
    ExperimentReport,
    rows_to_csv,
)

#: Metrics addressable by name in series()/plots, resolved against an
#: :class:`ExperimentReport`.
METRICS = {
    "delivered": lambda r: r.delivered,
    "throughput_per_sec": lambda r: r.throughput_per_sec,
    "latency_mean_ms": lambda r: r.latency.mean,
    "latency_p50_ms": lambda r: r.latency.p50,
    "latency_p90_ms": lambda r: r.latency.p90,
    "latency_p99_ms": lambda r: r.latency.p99,
    "latency_min_ms": lambda r: r.latency.minimum,
    "latency_max_ms": lambda r: r.latency.maximum,
    "fast_path_ratio": lambda r: r.fast_path_ratio,
    "owner_changes": lambda r: r.owner_changes,
    "view_changes": lambda r: r.view_changes,
    "checkpoints_stable": lambda r: r.checkpoints_stable,
    "log_footprint_total": lambda r: r.log_footprint_total,
}


#: Fixed column order for the aggregated series CSV (one row per
#: (group, x) point).  Pinned by the report-schema regression test --
#: extend deliberately, never reorder.
SERIES_CSV_COLUMNS = (
    "group_axis",
    "group",
    "x_axis",
    "x",
    "metric",
    "mean",
    "stddev",
    "ci95",
    "min",
    "max",
    "count",
)


def metric_value(report: ExperimentReport, name: str) -> float:
    """Resolve a named metric; raises naming the metric."""
    try:
        accessor = METRICS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; choose from "
            f"{tuple(METRICS)}") from None
    return accessor(report)


#: Two-sided 95% critical values of Student's t by degrees of freedom
#: (1..30); beyond 30 the normal 1.96 is within ~2%.  Small seed
#: counts are the norm in sweeps, where the normal approximation would
#: understate the interval badly (df=2: 4.30 vs 1.96).
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
    2.048, 2.045, 2.042,
)


def _t95(df: int) -> float:
    if df < 1:
        raise ConfigurationError("t-interval needs df >= 1")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class SeriesPoint:
    """Aggregate of one (group, x) bucket across the remaining axes.

    ``stddev`` is the sample standard deviation (n-1) and ``ci95`` the
    half-width of the two-sided 95% confidence interval on the mean
    (Student's t); both are ``None`` for single-sample buckets, where
    spread is undefined -- plots should draw no error bar rather than
    a misleading zero-width one.
    """

    x: Any
    mean: float
    minimum: float
    maximum: float
    count: int
    stddev: Optional[float] = None
    ci95: Optional[float] = None


@dataclass
class SweepCellResult:
    """One executed grid cell: its axis values and full report.

    ``scrape`` is the periodic ``/metrics.json`` time series sampled
    while the cell ran (``None`` unless the sweep runner was given a
    :class:`~repro.obs.ScrapeConfig` and the cell's scenario exposed
    obs endpoints): a list of ``{"t_ms": ..., "replicas": {rid:
    stats-or-None}}`` samples, dashboards-over-sweep-time material.
    """

    params: Tuple[Tuple[str, Any], ...]
    report: ExperimentReport
    scrape: Optional[List[Dict[str, Any]]] = None

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass
class SweepReport:
    """Everything a sweep measured, cell by cell."""

    name: str
    backend: str
    axes: Dict[str, Tuple[Any, ...]]
    cells: List[SweepCellResult] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def series(self, x: str, y: str = "throughput_per_sec",
               group_by: Optional[str] = None
               ) -> Dict[Any, List[SeriesPoint]]:
        """Grouped mean/min/max curves: ``{group_value: [SeriesPoint
        per x value]}`` (a single ``None`` group without ``group_by``).

        ``x`` and ``group_by`` are sweep axes; ``y`` is a
        :data:`METRICS` name.  Cells sharing (group, x) -- differing
        only in the remaining axes, e.g. seeds -- aggregate into one
        point.  NaN samples (e.g. fast-path ratio of a protocol
        without a fast path) are dropped per-bucket.
        """
        for axis in (x,) if group_by is None else (x, group_by):
            if axis not in self.axes:
                raise ConfigurationError(
                    f"unknown sweep axis {axis!r}; this sweep has "
                    f"{tuple(self.axes)}")
        buckets: Dict[Any, Dict[Any, List[float]]] = {}
        for cell in self.cells:
            params = cell.param_dict
            group = params.get(group_by) if group_by else None
            value = metric_value(cell.report, y)
            if value is None or (isinstance(value, float) and
                                 math.isnan(value)):
                continue
            buckets.setdefault(group, {}) \
                .setdefault(params[x], []).append(float(value))

        # Zipped axes repeat values (e.g. protocol zipped over several
        # contention levels): collapse to first-occurrence order so a
        # curve visits each x (and each group appears) exactly once.
        ordered_groups = list(dict.fromkeys(self.axes[group_by])) \
            if group_by else [None]
        x_values = list(dict.fromkeys(self.axes[x]))
        out: Dict[Any, List[SeriesPoint]] = {}
        for group in ordered_groups:
            if group not in buckets:
                continue
            points = []
            for x_value in x_values:
                samples = buckets[group].get(x_value)
                if not samples:
                    continue
                n = len(samples)
                mean = sum(samples) / n
                stddev = ci95 = None
                if n > 1:
                    variance = sum((s - mean) ** 2
                                   for s in samples) / (n - 1)
                    stddev = math.sqrt(variance)
                    ci95 = _t95(n - 1) * stddev / math.sqrt(n)
                points.append(SeriesPoint(
                    x=x_value,
                    mean=mean,
                    minimum=min(samples),
                    maximum=max(samples),
                    count=n,
                    stddev=stddev,
                    ci95=ci95))
            out[group] = points
        return out

    def cell(self, **params: Any) -> ExperimentReport:
        """The report of the unique cell matching ``params`` exactly
        on those axes; raises if none or several match."""
        for axis in params:
            if axis not in self.axes:
                raise ConfigurationError(
                    f"unknown sweep axis {axis!r}; this sweep has "
                    f"{tuple(self.axes)}")
        matches = [c for c in self.cells
                   if all(c.param_dict.get(k) == v
                          for k, v in params.items())]
        if len(matches) != 1:
            raise ConfigurationError(
                f"{len(matches)} sweep cells match {params!r} "
                f"(need exactly 1)")
        return matches[0].report

    # ------------------------------------------------------------------
    # Tabular / JSON export
    # ------------------------------------------------------------------
    def csv_columns(self) -> List[str]:
        """Axis columns (declaration order, minus any that shadow a
        report column) + the fixed report column set."""
        return [axis for axis in self.axes
                if axis not in REPORT_CSV_COLUMNS] + \
            list(REPORT_CSV_COLUMNS)

    def to_rows(self) -> List[Dict[str, Any]]:
        """One flat dict per (cell, phase)."""
        rows = []
        for cell in self.cells:
            axis_cells = {axis: value
                          for axis, value in cell.params
                          if axis not in REPORT_CSV_COLUMNS}
            for row in cell.report.to_rows():
                rows.append({**axis_cells, **row})
        return rows

    def to_csv(self, path: Optional[str] = None) -> str:
        """The sweep as CSV text (one row per cell x phase);
        optionally written to ``path``."""
        return rows_to_csv(self.to_rows(), self.csv_columns(), path)

    def series_to_rows(self, x: str, y: str = "throughput_per_sec",
                       group_by: Optional[str] = None
                       ) -> List[Dict[str, Any]]:
        """The aggregated :meth:`series` as flat dicts under
        :data:`SERIES_CSV_COLUMNS` -- one row per (group, x) point,
        with the spread statistics plots need for error bars."""
        def r3(value: Optional[float]) -> Optional[float]:
            if value is None or (isinstance(value, float) and
                                 not math.isfinite(value)):
                return None
            return round(value, 3)

        rows = []
        for group, points in self.series(x, y=y,
                                         group_by=group_by).items():
            for point in points:
                rows.append({
                    "group_axis": group_by or "",
                    "group": "" if group is None else group,
                    "x_axis": x,
                    "x": point.x,
                    "metric": y,
                    "mean": r3(point.mean),
                    "stddev": r3(point.stddev),
                    "ci95": r3(point.ci95),
                    "min": r3(point.minimum),
                    "max": r3(point.maximum),
                    "count": point.count,
                })
        return rows

    def series_to_csv(self, x: str, y: str = "throughput_per_sec",
                      group_by: Optional[str] = None,
                      path: Optional[str] = None) -> str:
        """The aggregated series as CSV text (see
        :meth:`series_to_rows`); optionally written to ``path``."""
        return rows_to_csv(self.series_to_rows(x, y=y,
                                               group_by=group_by),
                           list(SERIES_CSV_COLUMNS), path)

    def to_dict(self) -> Dict[str, Any]:
        def cell_dict(cell: SweepCellResult) -> Dict[str, Any]:
            data: Dict[str, Any] = {
                "params": cell.param_dict,
                "report": cell.report.to_dict(),
            }
            # Only when sampled: unscoped sweeps keep the pinned
            # two-key cell shape byte-for-byte.
            if cell.scrape is not None:
                data["scrape"] = cell.scrape
            return data

        return {
            "sweep": self.name,
            "backend": self.backend,
            "axes": {axis: list(values)
                     for axis, values in self.axes.items()},
            "cells": [cell_dict(cell) for cell in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent,
                          allow_nan=False)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # ------------------------------------------------------------------
    def format_text(self) -> str:
        """Human-readable per-cell summary table for the CLI."""
        axis_names = list(self.axes)
        header_cells = axis_names + ["n", "thr/s", "p50", "p99",
                                     "fast"]
        rows: List[List[str]] = []
        for cell in self.cells:
            params = cell.param_dict
            report = cell.report
            fast = report.fast_path_ratio
            fast_s = f"{fast:.0%}" if not math.isnan(fast) else "-"
            rows.append(
                [str(params.get(axis, "")) for axis in axis_names] +
                [str(report.delivered),
                 f"{report.throughput_per_sec:.1f}",
                 f"{report.latency.p50:.1f}",
                 f"{report.latency.p99:.1f}",
                 fast_s])
        widths = [max(len(header_cells[i]),
                      *(len(row[i]) for row in rows)) if rows
                  else len(header_cells[i])
                  for i in range(len(header_cells))]
        lines = [f"sweep      {self.name}  [{self.backend}, "
                 f"{len(self.cells)} cells]"]
        header = "  ".join(cell.rjust(widths[i])
                           for i, cell in enumerate(header_cells))
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append("  ".join(cell.rjust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)
