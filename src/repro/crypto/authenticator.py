"""MAC authenticator vectors (PBFT-style).

PBFT replaces most signatures with *authenticators*: a vector of MACs, one
per receiving replica, each computed under the pairwise session key.  We
model the pairwise key between ``a`` and ``b`` as
``HMAC(secret_a, b)`` xor-free derivation -- deterministic, distinct per
ordered pair, and computable only by ``a`` (the registry verifies on
behalf of ``b``).

Authenticators matter for fidelity of the *cost model*: a PBFT primary
computes O(n) MACs per message, which is cheap, whereas Zyzzyva/ezBFT
responses to clients carry signatures, which are expensive.  The
:class:`repro.sim.network.CpuModel` charges per ``cpu_cost_units``; message
classes set that field based on whether they carry an authenticator or a
signature.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Iterable

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import InvalidSignatureError, UnknownSignerError


def _pair_key(sender_secret: bytes, receiver_id: str) -> bytes:
    return hmac.new(sender_secret, receiver_id.encode("utf-8"),
                    hashlib.sha256).digest()


@dataclass(frozen=True)
class Authenticator:
    """A MAC vector: ``macs[receiver_id] -> hex tag``."""

    sender: str
    macs: Dict[str, str]

    def to_wire(self) -> dict:
        return {"sender": self.sender, "macs": dict(self.macs)}

    @classmethod
    def from_wire(cls, wire: dict) -> "Authenticator":
        return cls(sender=wire["sender"], macs=dict(wire["macs"]))


def make_authenticator(value: Any, keypair: KeyPair,
                       receivers: Iterable[str]) -> Authenticator:
    """Build an authenticator over ``value`` for each receiver."""
    payload = canonical_bytes(value)
    macs = {}
    for receiver in receivers:
        key = _pair_key(keypair.secret, receiver)
        macs[receiver] = hmac.new(key, payload, hashlib.sha256).hexdigest()
    return Authenticator(sender=keypair.node_id, macs=macs)


def verify_authenticator(value: Any, auth: Authenticator, receiver: str,
                         registry: KeyRegistry) -> None:
    """Verify the MAC addressed to ``receiver``.

    Raises :class:`InvalidSignatureError` on mismatch or if no MAC was
    included for ``receiver``.
    """
    if receiver not in auth.macs:
        raise InvalidSignatureError(
            f"authenticator from {auth.sender!r} has no MAC for "
            f"{receiver!r}")
    payload = canonical_bytes(value)
    # Recompute on behalf of the receiver using the sender's secret.
    if not registry.known(auth.sender):
        raise UnknownSignerError(f"unknown sender {auth.sender!r}")
    sender_secret = registry._keys[auth.sender].secret  # noqa: SLF001
    key = _pair_key(sender_secret, receiver)
    expected = hmac.new(key, payload, hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, auth.macs[receiver]):
        raise InvalidSignatureError(
            f"bad MAC from {auth.sender!r} to {receiver!r}")
