"""MAC authenticator vectors (PBFT-style).

PBFT replaces most signatures with *authenticators*: a vector of MACs, one
per receiving replica, each computed under the pairwise session key.  We
model the pairwise key between ``a`` and ``b`` as
``HMAC(secret_a, b)`` xor-free derivation -- deterministic, distinct per
ordered pair, and computable only by ``a`` (the registry verifies on
behalf of ``b``).

Authenticators matter for fidelity of the *cost model*: a PBFT primary
computes O(n) MACs per message, which is cheap, whereas Zyzzyva/ezBFT
responses to clients carry signatures, which are expensive.  The
:class:`repro.sim.network.CpuModel` charges per ``cpu_cost_units``; message
classes set that field based on whether they carry an authenticator or a
signature.

Session keys are stable for the lifetime of a key pair, so
:func:`_pair_key` memoizes: the HMAC key derivation runs once per
ordered (sender, receiver) pair per process instead of once per MAC.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import InvalidSignatureError, UnknownSignerError

#: (sender_secret, receiver_id) -> derived pairwise session key.  A
#: cluster of n nodes only ever derives O(n^2) keys, so no eviction is
#: needed; the table is cleared defensively if it somehow grows huge
#: (e.g. a long-lived process cycling through many ephemeral clusters).
_PAIR_KEY_CACHE: Dict[Tuple[bytes, str], bytes] = {}
_PAIR_KEY_CACHE_MAX = 1 << 14


def _pair_key(sender_secret: bytes, receiver_id: str) -> bytes:
    cache_key = (sender_secret, receiver_id)
    key = _PAIR_KEY_CACHE.get(cache_key)
    if key is None:
        key = hmac.new(sender_secret, receiver_id.encode("utf-8"),
                       hashlib.sha256).digest()
        if len(_PAIR_KEY_CACHE) >= _PAIR_KEY_CACHE_MAX:
            _PAIR_KEY_CACHE.clear()
        _PAIR_KEY_CACHE[cache_key] = key
    return key


@dataclass(frozen=True)
class Authenticator:
    """A MAC vector: ``macs[receiver_id] -> hex tag``."""

    sender: str
    macs: Dict[str, str]

    def to_wire(self) -> dict:
        return {"sender": self.sender, "macs": dict(self.macs)}

    @classmethod
    def from_wire(cls, wire: dict) -> "Authenticator":
        return cls(sender=wire["sender"], macs=dict(wire["macs"]))


def make_authenticator(value: Any, keypair: KeyPair,
                       receivers: Iterable[str]) -> Authenticator:
    """Build an authenticator over ``value`` for each receiver."""
    payload = canonical_bytes(value)
    macs = {}
    for receiver in receivers:
        key = _pair_key(keypair.secret, receiver)
        macs[receiver] = hmac.new(key, payload, hashlib.sha256).hexdigest()
    return Authenticator(sender=keypair.node_id, macs=macs)


def verify_authenticator(value: Any, auth: Authenticator, receiver: str,
                         registry: KeyRegistry) -> None:
    """Verify the MAC addressed to ``receiver``.

    Raises :class:`InvalidSignatureError` on mismatch or if no MAC was
    included for ``receiver``.
    """
    if receiver not in auth.macs:
        raise InvalidSignatureError(
            f"authenticator from {auth.sender!r} has no MAC for "
            f"{receiver!r}")
    payload = canonical_bytes(value)
    # Recompute on behalf of the receiver using the sender's secret.
    if not registry.known(auth.sender):
        raise UnknownSignerError(f"unknown sender {auth.sender!r}")
    sender_secret = registry.secret_for(auth.sender)
    key = _pair_key(sender_secret, receiver)
    expected = hmac.new(key, payload, hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, auth.macs[receiver]):
        raise InvalidSignatureError(
            f"bad MAC from {auth.sender!r} to {receiver!r}")


def verify_authenticator_batch(
        items: Sequence[Tuple[Any, Authenticator]], receiver: str,
        registry: KeyRegistry) -> None:
    """Verify a batch of ``(value, authenticator)`` pairs for one receiver.

    Amortizes per-call setup: each distinct sender's pairwise key is
    resolved once for the whole batch, and a missing/unknown sender or a
    bad MAC raises on the first offending item (same exceptions, same
    semantics as calling :func:`verify_authenticator` in a loop).
    """
    session_keys: Dict[str, bytes] = {}
    for value, auth in items:
        if receiver not in auth.macs:
            raise InvalidSignatureError(
                f"authenticator from {auth.sender!r} has no MAC for "
                f"{receiver!r}")
        key = session_keys.get(auth.sender)
        if key is None:
            if not registry.known(auth.sender):
                raise UnknownSignerError(
                    f"unknown sender {auth.sender!r}")
            key = _pair_key(registry.secret_for(auth.sender), receiver)
            session_keys[auth.sender] = key
        payload = canonical_bytes(value)
        expected = hmac.new(key, payload, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, auth.macs[receiver]):
            raise InvalidSignatureError(
                f"bad MAC from {auth.sender!r} to {receiver!r}")
