"""Signature creation and verification over canonical message bytes."""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.digest import canonical_bytes
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import InvalidSignatureError


@dataclass(frozen=True)
class Signature:
    """A detached signature: who signed, and the tag.

    ``tag`` is the hex HMAC-SHA256 of the canonical encoding of the signed
    value.  Two signatures compare equal iff signer and tag match.
    """

    signer: str
    tag: str

    def to_wire(self) -> dict:
        return {"signer": self.signer, "tag": self.tag}

    @classmethod
    def from_wire(cls, wire: dict) -> "Signature":
        return cls(signer=wire["signer"], tag=wire["tag"])


def sign(value: Any, keypair: KeyPair) -> Signature:
    """Sign ``value`` (anything :func:`canonical_bytes` accepts)."""
    payload = canonical_bytes(value)
    return Signature(signer=keypair.node_id, tag=keypair.mac(payload))


def verify(value: Any, signature: Signature, registry: KeyRegistry) -> None:
    """Raise :class:`InvalidSignatureError` unless ``signature`` is valid.

    Verification recomputes the canonical bytes of ``value`` and compares
    tags in constant time.
    """
    payload = canonical_bytes(value)
    expected = registry.mac_for(signature.signer, payload)
    if not _hmac.compare_digest(expected, signature.tag):
        raise InvalidSignatureError(
            f"bad signature from {signature.signer!r}")


def is_valid(value: Any, signature: Signature, registry: KeyRegistry) -> bool:
    """Boolean form of :func:`verify`."""
    try:
        verify(value, signature, registry)
    except InvalidSignatureError:
        return False
    return True
