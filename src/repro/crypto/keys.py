"""Key material and the in-process key registry.

A :class:`KeyPair` is a node's signing secret.  The :class:`KeyRegistry`
plays the role of a PKI: it maps node ids to *verification* capability.
Honest code holds only its own :class:`KeyPair` plus a registry reference;
byzantine node objects receive the same and therefore cannot sign as
anyone else.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import UnknownSignerError


@dataclass(frozen=True)
class KeyPair:
    """A node's signing identity.

    ``secret`` is the HMAC key.  Construction is deterministic when
    ``seed`` material is supplied, which keeps whole-cluster setups
    reproducible.
    """

    node_id: str
    secret: bytes

    @classmethod
    def generate(cls, node_id: str, seed: bytes | None = None) -> "KeyPair":
        """Create a key pair, deterministically if ``seed`` is given."""
        if seed is None:
            secret = os.urandom(32)
        else:
            secret = hashlib.sha256(node_id.encode("utf-8") + seed).digest()
        return cls(node_id=node_id, secret=secret)

    def mac(self, payload: bytes) -> str:
        """HMAC-SHA256 tag over ``payload``, hex-encoded."""
        return hmac.new(self.secret, payload, hashlib.sha256).hexdigest()


class KeyRegistry:
    """Registry of every node's verification key.

    In a real deployment each node would hold peers' *public* keys; with
    HMAC standing in for ECDSA, the registry holds the shared secrets and
    exposes only verification to callers.
    """

    def __init__(self) -> None:
        self._keys: Dict[str, KeyPair] = {}
        #: Verification epoch: a fresh sentinel per key (re-)registration
        #: (see ``SignedPayload.verify``).  Cached verdicts are tagged
        #: with the epoch they were computed under; registering a key
        #: mints a new sentinel, invalidating every outstanding verdict
        #: at once -- a verdict is only valid for the key material it
        #: was computed against.
        self.verify_epoch: object = object()

    def register(self, keypair: KeyPair) -> None:
        self._keys[keypair.node_id] = keypair
        self.verify_epoch = object()

    def create(self, node_id: str, seed: bytes | None = None) -> KeyPair:
        """Generate, register and return a key pair for ``node_id``."""
        keypair = KeyPair.generate(node_id, seed=seed)
        self.register(keypair)
        return keypair

    def known(self, node_id: str) -> bool:
        return node_id in self._keys

    def secret_for(self, node_id: str) -> bytes:
        """The registered secret for ``node_id``.

        With HMAC standing in for ECDSA the registry necessarily holds
        raw secrets; MAC verification on behalf of a receiver (PBFT
        authenticator vectors) needs the *sender's* secret to re-derive
        the pairwise session key.  This accessor is that sanctioned
        path -- callers must not reach into ``_keys`` directly.
        """
        try:
            return self._keys[node_id].secret
        except KeyError:
            raise UnknownSignerError(
                f"no key registered for node {node_id!r}") from None

    def mac_for(self, node_id: str, payload: bytes) -> str:
        """Compute the tag ``node_id`` would produce -- used by ``verify``."""
        try:
            keypair = self._keys[node_id]
        except KeyError:
            raise UnknownSignerError(
                f"no key registered for node {node_id!r}") from None
        return keypair.mac(payload)
