"""Cryptographic substrate: digests, signatures, MAC authenticators.

The paper authenticates messages with ECDSA signatures and HMAC
authenticators (Go ``crypto`` package).  Offline, with only the standard
library available, we model signatures as HMAC-SHA256 tags keyed by a
per-node secret held in a :class:`KeyRegistry`.  Within a single simulated
process this gives the two properties the protocols rely on:

- **unforgeability** -- a byzantine node object has no access to other
  nodes' secrets, so it cannot fabricate a tag that verifies as theirs;
- **universal verifiability** -- any node can ask the registry to verify.

The *CPU cost* of real ECDSA is charged separately by the simulator's
:class:`repro.sim.network.CpuModel`; see DESIGN.md section 1.
"""

from repro.crypto.digest import canonical_bytes, digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, sign, verify
from repro.crypto.authenticator import (
    Authenticator,
    make_authenticator,
    verify_authenticator,
    verify_authenticator_batch,
)

__all__ = [
    "canonical_bytes",
    "digest",
    "KeyPair",
    "KeyRegistry",
    "Signature",
    "sign",
    "verify",
    "Authenticator",
    "make_authenticator",
    "verify_authenticator",
    "verify_authenticator_batch",
]
