"""Canonical serialization and SHA-256 digests.

Protocol messages must hash identically at every correct node, so the
encoding must be canonical: dictionaries are serialized with sorted keys,
and only JSON-representable primitives plus tuples/sets are accepted
(sets are sorted by their encoded form, tuples become lists).

Encoding is the hottest path in a saturated run (every signature, MAC,
and dependency key goes through it), so two mechanisms keep it cheap:

- **Instance memos.**  :func:`canonical_bytes` and :func:`digest`
  memoize their results for frozen message objects *on the instance*
  (stored via ``object.__setattr__``) rather than in a global table: a
  bounded table thrashes once a heavy run creates more distinct
  messages than it holds, while an instance memo has no eviction cliff
  and is garbage-collected with the message.
- **Splicing.**  The encoder writes string fragments in one pass and,
  on reaching a nested message object whose memo is valid, splices the
  cached encoding verbatim instead of re-serializing it -- a
  certificate carrying 3f+1 signed replies encodes as a concatenation
  of its (already signed, already encoded) envelopes.

Each memo records the content hash it was computed under -- a byzantine
in-process mutation via ``object.__setattr__`` changes the content
hash, the recorded hash no longer matches, and the bytes are recomputed
from the mutated fields, so a message altered after signing still fails
verification.  Objects whose fields are unhashable (e.g. dict-valued
snapshots) or that declare ``__slots__`` fall back to the uncached
encoder.
"""

from __future__ import annotations

import hashlib
from json.encoder import encode_basestring_ascii as _escape
from math import isinf, isnan
from typing import Any, List

from repro.errors import SerializationError

#: Instance attribute holding a ``(content_hash, bytes, str)`` memo.
#: Prefixed to stay out of the way of message fields; dataclass
#: ``__eq__``/``__repr__``/``to_wire`` never see it.
_BYTES_MEMO = "_repro_canonical_memo"
#: Instance attribute holding a ``(content_hash, hexdigest)`` memo.
_DIGEST_MEMO = "_repro_digest_memo"


def clear_caches() -> None:
    """Test isolation hook.

    Memos live on message instances (and record the content hash they
    were computed under), so there is no global state to drop here; the
    hook is kept so tests exercising cached-vs-uncached agreement have
    a stable name to call between passes.
    """


def _float_repr(value: float) -> str:
    if isnan(value):
        return "NaN"
    if isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return float.__repr__(value)


def _write(value: Any, out: List[str]) -> None:
    """Append the canonical encoding of ``value`` to ``out``.

    Fragments are ASCII (strings are escaped like ``json.dumps`` with
    ``ensure_ascii=True``), so cached encodings splice in verbatim.
    """
    if value is None:
        out.append("null")
        return
    kind = type(value)
    if kind is str:
        out.append(_escape(value))
        return
    if kind is bool:
        out.append("true" if value else "false")
        return
    if kind is int:
        out.append(repr(value))
        return
    if kind is float:
        out.append(_float_repr(value))
        return
    if isinstance(value, bytes):
        out.append('{"__bytes__":')
        out.append(_escape(value.hex()))
        out.append("}")
        return
    if isinstance(value, (list, tuple)):
        out.append("[")
        for i, item in enumerate(value):
            if i:
                out.append(",")
            _write(item, out)
        out.append("]")
        return
    if isinstance(value, (set, frozenset)):
        parts = []
        for item in value:
            sub: List[str] = []
            _write(item, sub)
            parts.append("".join(sub))
        parts.sort()
        out.append('{"__set__":[')
        out.append(",".join(parts))
        out.append("]}")
        return
    if isinstance(value, dict):
        try:
            keys = sorted(value)
        except TypeError:
            raise SerializationError("dict keys must be str") from None
        out.append("{")
        for i, key in enumerate(keys):
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be str, got {type(key).__name__}")
            if i:
                out.append(",")
            out.append(_escape(key))
            out.append(":")
            _write(value[key], out)
        out.append("}")
        return
    # Scalar subclasses (e.g. IntEnum) that json.dumps would accept.
    if isinstance(value, bool):
        out.append("true" if value else "false")
        return
    if isinstance(value, int):
        out.append(repr(int(value)))
        return
    if isinstance(value, float):
        out.append(_float_repr(float(value)))
        return
    if isinstance(value, str):
        out.append(_escape(str(value)))
        return
    # Dataclass-like objects used in messages expose to_wire().
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        try:
            content_hash = hash(value)
        except TypeError:
            content_hash = None
        if content_hash is not None:
            memo = getattr(value, _BYTES_MEMO, None)
            if memo is not None and memo[0] == content_hash:
                out.append(memo[2])  # splice the cached encoding
                return
        start = len(out)
        _write(to_wire(), out)
        if content_hash is not None:
            segment = "".join(out[start:])
            del out[start:]
            out.append(segment)
            try:
                object.__setattr__(
                    value, _BYTES_MEMO,
                    (content_hash, segment.encode("ascii"), segment))
            except (AttributeError, TypeError):
                pass  # __slots__ or exotic objects: stay uncached
        return
    raise SerializationError(
        f"cannot canonicalize value of type {type(value).__name__}")


def _encode(value: Any) -> bytes:
    """One-pass uncached entry to the canonical encoder."""
    out: List[str] = []
    _write(value, out)
    return "".join(out).encode("ascii")


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte encoding of ``value``.

    Equal values (after canonicalization) always produce equal bytes,
    regardless of dict insertion order or set iteration order.  Results
    for hashable message objects (anything exposing ``to_wire()``) are
    memoized on the instance; see the module docstring for why mutation
    cannot resurrect a stale entry.
    """
    if callable(getattr(value, "to_wire", None)):
        try:
            content_hash = hash(value)
        except TypeError:
            return _encode(value)
        memo = getattr(value, _BYTES_MEMO, None)
        if memo is not None and memo[0] == content_hash:
            return memo[1]
        encoded = _encode(value)  # _write populates the memo itself
        return encoded
    return _encode(value)


def digest(value: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``value``."""
    if callable(getattr(value, "to_wire", None)):
        try:
            content_hash = hash(value)
        except TypeError:
            return hashlib.sha256(canonical_bytes(value)).hexdigest()
        memo = getattr(value, _DIGEST_MEMO, None)
        if memo is not None and memo[0] == content_hash:
            return memo[1]
        hexdigest = hashlib.sha256(canonical_bytes(value)).hexdigest()
        try:
            object.__setattr__(value, _DIGEST_MEMO,
                               (content_hash, hexdigest))
        except (AttributeError, TypeError):
            pass
        return hexdigest
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
