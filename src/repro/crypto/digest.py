"""Canonical serialization and SHA-256 digests.

Protocol messages must hash identically at every correct node, so the
encoding must be canonical: dictionaries are serialized with sorted keys,
and only JSON-representable primitives plus tuples/sets are accepted
(sets are sorted, tuples become lists).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.errors import SerializationError


def _canonicalize(value: Any) -> Any:
    """Recursively convert ``value`` into a canonical JSON-compatible form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        canon = [_canonicalize(v) for v in value]
        try:
            canon.sort(key=lambda v: json.dumps(v, sort_keys=True))
        except TypeError as exc:  # pragma: no cover - defensive
            raise SerializationError(f"unsortable set element: {exc}")
        return {"__set__": canon}
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"dict keys must be str, got {type(key).__name__}")
            out[key] = _canonicalize(item)
        return out
    # Dataclass-like objects used in messages expose to_wire().
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        return _canonicalize(to_wire())
    raise SerializationError(
        f"cannot canonicalize value of type {type(value).__name__}")


def canonical_bytes(value: Any) -> bytes:
    """Deterministic byte encoding of ``value``.

    Equal values (after canonicalization) always produce equal bytes,
    regardless of dict insertion order or set iteration order.
    """
    canon = _canonicalize(value)
    return json.dumps(canon, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def digest(value: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()
