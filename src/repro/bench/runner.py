"""Benchmark grid definition, execution, and baseline comparison.

Every cell is a fully pinned :class:`~repro.scenario.spec.Scenario` --
seed, workload, timeouts, topology -- so the *scenario-clock* metrics
(delivered count, p50/p99 latency) are deterministic on the sim backend
and double as a behavior-regression gate, while the *wall-clock*
metrics (throughput per wall second, events per second) measure the
harness itself and are gated within a tolerance.

Sim cells run the saturation methodology of ``benchmarks/bench_util``:
open-loop clients in one region firing well past the cluster's service
rate, with the recovery timers (retry / suspicion / view change) pushed
out so saturation is never mistaken for a fault.  The TCP smoke cell is
a small closed loop over real sockets -- there to catch transport-layer
regressions, not to measure protocol throughput.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import Scenario, WorkloadSpec

#: Artifact schema version (the ``schema`` field of BENCH_<rev>.json).
BENCH_SCHEMA = 1

#: Saturated sim cell shape: 8 open-loop clients x 400 req/s for two
#: simulated seconds from one region = 6400 requests against a cluster
#: that fast-paths far fewer per second -- a deep, stable backlog that
#: keeps every replica's queue full for the whole horizon.
_SIM_CLIENTS = 8
_SIM_RATE = 400.0
_SIM_DURATION_MS = 2000.0
_SIM_SEED = 42


@dataclass(frozen=True)
class BenchCell:
    """One pinned cell of the benchmark grid."""

    name: str
    backend: str
    protocol: str
    batch_size: int = 1
    #: Included in the reduced CI grid (``--grid smoke``).
    smoke: bool = False

    def scenario(self) -> Scenario:
        if self.backend == "sim":
            return Scenario(
                name=f"bench-{self.name}",
                protocol=self.protocol,
                replica_regions=("virginia", "tokyo", "mumbai",
                                 "sydney"),
                latency="experiment1",
                duration_ms=_SIM_DURATION_MS,
                workload=WorkloadSpec(
                    mode="open",
                    client_regions=("virginia",),
                    clients_per_region=_SIM_CLIENTS,
                    rate_per_client=_SIM_RATE,
                    batch_size=self.batch_size,
                ),
                seed=_SIM_SEED,
                # Saturation methodology: recovery timers pushed far
                # past the horizon so backlog is never read as a fault.
                slow_path_timeout=30000.0,
                retry_timeout=300000.0,
                suspicion_timeout=300000.0,
                view_change_timeout=300000.0,
            )
        return Scenario(
            name=f"bench-{self.name}",
            protocol=self.protocol,
            replica_regions=("local", "local", "local", "local"),
            latency="local",
            workload=WorkloadSpec(
                mode="closed",
                client_regions=("local",),
                clients_per_region=2,
                requests_per_client=6,
            ),
            seed=_SIM_SEED,
            backends=("tcp",),
        )


#: The pinned grid: protocols x batch {1, 8} on sim (non-batching
#: protocols degrade batch cells to per-command submission -- the cell
#: then measures that degradation path), plus one TCP smoke cell.
PINNED_GRID: Tuple[BenchCell, ...] = tuple(
    BenchCell(name=f"sim-{protocol}-b{batch}", backend="sim",
              protocol=protocol, batch_size=batch,
              smoke=(batch == 1 and protocol in ("ezbft", "pbft")))
    for protocol in ("ezbft", "pbft", "zyzzyva", "fab")
    for batch in (1, 8)
) + (
    BenchCell(name="tcp-ezbft-smoke", backend="tcp", protocol="ezbft",
              smoke=True),
)


def grid_cells(grid: str = "full") -> Tuple[BenchCell, ...]:
    """The cells of the named grid: ``full`` or the reduced ``smoke``
    subset CI runs."""
    if grid == "full":
        return PINNED_GRID
    if grid == "smoke":
        return tuple(cell for cell in PINNED_GRID if cell.smoke)
    raise ConfigurationError(
        f"unknown bench grid {grid!r}; choose 'full' or 'smoke'")


def current_rev() -> str:
    """Short git revision of the working tree, or ``unknown``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def run_cell(cell: BenchCell) -> Dict[str, Any]:
    """Execute one cell and return its metrics dict."""
    scenario = cell.scenario()
    wall_start = time.perf_counter()
    report = ScenarioRunner(backend=cell.backend).run(scenario)
    wall = time.perf_counter() - wall_start
    events = report.network.get("events_processed")
    latency = report.latency
    metrics: Dict[str, Any] = {
        "backend": cell.backend,
        "protocol": cell.protocol,
        "batch_size": cell.batch_size,
        "delivered": report.delivered,
        "wall_seconds": round(wall, 3),
        # Harness speed: delivered requests per wall-clock second.
        "throughput": round(report.delivered / wall, 1) if wall else 0.0,
        # Scenario-clock metrics (deterministic on sim).
        "scenario_throughput_per_sec": round(
            report.throughput_per_sec, 3),
        "p50_ms": _r3(latency.p50),
        "p99_ms": _r3(latency.p99),
        "fast_path_ratio": _r3(report.fast_path_ratio),
    }
    if events is not None:
        metrics["events"] = events
        metrics["events_per_second"] = round(events / wall, 1) \
            if wall else 0.0
    return metrics


def _r3(value: float) -> Optional[float]:
    import math
    if value is None or math.isnan(value) or math.isinf(value):
        return None
    return round(value, 3)


def run_bench(grid: str = "full",
              progress: Optional[Callable[[BenchCell, Dict[str, Any]],
                                          None]] = None
              ) -> Dict[str, Any]:
    """Run the named grid and return the BENCH artifact dict."""
    cells: Dict[str, Dict[str, Any]] = {}
    for cell in grid_cells(grid):
        metrics = run_cell(cell)
        cells[cell.name] = metrics
        if progress is not None:
            progress(cell, metrics)
    return {
        "schema": BENCH_SCHEMA,
        "rev": current_rev(),
        "grid": grid,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "cells": cells,
    }


#: Sim fields that are deterministic per pinned scenario: a drift here
#: is a *behavior* change, not noise, and requires regenerating the
#: committed baseline deliberately.
_EXACT_SIM_FIELDS = ("delivered", "p50_ms", "p99_ms",
                     "scenario_throughput_per_sec")


def compare(new: Dict[str, Any], baseline: Dict[str, Any],
            tolerance: float = 0.35) -> List[str]:
    """Diff ``new`` against ``baseline``; returns failure descriptions.

    Gates, per cell present in both artifacts:

    - wall-clock ``throughput`` must be at least
      ``(1 - tolerance) x`` the baseline's (machine noise passes, a
      real slowdown fails);
    - on sim cells, the deterministic fields
      (:data:`_EXACT_SIM_FIELDS`) must match exactly -- a mismatch
      means behavior changed and the baseline needs deliberate
      regeneration.

    An empty list means the gate passes.  When both artifacts declare
    the same grid, cells missing from the new run fail (a shrunk grid
    must not pass silently); a reduced-grid run (e.g. CI's ``smoke``
    against the committed ``full`` baseline) only gates the cells it
    actually ran.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ConfigurationError(
            f"tolerance must be in [0, 1), got {tolerance}")
    problems: List[str] = []
    new_cells = new.get("cells", {})
    base_cells = baseline.get("cells", {})
    if new.get("grid") == baseline.get("grid"):
        for name in sorted(set(base_cells) - set(new_cells)):
            problems.append(
                f"{name}: present in baseline but not in the "
                f"new run (grid shrank?)")
    for name in sorted(new_cells):
        fresh = new_cells[name]
        base = base_cells.get(name)
        if base is None:
            continue  # new cell: no baseline to gate against
        floor = base.get("throughput", 0.0) * (1.0 - tolerance)
        got = fresh.get("throughput", 0.0)
        if got < floor:
            problems.append(
                f"{name}: throughput {got:.1f}/s fell below "
                f"{floor:.1f}/s ({(1 - tolerance):.0%} of baseline "
                f"{base.get('throughput', 0.0):.1f}/s)")
        if fresh.get("backend") == "sim":
            for key in _EXACT_SIM_FIELDS:
                if key in base and fresh.get(key) != base.get(key):
                    problems.append(
                        f"{name}: deterministic field {key!r} drifted "
                        f"({base.get(key)!r} -> {fresh.get(key)!r}); "
                        f"behavior changed -- regenerate the baseline "
                        f"deliberately if intended")
    return problems
