"""Pinned performance benchmark: the ``repro bench`` subcommand.

The harness can only prove speed wins (or catch regressions) against a
recorded trajectory, so this package pins one benchmark grid and one
JSON artifact shape (``BENCH_<rev>.json``) and keeps both stable:

- :data:`PINNED_GRID` -- all four protocols x batch size {1, 8} on the
  saturated sim workload, plus one TCP smoke cell;
- :func:`run_bench` -- execute the grid, returning the artifact dict;
- :func:`compare` -- diff a fresh artifact against a committed
  baseline under a throughput tolerance gate, with exact matching on
  the deterministic sim fields (delivered / p50 / p99).

See the README "Performance" section for how the baseline is
regenerated and what the gate enforces in CI.
"""

from repro.bench.runner import (
    BENCH_SCHEMA,
    BenchCell,
    PINNED_GRID,
    compare,
    current_rev,
    grid_cells,
    run_bench,
    run_cell,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchCell",
    "PINNED_GRID",
    "compare",
    "current_rev",
    "grid_cells",
    "run_bench",
    "run_cell",
]
