"""Final-execution engine: dependency graph -> deterministic application.

Paper Section IV-B: a committed command is executed once all its
dependencies are committed; the committed subgraph is condensed into
strongly connected components, components run in inverse topological
order, and commands inside a component run in sequence-number order with
replica-id tie-breaks.

Exactly-once: the same logical command can end up committed in two
instances (the original leader's slot recovered by an owner change *and*
the client's retry through another leader).  The executor therefore
de-duplicates by command identity -- the second occurrence is treated as
a no-op but still marked executed so the graph makes progress, and the
original result is preserved for the client.

Checkpoint garbage collection: :meth:`truncate` drops the execution
bookkeeping below a stable checkpoint's per-space frontier, and
:meth:`install` fast-forwards a lagging replica onto a transferred
snapshot.  Executed-command identities are tracked as a per-client
contiguous floor plus a sparse out-of-order window (clients assign
consecutive timestamps), so exactly-once bookkeeping stays bounded by
the in-flight window instead of growing with history.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.instance import EntryStatus, LogEntry
from repro.graph import execution_batches
from repro.statemachine.base import StateMachine
from repro.trace.span import SPAN_EXEC_APPLY
from repro.trace.tracer import NULL_TRACER
from repro.types import InstanceID

CommandIdent = Tuple[str, int]


class DependencyExecutor:
    """Tracks final-execution progress over a replica's whole log."""

    #: Tracing seam (no-op by default).  When live, the replica also
    #: sets :attr:`trace_parent` so each final application is recorded
    #: as an ``exec.apply`` span under the request's dependency-wait
    #: span; the disabled path is one attribute test per execution.
    tracer = NULL_TRACER
    #: ``trace_parent(entry) -> Optional[TraceContext]``, set by the
    #: replica when tracing is on (it owns the commit-time context
    #: bookkeeping the executor has no business knowing about).
    trace_parent = None
    #: Node id stamped on this executor's spans.
    trace_node = ""

    def __init__(self, statemachine: StateMachine) -> None:
        self.statemachine = statemachine
        #: Called after every single entry executes (checkpoint capture
        #: hook).  Captures must happen exactly at interval boundaries:
        #: one try_execute call can execute a whole dependency wave, so
        #: checking only between calls would capture at stray watermarks
        #: that never match other replicas' attestations.
        self.on_execute = None
        #: Optional escape hatch for dependencies on *duplicate*
        #: instances: ``dep_waiver(iid) -> bool`` may declare a dep
        #: satisfied even though the instance never committed.  The
        #: replica wires this to "the instance's command already
        #: executed via another instance" -- safe because execution is
        #: exactly-once by command identity, so any later commit of
        #: the duplicate applies as a cache hit, and every replica
        #: still applies the command before anything that depended on
        #: it.
        self.dep_waiver = None
        self.executed: Set[InstanceID] = set()
        self._results: Dict[CommandIdent, Any] = {}
        #: Committed entries from earlier calls still blocked on
        #: uncommitted dependencies (the incremental-frontier cache).
        self._deferred: Dict[InstanceID, LogEntry] = {}
        #: Execution history as (instance, command ident) pairs -- the
        #: cross-replica consistency tests compare these verbatim.
        #: ``history_offset`` counts entries truncated at checkpoints,
        #: so absolute execution positions stay comparable.
        self.history: List[Tuple[InstanceID, CommandIdent]] = []
        self.history_offset = 0
        #: Per-space first retained slot; instances below are durably
        #: executed (stable checkpoint) and treated as executed deps.
        self._low_slots: Dict[str, int] = {}
        #: Exactly-once tracking: every timestamp <= floor is executed,
        #: plus a sparse set of executed timestamps above the floor.
        self._client_floor: Dict[str, int] = {}
        self._client_sparse: Dict[str, Set[int]] = {}

    def try_execute(self, log_index: Dict[InstanceID, LogEntry],
                    candidates: Any = None) -> List[LogEntry]:
        """Execute every committed entry whose dependency closure is
        committed.  Returns the entries executed by this call, in order.

        ``candidates`` (an iterable of newly committed entries) keeps
        the hot path incremental: only those entries plus the blocked
        frontier from earlier calls are considered, instead of
        re-scanning the whole log on every commit.  Without it, the
        full ``log_index`` is scanned (the original semantics)."""
        if candidates is None:
            pool = {
                iid: entry for iid, entry in log_index.items()
                if entry.status == EntryStatus.COMMITTED
            }
        else:
            pool = dict(self._deferred)
            for entry in candidates:
                if entry.status == EntryStatus.COMMITTED and \
                        entry.instance not in self.executed:
                    pool[entry.instance] = entry
        executed_now: List[LogEntry] = []
        # Executing a wave can newly satisfy a dep_waiver for entries
        # deferred in the same call (the duplicate's command just
        # executed), so iterate to the fixpoint instead of waiting for
        # the next commit to re-trigger us.
        while pool:
            ready = self._ready_set(pool)
            self._deferred = {
                iid: entry for iid, entry in pool.items()
                if iid not in ready
            }
            if not ready:
                break
            graph = {
                iid: [d for d in entry.deps if d in ready]
                for iid, entry in ready.items()
            }
            for batch in execution_batches(
                    graph, sort_key=lambda iid: ready[iid].sort_key):
                for iid in batch:
                    entry = ready[iid]
                    self._execute_entry(entry)
                    executed_now.append(entry)
            pool = dict(self._deferred)
        return executed_now

    def result_of(self, ident: CommandIdent) -> Any:
        """Final result of an already-executed command."""
        return self._results.get(ident)

    def has_executed(self, ident: CommandIdent) -> bool:
        client, timestamp = ident
        if timestamp <= self._client_floor.get(client, 0):
            return True
        return timestamp in self._client_sparse.get(client, ())

    def is_executed_instance(self, iid: InstanceID) -> bool:
        """Executed here, or durably executed below a checkpoint."""
        return iid in self.executed or \
            iid.slot < self._low_slots.get(iid.owner, 0)

    @property
    def executed_count(self) -> int:
        return self.history_offset + len(self.history)

    def latest_executed_ts(self) -> Dict[str, int]:
        """Per-client highest executed timestamp."""
        latest = dict(self._client_floor)
        for client, sparse in self._client_sparse.items():
            if sparse:
                latest[client] = max(latest.get(client, 0), max(sparse))
        return latest

    def client_progress(self) -> Tuple[Dict[str, int],
                                       Dict[str, List[int]]]:
        """Deterministic exactly-once state for checkpoint snapshots:
        (contiguous floors, sorted executed timestamps above floor)."""
        floors = dict(self._client_floor)
        sparse = {client: sorted(ts_set)
                  for client, ts_set in self._client_sparse.items()
                  if ts_set}
        return floors, sparse

    def latest_results(self) -> Dict[str, Any]:
        """Per-client result of the latest executed command, where still
        retained -- the reply-cache portion of a checkpoint snapshot."""
        out: Dict[str, Any] = {}
        for client, timestamp in self.latest_executed_ts().items():
            ident = (client, timestamp)
            if ident in self._results:
                out[client] = self._results[ident]
        return out

    # ------------------------------------------------------------------
    # Checkpoint GC and state transfer
    # ------------------------------------------------------------------
    def truncate(self, watermark: int,
                 low_slots: Dict[str, int]) -> None:
        """Garbage-collect bookkeeping below a stable checkpoint.

        ``watermark`` is the checkpoint's executed-command count (the
        history prefix to drop); ``low_slots`` maps each space to its
        first retained slot.  Results are retained for each client's
        latest executed command (the reply-cache contract); everything
        older is durable in the checkpoint and can go."""
        for owner, slot in low_slots.items():
            if slot > self._low_slots.get(owner, 0):
                self._low_slots[owner] = slot
        self.executed = {
            iid for iid in self.executed
            if iid.slot >= self._low_slots.get(iid.owner, 0)
        }
        keep_from = watermark - self.history_offset
        if keep_from <= 0:
            return
        dropped = self.history[:keep_from]
        self.history = self.history[keep_from:]
        self.history_offset = watermark
        latest = self.latest_executed_ts()
        for _, ident in dropped:
            client, timestamp = ident
            if timestamp != latest.get(client):
                self._results.pop(ident, None)

    def install(self, watermark: int, low_slots: Dict[str, int],
                client_floors: Dict[str, int],
                client_sparse: Dict[str, Iterable[int]],
                executed_above: Iterable[InstanceID],
                client_results: Optional[Dict[str, Any]] = None) -> None:
        """Fast-forward onto a transferred stable checkpoint.

        The snapshot's state already reflects the first ``watermark``
        executions; ``executed_above`` lists the instances among them
        that sit above the GC frontier (they must be marked executed
        without re-applying their commands).  ``client_results`` seeds
        the latest-result-per-client cache so duplicate commits keep
        answering with the real result after the transfer."""
        for owner, slot in low_slots.items():
            if slot > self._low_slots.get(owner, 0):
                self._low_slots[owner] = slot
        self.history = []
        self.history_offset = watermark
        self.executed = set(executed_above)
        self._client_floor = dict(client_floors)
        self._client_sparse = {
            client: set(ts_list)
            for client, ts_list in client_sparse.items() if ts_list
        }
        self._results = {}
        if client_results:
            latest = self.latest_executed_ts()
            for client, result in client_results.items():
                if client in latest:
                    self._results[(client, latest[client])] = result
        self._deferred = {}

    # ------------------------------------------------------------------
    def _ready_set(self, pool: Dict[InstanceID, LogEntry]
                   ) -> Dict[InstanceID, LogEntry]:
        """Committed-but-unexecuted entries whose dependencies are all
        either executed or also in the returned set (fixpoint)."""
        candidates = dict(pool)
        changed = True
        while changed:
            changed = False
            for iid in list(candidates):
                entry = candidates[iid]
                for dep in entry.deps:
                    if dep in candidates or \
                            self.is_executed_instance(dep) or \
                            (self.dep_waiver is not None and
                             self.dep_waiver(dep)):
                        continue
                    del candidates[iid]
                    changed = True
                    break
        return candidates

    def _execute_entry(self, entry: LogEntry) -> None:
        ident = entry.command.ident
        span = None
        tracer = self.tracer
        if tracer.enabled and self.trace_parent is not None:
            span = tracer.start_span(SPAN_EXEC_APPLY, self.trace_node,
                                     parent=self.trace_parent(entry))
        if entry.command.is_noop:
            entry.final_result = None
        elif self.has_executed(ident):
            entry.final_result = self._results.get(ident)
        else:
            entry.final_result = self.statemachine.apply(entry.command)
            self._results[ident] = entry.final_result
        if span is not None:
            tracer.end_span(span)
        if not entry.command.is_noop:
            self._record_ident(ident)
        entry.status = EntryStatus.EXECUTED
        self.executed.add(entry.instance)
        self.history.append((entry.instance, ident))
        if self.on_execute is not None:
            self.on_execute(entry)

    def _record_ident(self, ident: CommandIdent) -> None:
        client, timestamp = ident
        floor = self._client_floor.get(client, 0)
        if timestamp <= floor:
            return
        sparse = self._client_sparse.setdefault(client, set())
        sparse.add(timestamp)
        while floor + 1 in sparse:
            floor += 1
            sparse.discard(floor)
        self._client_floor[client] = floor
        if not sparse:
            self._client_sparse.pop(client, None)
