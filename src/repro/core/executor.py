"""Final-execution engine: dependency graph -> deterministic application.

Paper Section IV-B: a committed command is executed once all its
dependencies are committed; the committed subgraph is condensed into
strongly connected components, components run in inverse topological
order, and commands inside a component run in sequence-number order with
replica-id tie-breaks.

Exactly-once: the same logical command can end up committed in two
instances (the original leader's slot recovered by an owner change *and*
the client's retry through another leader).  The executor therefore
de-duplicates by command identity -- the second occurrence is treated as
a no-op but still marked executed so the graph makes progress, and the
original result is preserved for the client.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.core.instance import EntryStatus, LogEntry
from repro.graph import execution_batches
from repro.statemachine.base import StateMachine
from repro.types import InstanceID

CommandIdent = Tuple[str, int]


class DependencyExecutor:
    """Tracks final-execution progress over a replica's whole log."""

    def __init__(self, statemachine: StateMachine) -> None:
        self.statemachine = statemachine
        self.executed: Set[InstanceID] = set()
        self._executed_idents: Set[CommandIdent] = set()
        self._results: Dict[CommandIdent, Any] = {}
        #: Committed entries from earlier calls still blocked on
        #: uncommitted dependencies (the incremental-frontier cache).
        self._deferred: Dict[InstanceID, LogEntry] = {}
        #: Execution history as (instance, command ident) pairs -- the
        #: cross-replica consistency tests compare these verbatim.
        self.history: List[Tuple[InstanceID, CommandIdent]] = []

    def try_execute(self, log_index: Dict[InstanceID, LogEntry],
                    candidates: Any = None) -> List[LogEntry]:
        """Execute every committed entry whose dependency closure is
        committed.  Returns the entries executed by this call, in order.

        ``candidates`` (an iterable of newly committed entries) keeps
        the hot path incremental: only those entries plus the blocked
        frontier from earlier calls are considered, instead of
        re-scanning the whole log on every commit.  Without it, the
        full ``log_index`` is scanned (the original semantics)."""
        if candidates is None:
            pool = {
                iid: entry for iid, entry in log_index.items()
                if entry.status == EntryStatus.COMMITTED
            }
        else:
            pool = dict(self._deferred)
            for entry in candidates:
                if entry.status == EntryStatus.COMMITTED and \
                        entry.instance not in self.executed:
                    pool[entry.instance] = entry
        ready = self._ready_set(pool)
        self._deferred = {
            iid: entry for iid, entry in pool.items()
            if iid not in ready
        }
        if not ready:
            return []
        graph = {
            iid: [d for d in entry.deps if d in ready]
            for iid, entry in ready.items()
        }
        executed_now: List[LogEntry] = []
        for batch in execution_batches(
                graph, sort_key=lambda iid: ready[iid].sort_key):
            for iid in batch:
                entry = ready[iid]
                self._execute_entry(entry)
                executed_now.append(entry)
        return executed_now

    def result_of(self, ident: CommandIdent) -> Any:
        """Final result of an already-executed command."""
        return self._results.get(ident)

    def has_executed(self, ident: CommandIdent) -> bool:
        return ident in self._executed_idents

    @property
    def executed_count(self) -> int:
        return len(self.history)

    # ------------------------------------------------------------------
    def _ready_set(self, pool: Dict[InstanceID, LogEntry]
                   ) -> Dict[InstanceID, LogEntry]:
        """Committed-but-unexecuted entries whose dependencies are all
        either executed or also in the returned set (fixpoint)."""
        candidates = dict(pool)
        changed = True
        while changed:
            changed = False
            for iid in list(candidates):
                entry = candidates[iid]
                for dep in entry.deps:
                    if dep in self.executed or dep in candidates:
                        continue
                    del candidates[iid]
                    changed = True
                    break
        return candidates

    def _execute_entry(self, entry: LogEntry) -> None:
        ident = entry.command.ident
        if entry.command.is_noop:
            entry.final_result = None
        elif ident in self._executed_idents:
            entry.final_result = self._results.get(ident)
        else:
            entry.final_result = self.statemachine.apply(entry.command)
            self._executed_idents.add(ident)
            self._results[ident] = entry.final_result
        entry.status = EntryStatus.EXECUTED
        self.executed.add(entry.instance)
        self.history.append((entry.instance, ident))
