"""The ezBFT replica: every replica is a potential command-leader.

Implements paper Section IV: the fast-path proposal pipeline (steps 2-3),
speculative execution, slow-path commit handling (step 5.2), fast commits
(step 5.1), retried-request relaying (step 4.3), proof-of-misbehavior
handling (step 4.4), and the owner-change protocol (Section IV-E, via
:class:`repro.core.owner_change.OwnerChangeManager`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.node import NodeContext, Timer
from repro.config import ProtocolConfig
from repro.core.batching import (
    RequestBatcher,
    batch_request_is_authentic,
    fresh_batch_commands,
)
from repro.core.executor import DependencyExecutor
from repro.core.instance import EntryStatus, InstanceSpace, LogEntry
from repro.core.owner_change import OwnerChangeManager, summarize_entry
from repro.crypto.digest import digest
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.errors import ProtocolError
from repro.messages.base import SignedPayload, decode
from repro.messages.batching import BatchRequest, BatchSpecOrder
from repro.obs.instruments import NULL
from repro.messages.ezbft import (
    Commit,
    CommitFast,
    CommitReply,
    EzCheckpoint,
    LogEntrySummary,
    NewOwner,
    OwnerChange,
    ProofOfMisbehavior,
    Request,
    ResendRequest,
    SpecOrder,
    SpecReply,
    StartOwnerChange,
    StateTransferReply,
    StateTransferRequest,
)
from repro.statemachine.base import Command, StateMachine
from repro.statemachine.checkpoint import Checkpoint, CheckpointStore
from repro.statemachine.interference import InterferenceRelation
from repro.trace.context import trace_id_for
from repro.trace.span import (
    SPAN_EXEC_DEPWAIT,
    SPAN_OWNER_LEAD,
    SPAN_REPLICA_COMMIT,
    SPAN_REPLICA_VOTE,
)
from repro.trace.tracer import NULL_TRACER
from repro.types import InstanceID


class _RecoveryContext:
    """ctx stand-in during WAL replay: sends and broadcasts are muted
    (the cluster already saw them pre-crash; re-sending would duplicate
    protocol traffic), everything else passes through to the real
    context."""

    def __init__(self, inner: NodeContext) -> None:
        self._inner = inner

    def send(self, target: str, message: Any) -> None:
        pass

    def broadcast(self, targets: Any, message: Any) -> None:
        pass

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class EzBFTReplica:
    """One ezBFT replica node.

    Parameters
    ----------
    node_id:
        This replica's identifier (must appear in ``config.replica_ids``).
    config:
        Shared membership/quorum/timeout configuration.
    ctx:
        Transport-agnostic environment (send, timers, clock).
    keypair / registry:
        Signing identity and the verification registry.
    statemachine:
        The replicated application (normally a
        :class:`repro.statemachine.KVStore`).
    interference:
        The command-interference relation used for dependency collection.
    """

    #: Observability seam: the shared no-op singleton by default;
    #: ``repro serve`` swaps in a live registry-backed instrument set.
    instruments = NULL
    #: Tracing seam, same discipline (see :mod:`repro.trace`): no-op
    #: singleton by default, swapped via :meth:`attach_tracer`; every
    #: span site guards on ``tracer.enabled``.
    tracer = NULL_TRACER
    #: Durability seam: ``None`` keeps every persistence hook one
    #: attribute test on the bench-gated hot path; ``repro serve
    #: --data-dir`` (and ``durable=true`` scenarios) attach a
    #: :class:`repro.storage.ReplicaStorage` via :meth:`attach_storage`.
    storage = None
    #: True while :meth:`recover_from_storage` replays the WAL:
    #: disables persistence (the records are already on disk) and mutes
    #: sends (the cluster saw them pre-crash).
    _recovering = False

    def __init__(self, node_id: str, config: ProtocolConfig,
                 ctx: NodeContext, keypair: KeyPair,
                 registry: KeyRegistry, statemachine: StateMachine,
                 interference: InterferenceRelation) -> None:
        if node_id not in config.replica_ids:
            raise ProtocolError(f"{node_id!r} not in replica set")
        self.node_id = node_id
        self.config = config
        self.ctx = ctx
        self.keypair = keypair
        self.registry = registry
        self.statemachine = statemachine
        self.interference = interference

        self.spaces: Dict[str, InstanceSpace] = {
            rid: InstanceSpace(rid, config.initial_owner_number(rid))
            for rid in config.replica_ids
        }
        self._log_index: Dict[InstanceID, LogEntry] = {}
        #: Per-key index of instances, used to keep dependency collection
        #: O(|same-key history|) instead of O(|log|).
        self._key_index: Dict[str, List[InstanceID]] = {}
        self.executor = DependencyExecutor(statemachine)
        #: Checkpoint captures hook in per executed entry, not per
        #: commit wave: a wave can straddle an interval boundary, and a
        #: capture at a stray watermark would never match the other
        #: replicas' attestations (permanently disabling GC here).
        self.executor.on_execute = self._on_entry_executed
        #: A dep on an uncommitted *duplicate* instance -- one holding
        #: a command that already executed via its chosen instance --
        #: is satisfied; without this, a client retry that proposed the
        #: same command through a second leader leaves an orphan dep
        #: that blocks execution forever (exactly-once applies make
        #: the waiver safe; see DependencyExecutor.dep_waiver).
        self.executor.dep_waiver = self._duplicate_dep_waiver
        self.owner_changes = OwnerChangeManager(self)
        #: Owner-path batcher: requests this replica will lead are
        #: accumulated and flushed as one BATCHSPECORDER (pass-through
        #: when ``config.batch_size == 1``).
        self.batcher = RequestBatcher(
            batch_size=config.batch_size,
            batch_timeout_ms=config.batch_timeout_ms,
            flush_fn=self._flush_lead_batch,
            set_timer_fn=ctx.set_timer)

        #: Exactly-once bookkeeping (paper's "Nitpick" in step 2).
        self._client_ts: Dict[str, int] = {}
        self._client_reply_cache: Dict[str, Tuple[int, SignedPayload]] = {}

        #: Tracing bookkeeping (both stay empty unless a tracer is
        #: attached): per instance, the commit event's context and the
        #: commit-time clock, consumed by :meth:`_trace_exec_parent`
        #: when the entry finally executes; per command ident, the
        #: client's wire context, stashed at enqueue because the
        #: batcher may lead well after the delivery that carried it.
        self._trace_slots: Dict[InstanceID, Tuple[Any, float]] = {}
        self._trace_requests: Dict[Tuple[str, int], Any] = {}

        #: SPECORDERs that arrived before their predecessor slot:
        #: (space owner, slot) -> (inner order, signed envelope).  The
        #: envelope may be a singleton SPECORDER or a BATCHSPECORDER
        #: covering the order.
        self._pending_spec_orders: Dict[
            Tuple[str, int], Tuple[SpecOrder, SignedPayload]] = {}
        #: Suspicion timers set after relaying a RESENDREQ (step 4.3):
        #: command digest -> (suspected replica, timer).
        self._suspicions: Dict[str, Tuple[str, Timer]] = {}
        #: Rolling per-space digest of our own proposal history (the
        #: SPECORDER ``log_digest`` field, maintained incrementally).
        self._space_chain: Dict[str, str] = {}

        #: Checkpointing: local snapshots + peer attestations; on
        #: stability the log below the checkpoint's per-space frontier
        #: is garbage-collected (paper: owner changes carry "instances
        #: executed or committed since the last checkpoint").
        self.checkpoints = CheckpointStore(
            quorum=config.slow_quorum_size,
            interval=config.checkpoint_interval)
        #: (watermark, digest) -> replica -> its signed EZCHECKPOINT;
        #: the stable set doubles as the state-transfer proof.
        self._checkpoint_proofs: Dict[
            Tuple[int, str], Dict[str, SignedPayload]] = {}
        #: Signed attestation quorum for the current stable checkpoint,
        #: tagged with its watermark (stability can advance on vote
        #: counts while the retained envelopes lag; a mismatched proof
        #: must never be served).
        self._stable_proof: Tuple[SignedPayload, ...] = ()
        self._stable_proof_watermark = -1
        #: Per-space cached contiguous-executed frontier cursor, so
        #: captures cost O(new executions) instead of rescanning the
        #: whole executed prefix when stability stalls.
        self._frontier_cursor: Dict[str, int] = {}
        #: Every (watermark, digest) that became stable here, in order --
        #: cross-replica agreement tests compare these.
        self.checkpoint_log: List[Tuple[int, str]] = []
        #: Highest watermark we already requested a state transfer for,
        #: and the peers asked at that watermark (up to f+1 distinct
        #: peers, so at least one is correct and answers).
        self._transfer_requested = -1
        self._transfer_peers_asked: set = set()

        # Metrics.
        self.stats = {
            "led": 0,
            "batches_led": 0,
            "spec_ordered": 0,
            "committed_fast": 0,
            "committed_slow": 0,
            "executed": 0,
            "owner_changes_started": 0,
            "invalid_messages": 0,
            "checkpoints": 0,
            "checkpoints_stable": 0,
            "log_entries_gcd": 0,
            "state_transfers_served": 0,
            "state_transfers_installed": 0,
        }

    # ------------------------------------------------------------------
    # Tracing seam
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer: Any) -> None:
        """Attach a live tracer (see :mod:`repro.trace`) to this
        replica and its executor, with the executor's ``exec.apply``
        spans parented through our commit-time context bookkeeping."""
        self.tracer = tracer
        self.executor.tracer = tracer
        self.executor.trace_node = self.node_id
        self.executor.trace_parent = self._trace_exec_parent

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: str, message: Any) -> None:
        """Entry point for every message delivered to this replica."""
        if isinstance(message, SignedPayload):
            if not message.verify(self.registry):
                self.stats["invalid_messages"] += 1
                return
            payload = message.payload
            handler = self._SIGNED_HANDLERS.get(type(payload).MSG_TYPE)
            if handler is None:
                self.stats["invalid_messages"] += 1
                return
            handler(self, sender, payload, message)
            return
        handler = self._PLAIN_HANDLERS.get(type(message).MSG_TYPE, None)
        if handler is None:
            self.stats["invalid_messages"] += 1
            return
        handler(self, sender, message)

    # ------------------------------------------------------------------
    # Step 2: client request -> command-leader proposal
    # ------------------------------------------------------------------
    def _on_request(self, sender: str, request: Request,
                    envelope: SignedPayload) -> None:
        if envelope.signer != request.client_id:
            self.stats["invalid_messages"] += 1
            return
        client = request.client_id
        t = request.timestamp
        cached_t = self._client_ts.get(client, -1)
        if t <= cached_t:
            cached = self._client_reply_cache.get(client)
            if cached is not None and cached[0] == t:
                self.ctx.send(client, cached[1])
                return
            # An older timestamp is *not* necessarily stale: open-loop
            # clients pipeline many outstanding timestamps, so under
            # message loss a retry of t=5 can arrive after we led
            # t=25.  Only drop if we already ordered this command
            # (re-replying where we can); a genuinely unseen command
            # proceeds to the normal lead/relay path.  Execution stays
            # exactly-once regardless -- the executor dedups applies
            # by (client, timestamp).
            entry = self._find_entry_for_command(request.command)
            if entry is not None:
                self._reaffirm_entry(entry)
                return

        if request.original_replica not in (None, self.node_id):
            # Client retry broadcast (step 4.3): relay to the original
            # recipient and start suspecting it.
            self._relay_resend(request)
            return

        self._enqueue_lead(request)

    def _on_batch_request(self, sender: str, batch: BatchRequest,
                          envelope: SignedPayload) -> None:
        """A client's batched submission: one signature, many commands.

        Unpacks into the normal leading path after per-command
        exactly-once checks; all commands must belong to the signer.
        """
        if not batch_request_is_authentic(batch, envelope):
            self.stats["invalid_messages"] += 1
            return
        for command in fresh_batch_commands(
                batch, self._client_ts, self._client_reply_cache,
                lambda cached: self.ctx.send(batch.client_id, cached)):
            self._enqueue_lead(Request(command=command))

    def _enqueue_lead(self, request: Request) -> None:
        """Hand a request we will lead to the owner-path batcher (which
        passes straight through when batching is disabled)."""
        tracer = self.tracer
        if tracer.enabled:
            # The batcher may flush after this delivery returns, by
            # which time the client's wire context is gone -- stash it
            # per ident for :meth:`_trace_lead_span` to pick up.  The
            # trace-id check matters for client-side BATCHREQUESTs:
            # one frame carries many commands but only the first
            # sampled command's context, and adopting it for the rest
            # would graft their spans onto the wrong trace.
            ctx = tracer.current()
            ident = request.command.ident
            if ctx is not None and ctx.trace_id == trace_id_for(*ident):
                self._trace_requests[ident] = ctx
        self.batcher.add(request)

    def _trace_lead_span(self, command: Command) -> Optional[Any]:
        """Open the ``owner.lead`` span for a request we are leading,
        parented at the client context stashed at enqueue time.  No
        stash (unsampled trace, or a command that rode another trace's
        frame) means no span -- never guess a parent."""
        tracer = self.tracer
        parent = self._trace_requests.pop(command.ident, None)
        if parent is None:
            return None
        return tracer.start_span(SPAN_OWNER_LEAD, self.node_id,
                                 parent=parent)

    def _flush_lead_batch(self, requests: List[Request]) -> None:
        """Batcher flush: lead the accumulated requests.

        Duplicates that slipped in while queued (e.g. a client retry
        during the batch window) are dropped here, where the whole
        batch is visible; singletons degrade to the classic unbatched
        SPECORDER path.
        """
        space = self.spaces[self.node_id]
        if space.frozen:
            # We were deposed by an owner change; we may no longer
            # propose.  The clients' retries will reach other replicas.
            return
        fresh: List[Request] = []
        seen = set()
        for request in requests:
            ident = request.command.ident
            if ident in seen:
                continue
            seen.add(ident)
            if self._find_entry_for_command(request.command) is not None:
                continue
            fresh.append(request)
        if not fresh:
            return
        if len(fresh) == 1:
            self._lead(fresh[0])
        else:
            self._lead_batch(fresh)

    def _lead_batch(self, requests: List[Request]) -> None:
        """Become the command-leader for a whole batch: allocate
        consecutive slots and broadcast one signed BATCHSPECORDER
        covering all of them (paper step 2, amortized)."""
        space = self.spaces[self.node_id]
        tracer = self.tracer
        orders: List[SpecOrder] = []
        entries: List[LogEntry] = []
        spans: List[Any] = []
        for request in requests:
            command = request.command
            if tracer.enabled:
                spans.append(self._trace_lead_span(command))
            # max(): leading a late retry of an older timestamp must
            # not lower the dedup watermark below newer commands.
            self._client_ts[command.client_id] = max(
                self._client_ts.get(command.client_id, -1),
                command.timestamp)
            slot = space.allocate_slot()
            instance = InstanceID(self.node_id, slot)
            deps = self._collect_deps(command, exclude=instance)
            seq = 1 + self._max_dep_seq(deps)
            order = SpecOrder(
                leader=self.node_id,
                owner_number=space.owner_number,
                instance=instance,
                command=command,
                deps=deps,
                seq=seq,
                log_digest=self._space_digest(space),
                request_digest=digest(request),
            )
            entry = LogEntry(instance=instance,
                             owner_number=space.owner_number,
                             command=command, deps=deps, seq=seq)
            # Install before processing the next request so later batch
            # members see dependencies on earlier ones.
            self._install_entry(entry)
            self._advance_space_digest(space, entry)
            space.expected_slot = slot + 1
            self._speculative_execute(entry)
            self.stats["led"] += 1
            orders.append(order)
            entries.append(entry)
        batch = BatchSpecOrder(leader=self.node_id,
                               owner_number=space.owner_number,
                               orders=tuple(orders))
        signed_batch = SignedPayload.create(batch, self.keypair)
        for entry in entries:
            entry.spec_order = signed_batch
        self.stats["batches_led"] += 1
        self._persist_entry(self.node_id, signed_batch)
        if not spans:
            self.ctx.broadcast(self.config.others(self.node_id),
                               signed_batch)
            for entry, order in zip(entries, orders):
                self._send_spec_reply(entry, signed_batch,
                                      request_digest=order.request_digest)
            return
        # Traced: the single BATCHSPECORDER broadcast is attributed to
        # the first sampled request's lead context (exact when
        # batch_size == 1; a documented approximation for larger
        # batches), while each SPECREPLY rides its own lead context.
        batch_ctx = next((s.context() for s in spans if s is not None),
                         None)
        prev = tracer.set_current(batch_ctx)
        try:
            self.ctx.broadcast(self.config.others(self.node_id),
                               signed_batch)
        finally:
            tracer.set_current(prev)
        for entry, order, span in zip(entries, orders, spans):
            if span is None:
                self._send_spec_reply(entry, signed_batch,
                                      request_digest=order.request_digest)
                continue
            prev = tracer.set_current(span.context())
            try:
                self._send_spec_reply(entry, signed_batch,
                                      request_digest=order.request_digest)
            finally:
                tracer.set_current(prev)
                tracer.end_span(span)

    def _lead(self, request: Request) -> None:
        """Become the command-leader for ``request`` (paper step 2)."""
        space = self.spaces[self.node_id]
        if space.frozen:
            # We were deposed by an owner change; we may no longer
            # propose.  The client's retry will reach another replica.
            return
        command = request.command
        tracer = self.tracer
        span = self._trace_lead_span(command) if tracer.enabled else None
        # max(): leading a late retry of an older timestamp must not
        # lower the dedup watermark below newer commands.
        self._client_ts[command.client_id] = max(
            self._client_ts.get(command.client_id, -1),
            command.timestamp)
        slot = space.allocate_slot()
        instance = InstanceID(self.node_id, slot)
        deps = self._collect_deps(command, exclude=instance)
        seq = 1 + self._max_dep_seq(deps)
        request_digest = digest(request)
        spec_order = SpecOrder(
            leader=self.node_id,
            owner_number=space.owner_number,
            instance=instance,
            command=command,
            deps=deps,
            seq=seq,
            log_digest=self._space_digest(space),
            request_digest=request_digest,
        )
        signed_order = SignedPayload.create(spec_order, self.keypair)
        entry = LogEntry(instance=instance,
                         owner_number=space.owner_number,
                         command=command, deps=deps, seq=seq,
                         spec_order=signed_order)
        self._install_entry(entry)
        self._advance_space_digest(space, entry)
        space.expected_slot = slot + 1
        self._speculative_execute(entry)
        self.stats["led"] += 1

        self._persist_entry(self.node_id, signed_order)
        if span is None:
            self.ctx.broadcast(self.config.others(self.node_id),
                               signed_order)
            self._send_spec_reply(entry, signed_order)
            return
        # The SPECORDER broadcast and our own SPECREPLY ride the lead
        # context, so every peer's vote span parents under it.
        prev = tracer.set_current(span.context())
        try:
            self.ctx.broadcast(self.config.others(self.node_id),
                               signed_order)
            self._send_spec_reply(entry, signed_order)
        finally:
            tracer.set_current(prev)
            tracer.end_span(span)

    def _relay_resend(self, request: Request) -> None:
        """Relay a retried request to its original recipient and start a
        suspicion timer (paper step 4.3)."""
        ident_key = digest(request.command)
        already = self._find_entry_for_command(request.command)
        if already is not None:
            # We have already spec-ordered this command; re-reply (and
            # re-broadcast the order if we led it) so retries converge
            # on one instance.
            self._reaffirm_entry(already)
            return
        resend = ResendRequest(request=request, forwarder=self.node_id)
        self.ctx.send(request.original_replica, resend)
        if ident_key not in self._suspicions:
            timer = self.ctx.set_timer(
                self.config.suspicion_timeout,
                self._on_suspicion_timeout, request.original_replica,
                ident_key)
            self._suspicions[ident_key] = \
                (request.original_replica, timer)

    def _on_suspicion_timeout(self, suspect: str, ident_key: str) -> None:
        self._suspicions.pop(ident_key, None)
        self.owner_changes.suspect(suspect)

    def _on_resend_request(self, sender: str,
                           resend: ResendRequest) -> None:
        """Original recipient's side of step 4.3."""
        request = resend.request
        entry = self._find_entry_for_command(request.command)
        if entry is not None and entry.spec_order is not None:
            # Re-broadcast the original SPECORDER so the forwarder (and
            # anyone else who missed it) can make progress.
            self.ctx.broadcast(self.config.others(self.node_id),
                               entry.spec_order)
            self._send_spec_reply(entry, entry.spec_order)
            return
        fresh = Request(command=request.command, original_replica=None)
        # Re-sign locally?  No -- we cannot sign for the client.  Treat the
        # embedded (client-signed) request as a direct submission.
        self._lead(fresh)

    # ------------------------------------------------------------------
    # Step 3: SPECORDER -> speculative execution -> SPECREPLY
    # ------------------------------------------------------------------
    def _on_spec_order(self, sender: str, order: SpecOrder,
                       envelope: SignedPayload) -> None:
        if envelope.signer != order.leader:
            self.stats["invalid_messages"] += 1
            return
        space = self.spaces.get(order.instance.owner)
        if space is None:
            self.stats["invalid_messages"] += 1
            return
        if space.frozen:
            return  # we committed to an owner change for this space
        if order.leader != self.config.owner_for_number(
                space.owner_number) or \
                order.owner_number != space.owner_number:
            # Not the current owner of that space.
            self.stats["invalid_messages"] += 1
            return

        slot = order.instance.slot
        if slot < space.expected_slot:
            return  # duplicate
        self._persist_entry(sender, envelope)
        if slot > space.expected_slot:
            # Out-of-order arrival; buffer until the gap fills.  The paper
            # validates I = maxI + 1; buffering (rather than rejecting)
            # tolerates network jitter without spurious owner changes.
            self._pending_spec_orders[(space.owner, slot)] = \
                (order, envelope)
            return

        self._accept_spec_order(order, envelope)
        self._drain_pending(space)

    def _on_batch_spec_order(self, sender: str, batch: BatchSpecOrder,
                             envelope: SignedPayload) -> None:
        """An owner's batched proposal: verify once, accept each inner
        SPECORDER exactly as a singleton."""
        if envelope.signer != batch.leader:
            self.stats["invalid_messages"] += 1
            return
        space = self.spaces.get(batch.leader)
        if space is None:
            self.stats["invalid_messages"] += 1
            return
        if space.frozen:
            return  # we committed to an owner change for this space
        if batch.leader != self.config.owner_for_number(
                space.owner_number) or \
                batch.owner_number != space.owner_number:
            self.stats["invalid_messages"] += 1
            return
        orders = sorted(batch.orders, key=lambda o: o.instance.slot)
        for order in orders:
            if order.leader != batch.leader or \
                    order.instance.owner != batch.leader or \
                    order.owner_number != batch.owner_number:
                self.stats["invalid_messages"] += 1
                return
        if any(o.instance.slot >= space.expected_slot for o in orders):
            self._persist_entry(sender, envelope)
        for order in orders:
            slot = order.instance.slot
            if slot < space.expected_slot:
                continue  # duplicate
            if slot > space.expected_slot:
                self._pending_spec_orders[(space.owner, slot)] = \
                    (order, envelope)
                continue
            self._accept_spec_order(order, envelope)
            self._drain_pending(space)

    def _drain_pending(self, space) -> None:
        """Accept any buffered successors now contiguous with the log."""
        while True:
            nxt = self._pending_spec_orders.pop(
                (space.owner, space.expected_slot), None)
            if nxt is None:
                break
            pending_order, pending_env = nxt
            self._accept_spec_order(pending_order, pending_env)

    def _accept_spec_order(self, order: SpecOrder,
                           envelope: SignedPayload) -> None:
        space = self.spaces[order.instance.owner]
        command = order.command
        tracer = self.tracer
        span = prev = None
        if tracer.enabled:
            # The vote span covers dep-merge, speculative execution and
            # our SPECREPLY, parented at the leader's wire context.
            span = tracer.start_span(SPAN_REPLICA_VOTE, self.node_id,
                                     parent=tracer.current())
            if span is not None:
                prev = tracer.set_current(span.context())
        try:
            # Merge the leader's dependencies with what we know locally
            # (paper: "updates the dependencies and sequence number
            # according to its log").
            local_deps = self._collect_deps(command, exclude=order.instance)
            merged = tuple(sorted(set(order.deps) | set(local_deps)))
            seq = max(order.seq, 1 + self._max_dep_seq(merged))
            entry = LogEntry(instance=order.instance,
                             owner_number=order.owner_number,
                             command=command, deps=merged, seq=seq,
                             spec_order=envelope)
            self._install_entry(entry)
            space.expected_slot = order.instance.slot + 1
            self._client_ts[command.client_id] = max(
                self._client_ts.get(command.client_id, -1),
                command.timestamp)
            self._speculative_execute(entry)
            self.stats["spec_ordered"] += 1
            self._send_spec_reply(entry, envelope,
                                  request_digest=order.request_digest)
            # A SPECORDER from the suspected replica resolves suspicion
            # for the command (paper step 4.3: the timer waits for the
            # original recipient's SPECORDER, not anyone else's).
            self._resolve_suspicion(command, order.leader)
        finally:
            if span is not None:
                tracer.set_current(prev)
                tracer.end_span(span)

    def _resolve_suspicion(self, command: Command, leader: str) -> None:
        key = digest(command)
        entry = self._suspicions.get(key)
        if entry is not None and entry[0] == leader:
            entry[1].cancel()
            del self._suspicions[key]

    def _send_spec_reply(self, entry: LogEntry,
                         signed_order: SignedPayload,
                         request_digest: Optional[str] = None) -> None:
        if request_digest is None:
            request_digest = self._request_digest_for(entry, signed_order)
        reply = SpecReply(
            replica=self.node_id,
            owner_number=entry.owner_number,
            instance=entry.instance,
            deps=entry.deps,
            seq=entry.seq,
            request_digest=request_digest,
            client_id=entry.command.client_id,
            timestamp=entry.command.timestamp,
            result=entry.spec_result,
            spec_order=signed_order,
        )
        envelope = SignedPayload.create(reply, self.keypair)
        self._client_reply_cache[entry.command.client_id] = \
            (entry.command.timestamp, envelope)
        self.ctx.send(entry.command.client_id, envelope)

    def _request_digest_for(self, entry: LogEntry,
                            signed_order: SignedPayload) -> str:
        """The request digest the entry's proposal committed to,
        whether the envelope is a singleton SPECORDER or a batch."""
        payload = signed_order.payload
        if isinstance(payload, BatchSpecOrder):
            inner = payload.order_for(entry.instance)
            return inner.request_digest if inner is not None else ""
        return payload.request_digest

    def _speculative_execute(self, entry: LogEntry) -> None:
        """Paper Section IV-B: speculative execution runs on the latest
        state (speculative overlay over final)."""
        entry.spec_result = self.statemachine.apply_speculative(
            entry.command)
        entry.spec_executed = True

    # ------------------------------------------------------------------
    # Step 5: commits
    # ------------------------------------------------------------------
    def _on_commit_fast(self, sender: str, commit: CommitFast) -> None:
        entry = self._log_index.get(commit.instance)
        if entry is None or entry.status.at_least(EntryStatus.COMMITTED):
            return
        if not self._validate_fast_certificate(commit):
            self.stats["invalid_messages"] += 1
            return
        self._persist_entry(sender, commit)
        # The certificate's replies all match; adopt their metadata (they
        # may differ from ours if we merged deps the quorum did not see --
        # the certificate is authoritative).
        sample = commit.certificate[0].payload
        entry.deps = sample.deps
        entry.seq = sample.seq
        entry.status = EntryStatus.COMMITTED
        entry.commit_proof = commit.certificate
        entry.reply_to = None  # fast path: no COMMITREPLY
        self.stats["committed_fast"] += 1
        self.instruments.commit("fast")
        if self.tracer.enabled:
            self._trace_commit(entry, "fast")
        self._advance_execution([entry])

    def _on_commit(self, sender: str, commit: Commit,
                   envelope: SignedPayload) -> None:
        if envelope.signer != commit.client_id:
            self.stats["invalid_messages"] += 1
            return
        if not self._validate_slow_certificate(commit):
            self.stats["invalid_messages"] += 1
            return
        entry = self._log_index.get(commit.instance)
        if entry is None:
            space = self.spaces.get(commit.instance.owner)
            if space is None:
                return
            if commit.instance.slot < space.low_slot:
                # Below a stable checkpoint: the instance was executed
                # durably and garbage-collected.  Resurrecting the slot
                # would shift our execution count off every other
                # replica's watermarks; answer from retained state.
                reply = CommitReply(
                    replica=self.node_id, instance=commit.instance,
                    client_id=commit.client_id,
                    timestamp=commit.command.timestamp,
                    result=self.executor.result_of(commit.command.ident))
                self.ctx.send(commit.client_id,
                              SignedPayload.create(reply, self.keypair))
                return
            # We never saw the SPECORDER (e.g. we were partitioned); adopt
            # the commit wholesale.
            entry = LogEntry(instance=commit.instance,
                             owner_number=space.owner_number,
                             command=commit.command, deps=commit.deps,
                             seq=commit.seq)
            space.force_put(entry)
            self._index_entry(entry)
        if entry.status == EntryStatus.EXECUTED:
            # Already final -- resend the reply.
            self._send_commit_reply(entry, commit.client_id)
            return
        self._persist_entry(sender, envelope)
        entry.deps = commit.deps
        entry.seq = commit.seq
        entry.status = EntryStatus.COMMITTED
        entry.committed_slow = True
        entry.commit_proof = (envelope,)
        entry.reply_to = commit.client_id
        # Invalidate speculation: final execution will re-run on the final
        # state (paper step 5.2).
        self.statemachine.rollback_speculative()
        self.stats["committed_slow"] += 1
        self.instruments.commit("slow")
        if self.tracer.enabled:
            self._trace_commit(entry, "slow")
        self._advance_execution([entry])

    def _trace_commit(self, entry: LogEntry, path: str) -> None:
        """Record the path-tagged ``replica.commit`` point event and
        remember its context plus the commit-time clock, so final
        execution can hang the ``exec.depwait`` / ``exec.apply`` spans
        under it (see :meth:`_trace_exec_parent`)."""
        tracer = self.tracer
        event = tracer.event(SPAN_REPLICA_COMMIT, self.node_id,
                             tracer.current(), attrs={"path": path})
        if event is not None:
            self._trace_slots[entry.instance] = \
                (event.context(), tracer.now())

    def _trace_exec_parent(self, entry: LogEntry) -> Optional[Any]:
        """Executor callback (see :attr:`DependencyExecutor.trace_parent`):
        pop the commit-time context for ``entry``, record the
        commit-to-execution gap as an ``exec.depwait`` span, and return
        its context as the parent for the ``exec.apply`` span."""
        slot = self._trace_slots.pop(entry.instance, None)
        if slot is None:
            return None
        ctx, committed_ms = slot
        tracer = self.tracer
        span = tracer.span_at(SPAN_EXEC_DEPWAIT, self.node_id, ctx,
                              committed_ms, tracer.now())
        return span.context() if span is not None else ctx

    def _advance_execution(self, newly_committed=None) -> None:
        """Run the executor over the newly committed entries (plus its
        blocked frontier); ``None`` forces a full log scan."""
        executed = self.executor.try_execute(self._log_index,
                                             candidates=newly_committed)
        for entry in executed:
            self.stats["executed"] += 1
            self.instruments.execute()
            if entry.reply_to is not None:
                self._send_commit_reply(entry, entry.reply_to)

    # ------------------------------------------------------------------
    # Checkpointing, log compaction, state transfer
    # ------------------------------------------------------------------
    def _on_entry_executed(self, entry: LogEntry) -> None:
        """Executor hook: runs after every single final execution, so
        captures land exactly on interval boundaries."""
        self._maybe_checkpoint()

    def _maybe_checkpoint(self) -> None:
        """Capture and broadcast a checkpoint at interval boundaries."""
        count = self.executor.executed_count
        if not self.checkpoints.due(count):
            return
        checkpoint = Checkpoint.capture(count, self._capture_snapshot())
        msg = EzCheckpoint(replica=self.node_id, watermark=count,
                           state_digest=checkpoint.state_digest)
        signed = SignedPayload.create(msg, self.keypair)
        self._checkpoint_proofs.setdefault(
            (count, checkpoint.state_digest), {})[self.node_id] = signed
        stable_before = self.checkpoints.stable
        self.checkpoints.record_local(checkpoint)
        self.stats["checkpoints"] += 1
        self.ctx.broadcast(self.config.others(self.node_id), signed)
        if self.checkpoints.stable is not stable_before:
            # Peer attestations had already reached quorum before our
            # own capture; stability fired inside record_local.
            self._on_checkpoint_stable(self.checkpoints.stable)

    def _capture_snapshot(self) -> dict:
        """Everything a lagging replica needs to resume past us.

        Every field is a deterministic function of the first
        ``executed_count`` executions, so digests agree across replicas
        that executed the same prefix."""
        frontier = {owner: self._executed_frontier(space)
                    for owner, space in self.spaces.items()}
        floors, sparse = self.executor.client_progress()
        executed_above = sorted(
            [iid.owner, iid.slot] for iid in self.executor.executed
            if iid.slot >= frontier[iid.owner])
        return {
            "state": self.statemachine.snapshot(),
            "frontier": frontier,
            "client_floors": floors,
            "client_sparse": sparse,
            "client_results": self.executor.latest_results(),
            "executed_above": executed_above,
        }

    def _executed_frontier(self, space: InstanceSpace) -> int:
        """First slot of ``space`` that is not contiguously executed --
        the GC cut: everything below is final at this replica.

        Resumes from a cached cursor (execution never un-happens, so
        the frontier is monotone): amortized O(new executions) per
        capture instead of O(whole executed prefix)."""
        slot = max(space.low_slot,
                   self._frontier_cursor.get(space.owner, 0))
        while True:
            entry = space.get(slot)
            if entry is None or entry.status != EntryStatus.EXECUTED:
                break
            slot += 1
        self._frontier_cursor[space.owner] = slot
        return slot

    def _on_ez_checkpoint(self, sender: str, msg: EzCheckpoint,
                          envelope: SignedPayload) -> None:
        if envelope.signer != msg.replica or \
                msg.replica not in self.config.replica_ids:
            self.stats["invalid_messages"] += 1
            return
        if msg.replica == self.node_id:
            # Our own attestation replayed back at us: we already voted
            # as "__self__" at capture, and counting the replay as a
            # second distinct voter would let f+1 real replicas fake a
            # 2f+1 quorum.
            return
        stable = self.checkpoints.stable
        if stable is not None and msg.watermark <= stable.watermark:
            return  # below our stable watermark; nothing to learn
        self._persist_attest(sender, envelope)
        became_stable = self.checkpoints.attest(
            msg.watermark, msg.state_digest, msg.replica)
        horizon = self.executor.executed_count + \
            8 * max(1, self.checkpoints.interval)
        if msg.watermark <= horizon and \
                self.checkpoints.vote_of(msg.replica, msg.watermark) == \
                msg.state_digest:
            # Vote accepted (not an equivocating re-vote) and near our
            # own execution horizon: retain the signed attestation for
            # the state-transfer proof.  Far-future watermarks are
            # never ones we will stabilize (if we lag that far we
            # install a transferred proof instead), so dropping them
            # bounds what a byzantine flood can pin in memory.
            self._checkpoint_proofs.setdefault(
                (msg.watermark, msg.state_digest), {}).setdefault(
                msg.replica, envelope)
        if became_stable:
            self._on_checkpoint_stable(self.checkpoints.stable)
        elif self.checkpoints.has_quorum(msg.watermark, msg.state_digest):
            # The cluster proved a checkpoint we never captured: we are
            # behind.  If the gap is at least one interval, the prefix
            # below it may already be truncated everywhere -- catch up
            # via state transfer instead of waiting for messages that
            # will never be resent.
            self._maybe_request_state_transfer(msg.watermark, msg.replica)

    def _on_checkpoint_stable(self, checkpoint: Checkpoint) -> None:
        self.stats["checkpoints_stable"] += 1
        self.instruments.checkpoint_stable(checkpoint.watermark)
        self.checkpoint_log.append(
            (checkpoint.watermark, checkpoint.state_digest))
        key = (checkpoint.watermark, checkpoint.state_digest)
        proof = self._checkpoint_proofs.get(key, {})
        if len(proof) >= self.config.slow_quorum_size:
            self._stable_proof = tuple(proof.values())
            self._stable_proof_watermark = checkpoint.watermark
        self._checkpoint_proofs = {
            k: v for k, v in self._checkpoint_proofs.items()
            if k[0] > checkpoint.watermark
        }
        self._gc_below(checkpoint)
        if self.storage is not None and not self._recovering:
            self._persist_stable(checkpoint)

    def _gc_below(self, checkpoint: Checkpoint) -> None:
        """Truncate the log below the stable checkpoint's frontier.

        Only contiguously *executed* prefixes are dropped: the frontier
        is re-clamped locally so a committed-but-unexecuted instance can
        never be garbage-collected."""
        frontier = checkpoint.snapshot.get("frontier", {})
        removed = 0
        effective: Dict[str, int] = {}
        for owner, space in self.spaces.items():
            cut = min(int(frontier.get(owner, 0)),
                      self._executed_frontier(space))
            effective[owner] = cut
            if cut <= space.low_slot:
                continue
            for slot in range(space.low_slot, cut):
                entry = space.get(slot)
                if entry is not None:
                    self._log_index.pop(entry.instance, None)
            removed += space.truncate(cut)
        if removed:
            self._pending_spec_orders = {
                k: v for k, v in self._pending_spec_orders.items()
                if k[1] >= effective.get(k[0], 0)
            }
            self._rebuild_key_index()
        self.executor.truncate(checkpoint.watermark, effective)
        self.stats["log_entries_gcd"] += removed

    def _rebuild_key_index(self) -> None:
        self._key_index = {}
        for iid, entry in self._log_index.items():
            if entry.command.key:
                self._key_index.setdefault(entry.command.key,
                                           []).append(iid)

    def checkpoint_base_slot(self, owner: str) -> int:
        """First slot of ``owner``'s space above the last stable
        checkpoint -- the base of owner-change recovery payloads."""
        space = self.spaces[owner]
        base = space.low_slot
        stable = self.checkpoints.stable
        if stable is not None:
            frontier = stable.snapshot.get("frontier", {})
            base = max(base, int(frontier.get(owner, 0)))
        return base

    def _maybe_request_state_transfer(self, watermark: int,
                                      peer: str) -> None:
        interval = max(1, self.checkpoints.interval)
        if watermark < self.executor.executed_count + interval:
            return  # close enough to catch up from live traffic
        if watermark > self._transfer_requested:
            self._transfer_requested = watermark
            self._transfer_peers_asked = set()
        # One ask per peer, up to f+1 distinct attesters per watermark:
        # a single unlucky choice (peer without a provable stable
        # checkpoint) must not strand us for another whole interval.
        if peer in self._transfer_peers_asked or \
                len(self._transfer_peers_asked) >= \
                self.config.weak_quorum_size:
            return
        self._transfer_peers_asked.add(peer)
        request = StateTransferRequest(
            replica=self.node_id,
            have_watermark=self.executor.executed_count)
        self.ctx.send(peer, request)

    def _on_state_transfer_request(self, sender: str,
                                   request: StateTransferRequest) -> None:
        if request.replica != sender or \
                request.replica not in self.config.replica_ids:
            # Snapshot replies are expensive; an unsigned request with a
            # spoofed reply target would be a cheap reflection vector.
            self.stats["invalid_messages"] += 1
            return
        stable = self.checkpoints.stable
        if stable is None or stable.watermark <= request.have_watermark:
            return
        if len(self._stable_proof) < self.config.slow_quorum_size or \
                self._stable_proof_watermark != stable.watermark:
            return  # cannot prove this checkpoint; let a peer serve it
        reply = StateTransferReply(
            replica=self.node_id,
            watermark=stable.watermark,
            snapshot=stable.snapshot,
            proof=self._stable_proof,
            entries=self._summarize_log_suffix(stable),
        )
        self.ctx.send(request.replica, reply)
        self.stats["state_transfers_served"] += 1

    def _summarize_log_suffix(self, stable: Checkpoint
                              ) -> Tuple[LogEntrySummary, ...]:
        """The retained log above the stable checkpoint's frontier, with
        the strongest proof held per entry -- what a lagging replica
        needs on top of the snapshot to rejoin live traffic."""
        frontier = stable.snapshot.get("frontier", {})
        return tuple(
            summarize_entry(entry)
            for owner, space in self.spaces.items()
            for entry in space.entries()
            if entry.instance.slot >= int(frontier.get(owner, 0)))

    def _on_state_transfer_reply(self, sender: str,
                                 reply: StateTransferReply) -> None:
        if reply.watermark <= self.executor.executed_count:
            return  # caught up by other means in the meantime
        behind = reply.watermark >= self.executor.executed_count + \
            max(1, self.checkpoints.interval)
        solicited = bool(self._transfer_peers_asked) and \
            reply.watermark >= self._transfer_requested
        if not (behind or solicited):
            # Unsolicited and we are not meaningfully behind: installing
            # would needlessly discard speculation, pending orders, and
            # reply-cache results that live execution will cover anyway.
            return
        if not self._verify_checkpoint_proof(reply):
            self.stats["invalid_messages"] += 1
            return
        self._install_snapshot(reply)

    def _verify_checkpoint_proof(self, reply: StateTransferReply) -> bool:
        """2f+1 distinct, valid EZCHECKPOINT signatures binding the
        reply's watermark to the digest of the shipped snapshot."""
        state_digest = digest(reply.snapshot)
        signers = set()
        for envelope in reply.proof:
            if not isinstance(envelope, SignedPayload):
                return False
            payload = envelope.payload
            if not isinstance(payload, EzCheckpoint):
                return False
            if payload.watermark != reply.watermark or \
                    payload.state_digest != state_digest:
                return False
            if not envelope.verify(self.registry):
                return False
            if envelope.signer != payload.replica or \
                    payload.replica not in self.config.replica_ids:
                return False
            signers.add(payload.replica)
        return len(signers) >= self.config.slow_quorum_size

    def _install_snapshot(self, reply: StateTransferReply) -> None:
        """Adopt a proven stable checkpoint wholesale (state transfer).

        Restores the application state, truncates every space to the
        checkpoint's frontier, fast-forwards the executor, installs the
        transferred log suffix entry-by-entry (each individually
        verified), and resumes normal execution."""
        snapshot = reply.snapshot
        frontier = {owner: int(slot)
                    for owner, slot in
                    snapshot.get("frontier", {}).items()}
        executed_above = {
            InstanceID(owner, slot)
            for owner, slot in snapshot.get("executed_above", ())
        }
        self.statemachine.rollback_speculative()
        self.statemachine.restore(snapshot.get("state", {}))
        for owner, space in self.spaces.items():
            cut = frontier.get(owner, 0)
            for slot in range(space.low_slot, cut):
                entry = space.get(slot)
                if entry is not None:
                    self._log_index.pop(entry.instance, None)
            space.truncate(cut)
        self._pending_spec_orders = {
            k: v for k, v in self._pending_spec_orders.items()
            if k[1] >= frontier.get(k[0], 0)
        }
        # Forget cached frontier cursors: entries above the cut that we
        # had executed locally are being demoted below (their effects
        # died with the restore), so the contiguous-executed scan must
        # resume from the installed frontier, not our old progress.
        self._frontier_cursor = dict(frontier)
        self.executor.install(
            reply.watermark, frontier,
            {c: int(t) for c, t in
             snapshot.get("client_floors", {}).items()},
            snapshot.get("client_sparse", {}),
            executed_above,
            client_results=snapshot.get("client_results", {}))
        # Entries we executed locally but that are NOT inside the
        # snapshot's first ``watermark`` executions lost their effects
        # with the restore; demote them so they re-apply.
        for iid, entry in self._log_index.items():
            if entry.status == EntryStatus.EXECUTED and \
                    iid not in executed_above:
                entry.status = EntryStatus.COMMITTED
        for summary in reply.entries:
            self._install_transferred_entry(summary, frontier)
        for iid in executed_above:
            entry = self._log_index.get(iid)
            if entry is not None:
                # Its effect is inside the snapshot state already; mark
                # executed so it is never re-applied.
                entry.status = EntryStatus.EXECUTED
        self._rebuild_key_index()
        for space in self.spaces.values():
            while space.expected_slot in space:
                space.expected_slot += 1
            if space.owner == self.node_id:
                space.next_slot = max(space.next_slot,
                                      space.max_occupied_slot + 1)
        state_digest = digest(snapshot)
        self.checkpoints.install_stable(Checkpoint(
            watermark=reply.watermark, state_digest=state_digest,
            snapshot=snapshot))
        self.checkpoint_log.append((reply.watermark, state_digest))
        self._stable_proof = reply.proof
        self._stable_proof_watermark = reply.watermark
        self._transfer_requested = max(self._transfer_requested,
                                       reply.watermark)
        self._transfer_peers_asked = set()
        self.stats["state_transfers_installed"] += 1
        if self.storage is not None and not self._recovering:
            self._persist_stable(self.checkpoints.stable)
        for space in self.spaces.values():
            if not space.frozen:
                self._drain_pending(space)
        self._advance_execution()

    def _install_transferred_entry(self, summary: LogEntrySummary,
                                   frontier: Dict[str, int]) -> None:
        """Install one suffix entry, trusting only verifiable evidence.

        The suffix is not covered by the snapshot digest, so every
        entry's command/deps/seq are adopted from its *verified* proof
        (a commit certificate or the owner's signed SPECORDER), never
        from the unverified summary; proofless summaries are skipped --
        safety over liveness, the live protocol re-delivers anything
        still open."""
        instance = summary.instance
        if summary.command is None or \
                instance.slot < frontier.get(instance.owner, 0):
            return
        space = self.spaces.get(instance.owner)
        if space is None:
            return
        existing = self._log_index.get(instance)
        committed = summary.proof_kind == "commit"
        if existing is not None and (
                existing.status.at_least(EntryStatus.COMMITTED)
                or not committed):
            return  # never downgrade what we already hold
        if committed:
            entry = self._entry_from_commit_proof(summary)
        else:
            entry = self._entry_from_spec_order_proof(summary)
        if entry is None:
            return
        space.force_put(entry)
        self._log_index[instance] = entry

    def _entry_from_commit_proof(self, summary: LogEntrySummary
                                 ) -> Optional[LogEntry]:
        """A committed suffix entry backed by either a 2f+1 SPECREPLY
        certificate (fast path evidence) or the client's signed COMMIT
        (slow path evidence); metadata comes from the certificate."""
        proof = summary.proof
        if not proof or not all(isinstance(p, SignedPayload)
                                for p in proof):
            return None
        payloads = [p.payload for p in proof]
        if all(isinstance(p, SpecReply) for p in payloads):
            if len(proof) < self.config.slow_quorum_size:
                return None
            if not self._validate_reply_certificate(
                    proof, summary.instance, require_match=True):
                return None
            sample: SpecReply = payloads[0]
            command = summary.command
            if command.ident != (sample.client_id, sample.timestamp):
                return None
            return LogEntry(
                instance=summary.instance,
                owner_number=sample.owner_number,
                command=command, deps=sample.deps, seq=sample.seq,
                status=EntryStatus.COMMITTED,
                commit_proof=tuple(proof))
        if len(proof) == 1 and isinstance(payloads[0], Commit):
            envelope, commit = proof[0], payloads[0]
            if not envelope.verify(self.registry) or \
                    envelope.signer != commit.client_id:
                return None
            if commit.instance != summary.instance or \
                    not self._validate_slow_certificate(commit):
                return None
            return LogEntry(
                instance=summary.instance,
                owner_number=summary.owner_number,
                command=commit.command, deps=commit.deps,
                seq=commit.seq, status=EntryStatus.COMMITTED,
                commit_proof=tuple(proof))
        return None

    def _entry_from_spec_order_proof(self, summary: LogEntrySummary
                                     ) -> Optional[LogEntry]:
        """An uncommitted suffix entry: only the owner's own signed
        SPECORDER (or a batch covering the instance) is evidence."""
        if len(summary.proof) != 1:
            return None
        envelope = summary.proof[0]
        if not isinstance(envelope, SignedPayload) or \
                not envelope.verify(self.registry):
            return None
        payload = envelope.payload
        if isinstance(payload, BatchSpecOrder):
            inner = payload.order_for(summary.instance)
        elif isinstance(payload, SpecOrder) and \
                payload.instance == summary.instance:
            inner = payload
        else:
            return None
        if inner is None or envelope.signer != inner.leader:
            return None
        if inner.leader != self.config.owner_for_number(
                inner.owner_number):
            return None
        return LogEntry(
            instance=summary.instance,
            owner_number=inner.owner_number,
            command=inner.command, deps=inner.deps, seq=inner.seq,
            status=EntryStatus.SPEC_ORDERED, spec_order=envelope)

    # ------------------------------------------------------------------
    # Durability: WAL/snapshot persistence and restart-from-disk
    # ------------------------------------------------------------------
    def attach_storage(self, storage: Any) -> None:
        """Wire the durability seam (a ``repro.storage.ReplicaStorage``).

        Attach before traffic flows; pair with
        :meth:`recover_from_storage` to restart from its contents.
        """
        self.storage = storage

    def _persist_entry(self, sender: str, message: Any) -> None:
        if self.storage is not None and not self._recovering:
            self.storage.append_entry(sender, message)

    def _persist_attest(self, sender: str, message: Any) -> None:
        if self.storage is not None and not self._recovering:
            self.storage.append_attest(sender, message)

    def _persist_stable(self, checkpoint: Checkpoint) -> None:
        """Make a stable checkpoint durable: atomic snapshot file, then
        a fresh WAL segment re-logging the retained suffix (so every
        segment head is self-contained from its watermark on), then
        prune history beyond the retention window."""
        self.storage.save_snapshot(checkpoint.watermark,
                                   checkpoint.state_digest,
                                   checkpoint.snapshot)
        self.storage.rotate(checkpoint.watermark)
        self._relog_retained()
        self.storage.prune()

    def _relog_retained(self) -> None:
        """Re-append the evidence for everything above the stable
        frontier -- retained log entries, their strongest commit proof,
        and still-buffered out-of-order orders -- into the fresh
        segment, so recovery never needs pruned history."""
        seen: set = set()
        pinned: list = []  # id() is only unique while the object lives

        def relog(sender: str, message: Any) -> None:
            if message is None or id(message) in seen:
                return  # a batch envelope covers several entries
            seen.add(id(message))
            pinned.append(message)
            self.storage.append_entry(sender, message)

        for space in self.spaces.values():
            for entry in space.entries():
                if entry.spec_order is not None:
                    relog(entry.spec_order.signer, entry.spec_order)
                if not entry.status.at_least(EntryStatus.COMMITTED) or \
                        not entry.commit_proof:
                    continue
                if entry.committed_slow:
                    proof = entry.commit_proof[0]
                    relog(proof.signer, proof)
                else:
                    relog(self.node_id, CommitFast(
                        client_id=entry.command.client_id,
                        instance=entry.instance,
                        certificate=entry.commit_proof))
        for _, envelope in self._pending_spec_orders.values():
            relog(envelope.signer, envelope)

    def recover_from_storage(self) -> Any:
        """Rebuild this replica from its attached store.

        Loads the newest digest-valid snapshot (restore state machine,
        frontiers, executor bookkeeping, checkpoint watermark), then
        replays the retained WAL segments through the ordinary message
        handlers with sends muted and persistence disabled.  Anything
        past what disk retains is rejoined through the existing
        state-transfer path once live traffic resumes.  Returns a
        :class:`repro.storage.RecoverySummary`.
        """
        from repro.storage.store import RecoverySummary

        if self.storage is None:
            raise ProtocolError("recover_from_storage: no storage "
                                "attached")
        summary = RecoverySummary()
        payload = self.storage.load_snapshot(summary)
        # Materialize before mutating anything: a stability event during
        # replay rotates and prunes segments, which must not race the
        # read side.
        records = list(self.storage.replay_records(summary))
        executed_above: set = set()
        if payload is not None:
            executed_above = self._restore_checkpoint(payload)
        live_ctx = self.ctx
        self.ctx = _RecoveryContext(live_ctx)
        self._recovering = True
        try:
            for record in records:
                if not isinstance(record, dict):
                    continue
                wire = record.get("wire")
                if wire is None:
                    continue
                try:
                    message = decode(wire)
                except (ProtocolError, KeyError, TypeError, ValueError):
                    continue  # unknown/legacy record: skip, stay live
                self.on_message(str(record.get("sender", "")), message)
        finally:
            self._recovering = False
            self.ctx = live_ctx
        # Mirrors _install_snapshot: replayed entries whose effects are
        # already inside the restored state must never re-apply.
        for iid in executed_above:
            entry = self._log_index.get(iid)
            if entry is not None:
                entry.status = EntryStatus.EXECUTED
        own = self.spaces[self.node_id]
        own.next_slot = max(own.next_slot, own.max_occupied_slot + 1)
        for space in self.spaces.values():
            if not space.frozen:
                self._drain_pending(space)
        self._advance_execution()
        stable = self.checkpoints.stable
        if stable is not None and \
                stable.watermark != (summary.snapshot_watermark or 0):
            # Replay advanced stability past the on-disk snapshot; sync
            # the store so the next restart starts from the newer point.
            self._persist_stable(stable)
        return summary

    def _restore_checkpoint(self, payload: Dict[str, Any]) -> set:
        """Adopt a recovered snapshot (the local-disk analogue of
        :meth:`_install_snapshot`, minus transferred suffix entries --
        those come from WAL replay).  Returns the ``executed_above``
        instance set for the post-replay fixup."""
        snapshot = payload["snapshot"]
        watermark = int(payload["watermark"])
        frontier = {owner: int(slot)
                    for owner, slot in
                    snapshot.get("frontier", {}).items()}
        executed_above = {
            InstanceID(owner, slot)
            for owner, slot in snapshot.get("executed_above", ())
        }
        self.statemachine.restore(snapshot.get("state", {}))
        for owner, space in self.spaces.items():
            space.truncate(frontier.get(owner, 0))
        self._frontier_cursor = dict(frontier)
        floors = {c: int(t) for c, t in
                  snapshot.get("client_floors", {}).items()}
        self.executor.install(
            watermark, frontier, floors,
            snapshot.get("client_sparse", {}),
            executed_above,
            client_results=snapshot.get("client_results", {}))
        for client, floor in floors.items():
            self._client_ts[client] = max(
                self._client_ts.get(client, -1), floor)
        checkpoint = Checkpoint(watermark=watermark,
                                state_digest=payload["state_digest"],
                                snapshot=snapshot)
        self.checkpoints = CheckpointStore.restore_from(
            checkpoint, quorum=self.config.slow_quorum_size,
            interval=self.config.checkpoint_interval)
        self.checkpoint_log.append((watermark, checkpoint.state_digest))
        return executed_above

    def _send_commit_reply(self, entry: LogEntry, client_id: str) -> None:
        reply = CommitReply(
            replica=self.node_id,
            instance=entry.instance,
            client_id=entry.command.client_id,
            timestamp=entry.command.timestamp,
            result=entry.final_result,
        )
        self.ctx.send(client_id, SignedPayload.create(reply, self.keypair))

    # ------------------------------------------------------------------
    # Certificates
    # ------------------------------------------------------------------
    def _validate_fast_certificate(self, commit: CommitFast) -> bool:
        cert = commit.certificate
        if len(cert) < self.config.fast_quorum_size:
            return False
        return self._validate_reply_certificate(cert, commit.instance,
                                                require_match=True)

    def _validate_slow_certificate(self, commit: Commit) -> bool:
        cert = commit.certificate
        if len(cert) < self.config.slow_quorum_size:
            return False
        return self._validate_reply_certificate(cert, commit.instance,
                                                require_match=False)

    def _validate_reply_certificate(self, cert, instance: InstanceID,
                                    require_match: bool) -> bool:
        signers = set()
        first: Optional[SpecReply] = None
        for signed in cert:
            reply = signed.payload
            if not isinstance(reply, SpecReply):
                return False
            if not signed.verify(self.registry):
                return False
            if signed.signer != reply.replica:
                return False
            if reply.instance != instance:
                return False
            if reply.replica not in self.config.replica_ids:
                return False
            signers.add(reply.replica)
            if first is None:
                first = reply
            elif require_match and not first.matches_fast(reply):
                return False
        return len(signers) == len(cert)

    # ------------------------------------------------------------------
    # Misbehavior and owner changes (delegated)
    # ------------------------------------------------------------------
    def _on_pom(self, sender: str, pom: ProofOfMisbehavior) -> None:
        self.owner_changes.on_pom(pom)

    def _on_start_owner_change(self, sender: str, msg: StartOwnerChange,
                               envelope: SignedPayload) -> None:
        if envelope.signer != msg.sender:
            self.stats["invalid_messages"] += 1
            return
        self.owner_changes.on_start_owner_change(msg)

    def _on_owner_change(self, sender: str, msg: OwnerChange,
                         envelope: SignedPayload) -> None:
        if envelope.signer != msg.sender:
            self.stats["invalid_messages"] += 1
            return
        self.owner_changes.on_owner_change(msg, envelope)

    def _on_new_owner(self, sender: str, msg: NewOwner,
                      envelope: SignedPayload) -> None:
        if envelope.signer != msg.new_owner:
            self.stats["invalid_messages"] += 1
            return
        self.owner_changes.on_new_owner(msg)

    # ------------------------------------------------------------------
    # Dependency collection
    # ------------------------------------------------------------------
    def _collect_deps(self, command: Command,
                      exclude: InstanceID) -> Tuple[InstanceID, ...]:
        """Every instance in the log whose command interferes with
        ``command`` (paper's dependency set D)."""
        deps = set()
        for iid in self._candidate_instances(command):
            if iid == exclude:
                continue
            entry = self._log_index[iid]
            if self.interference.interferes(entry.command, command):
                deps.add(iid)
        return tuple(sorted(deps))

    def _candidate_instances(self, command: Command):
        """Instances that could possibly interfere with ``command``.

        Key-based interference relations only need the same-key history;
        other relations fall back to the full log.
        """
        if getattr(self.interference, "key_based", True) and command.key:
            return list(self._key_index.get(command.key, ()))
        return list(self._log_index)

    def _max_dep_seq(self, deps: Tuple[InstanceID, ...]) -> int:
        best = 0
        for dep in deps:
            entry = self._log_index.get(dep)
            if entry is not None and entry.seq > best:
                best = entry.seq
        return best

    # ------------------------------------------------------------------
    # Log plumbing
    # ------------------------------------------------------------------
    def _install_entry(self, entry: LogEntry) -> None:
        self.spaces[entry.instance.owner].put(entry)
        self._index_entry(entry)

    def _index_entry(self, entry: LogEntry) -> None:
        self._log_index[entry.instance] = entry
        if entry.command.key:
            self._key_index.setdefault(entry.command.key, []).append(
                entry.instance)

    def _find_entry_for_command(self, command: Command
                                ) -> Optional[LogEntry]:
        # The candidate set is authoritative: key-based relations keep a
        # complete per-key index, and every other case already scans the
        # full log -- so no O(|log|) fallback is needed on the hot path.
        #
        # Retried commands can end up proposed in *several* competing
        # instances (each retry rotates the command-leader); picking the
        # smallest (owner, slot) -- not iteration order, which differs
        # per replica with message loss -- makes every replica's
        # re-reply converge on the same instance so the client can
        # assemble a matching quorum.
        best: Optional[LogEntry] = None
        for iid in self._candidate_instances(command):
            entry = self._log_index[iid]
            if entry.command.ident == command.ident:
                if best is None or (iid.owner, iid.slot) < \
                        (best.instance.owner, best.instance.slot):
                    best = entry
        return best

    def _duplicate_dep_waiver(self, iid: InstanceID) -> bool:
        """True when the dep instance's command has already executed
        through another instance (see executor.dep_waiver)."""
        entry = self._log_index.get(iid)
        return entry is not None and not entry.command.is_noop and \
            self.executor.has_executed(entry.command.ident)

    def _reaffirm_entry(self, entry: LogEntry) -> None:
        """Converge a retried command on one instance: re-send our
        SPECREPLY for it, and -- if we led it -- re-broadcast the
        signed SPECORDER so replicas that lost the original install
        the same instance instead of a fresh competing one."""
        if entry.spec_order is None:
            return
        if entry.instance.owner == self.node_id and \
                entry.spec_order.signer == self.node_id:
            self.ctx.broadcast(self.config.others(self.node_id),
                               entry.spec_order)
        self._send_spec_reply(entry, entry.spec_order)

    def _space_digest(self, space: InstanceSpace) -> str:
        """Rolling digest of a space's proposal history (the paper's
        ``h``).

        Maintained as a hash chain advanced per appended proposal
        (:meth:`_advance_space_digest`), keeping the owner's hot path
        O(1) instead of re-serializing the whole space per SPECORDER.
        """
        return self._space_chain.get(space.owner, "")

    def _advance_space_digest(self, space: InstanceSpace,
                              entry: LogEntry) -> None:
        """Chain the freshly led entry into the space's rolling digest."""
        self._space_chain[space.owner] = digest([
            self._space_chain.get(space.owner, ""),
            entry.instance.to_wire(), entry.command.to_wire(), entry.seq,
        ])

    # ------------------------------------------------------------------
    # Handler tables
    # ------------------------------------------------------------------
    _SIGNED_HANDLERS = {
        Request.MSG_TYPE: _on_request,
        BatchRequest.MSG_TYPE: _on_batch_request,
        SpecOrder.MSG_TYPE: _on_spec_order,
        BatchSpecOrder.MSG_TYPE: _on_batch_spec_order,
        Commit.MSG_TYPE: _on_commit,
        StartOwnerChange.MSG_TYPE: _on_start_owner_change,
        OwnerChange.MSG_TYPE: _on_owner_change,
        NewOwner.MSG_TYPE: _on_new_owner,
        EzCheckpoint.MSG_TYPE: _on_ez_checkpoint,
    }
    _PLAIN_HANDLERS = {
        CommitFast.MSG_TYPE: _on_commit_fast,
        ResendRequest.MSG_TYPE: _on_resend_request,
        ProofOfMisbehavior.MSG_TYPE: _on_pom,
        StateTransferRequest.MSG_TYPE: _on_state_transfer_request,
        StateTransferReply.MSG_TYPE: _on_state_transfer_reply,
    }
