"""ezBFT core: the paper's primary contribution.

- :class:`repro.core.replica.EzBFTReplica` -- leaderless replica:
  command-leader proposal, dependency/sequence-number computation,
  speculative + final execution, owner-change participation.
- :class:`repro.core.client.EzBFTClient` -- the actively-involved client:
  fast-path certification, slow-path dependency combination, proof-of-
  misbehavior detection, retry/recovery triggering.
- :mod:`repro.core.instance` -- instance spaces and the command log.
- :mod:`repro.core.executor` -- the dependency-graph execution engine.
- :mod:`repro.core.owner_change` -- the owner-change state machine.
"""

from repro.core.instance import EntryStatus, InstanceSpace, LogEntry
from repro.core.replica import EzBFTReplica
from repro.core.client import EzBFTClient

__all__ = [
    "EntryStatus",
    "InstanceSpace",
    "LogEntry",
    "EzBFTReplica",
    "EzBFTClient",
]
