"""The amortizing request batcher shared by every batching point.

One engine, three call sites:

- the **ezBFT owner** accumulates client requests and flushes them as a
  single :class:`~repro.messages.batching.BatchSpecOrder`,
- the **PBFT primary** accumulates requests and flushes them as a single
  :class:`~repro.messages.batching.BatchPrePrepare`,
- the **batching open-loop driver**
  (:class:`repro.workload.drivers.BatchingOpenLoopDriver`) accumulates a
  client's own commands and flushes them as a single
  :class:`~repro.messages.batching.BatchRequest`.

Flush policy (the classic size-or-timeout rule):

- the batch flushes as soon as it holds ``batch_size`` items, and
- a timer flushes any partial batch ``batch_timeout_ms`` after its first
  item arrived, bounding the latency cost of waiting for a full batch.

``batch_size <= 1`` disables accumulation entirely: every item is
flushed immediately and singleton flushes are the caller's cue to take
the classic unbatched path, so a batching deployment with size 1 is
indistinguishable from a non-batching one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.errors import ConfigurationError

#: Receives the accumulated items; never called with an empty list.
FlushFn = Callable[[List[Any]], None]
#: ``set_timer(delay_ms, callback) -> Timer`` (a
#: :class:`repro.cluster.node.NodeContext.set_timer` works verbatim).
SetTimerFn = Callable[..., Any]


class RequestBatcher:
    """Size/timeout-driven accumulator feeding a flush callback.

    The batcher never reorders items and never drops them: every added
    item appears in exactly one flush, in arrival order.  Callers that
    need deduplication (e.g. a client retry landing while its original
    is still queued) perform it in their flush callback, where the full
    batch is visible.
    """

    def __init__(self, batch_size: int, batch_timeout_ms: float,
                 flush_fn: FlushFn,
                 set_timer_fn: Optional[SetTimerFn] = None) -> None:
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}")
        if batch_timeout_ms <= 0:
            raise ConfigurationError(
                f"batch_timeout_ms must be positive, "
                f"got {batch_timeout_ms}")
        self.batch_size = batch_size
        self.batch_timeout_ms = batch_timeout_ms
        self._flush_fn = flush_fn
        self._set_timer = set_timer_fn
        self._items: List[Any] = []
        self._timer: Optional[Any] = None
        # Metrics.
        self.items_added = 0
        self.batches_flushed = 0
        self.size_flushes = 0
        self.timeout_flushes = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """False when ``batch_size <= 1`` (pass-through mode)."""
        return self.batch_size > 1

    @property
    def pending(self) -> int:
        """Items accumulated but not yet flushed."""
        return len(self._items)

    def add(self, item: Any) -> None:
        """Accumulate ``item``; may flush synchronously (size reached or
        pass-through mode)."""
        self.items_added += 1
        if not self.enabled:
            self.batches_flushed += 1
            self.size_flushes += 1
            self._flush_fn([item])
            return
        self._items.append(item)
        if len(self._items) >= self.batch_size:
            self.size_flushes += 1
            self.flush()
        elif self._timer is None and self._set_timer is not None:
            self._timer = self._set_timer(self.batch_timeout_ms,
                                          self._on_timeout)

    def flush(self) -> None:
        """Flush whatever is pending (no-op when empty)."""
        self._cancel_timer()
        if not self._items:
            return
        items, self._items = self._items, []
        self.batches_flushed += 1
        self._flush_fn(items)

    # ------------------------------------------------------------------
    def _on_timeout(self) -> None:
        self._timer = None
        if self._items:
            self.timeout_flushes += 1
        self.flush()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


# ----------------------------------------------------------------------
# Shared BatchRequest ingress checks (ezBFT owner and PBFT primary both
# unpack client batches through these, so the exactly-once semantics
# cannot silently diverge between protocols).
# ----------------------------------------------------------------------
def batch_request_is_authentic(batch: Any, envelope: Any) -> bool:
    """Every command in the batch belongs to the envelope's signer."""
    client = batch.client_id
    return envelope.signer == client and \
        all(c.client_id == client for c in batch.commands)


def fresh_batch_commands(batch: Any, client_ts: dict, reply_cache: dict,
                         resend_fn: Callable[[Any], None]
                         ) -> Iterator[Any]:
    """Yield the batch's not-yet-seen commands in timestamp order.

    The per-protocol exactly-once ingress check, shared verbatim with
    the singleton request path: stale duplicates are dropped, an exact
    duplicate of the latest command re-sends the cached reply via
    ``resend_fn``, everything newer is yielded for ordering.
    """
    client = batch.client_id
    for command in sorted(batch.commands, key=lambda c: c.timestamp):
        t = command.timestamp
        cached_t = client_ts.get(client, -1)
        if t < cached_t:
            continue  # stale duplicate
        if t == cached_t:
            cached = reply_cache.get(client)
            if cached is not None and cached[0] == t:
                resend_fn(cached[1])
            continue
        yield command
