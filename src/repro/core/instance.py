"""Instance spaces and the per-replica command log.

Every replica owns an *instance space* -- a sequence of numbered slots it
assigns to the commands it leads.  Every replica mirrors every space: the
union of all spaces is the replica's command log.  Consensus establishes
(a) the command in each slot, and (b) the cross-space dependency/sequence
metadata that determines execution order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Set, Tuple

from repro.errors import InstanceSpaceFrozenError, ProtocolError
from repro.messages.base import SignedPayload
from repro.statemachine.base import Command
from repro.types import InstanceID


class EntryStatus(enum.Enum):
    """Lifecycle of a log entry, matching the TLA+ ``Status`` set plus the
    execution stages."""

    SPEC_ORDERED = "spec-ordered"
    COMMITTED = "committed"
    EXECUTED = "executed"

    def at_least(self, other: "EntryStatus") -> bool:
        order = [EntryStatus.SPEC_ORDERED, EntryStatus.COMMITTED,
                 EntryStatus.EXECUTED]
        return order.index(self) >= order.index(other)


@dataclass
class LogEntry:
    """One slot's worth of consensus state at one replica."""

    instance: InstanceID
    owner_number: int
    command: Command
    deps: Tuple[InstanceID, ...]
    seq: int
    status: EntryStatus = EntryStatus.SPEC_ORDERED
    #: Result of speculative execution (sent in SPECREPLY).
    spec_result: Any = None
    spec_executed: bool = False
    #: Result of final execution (sent in COMMITREPLY).
    final_result: Any = None
    #: Signed SPECORDER this entry derives from (evidence for recovery).
    spec_order: Optional[SignedPayload] = None
    #: Commit certificate (signed SPECREPLYs or the client's COMMIT).
    commit_proof: Tuple[SignedPayload, ...] = ()
    #: True when a slow-path COMMIT fixed deps/seq (final metadata).
    committed_slow: bool = False
    #: Client to notify with a COMMITREPLY after final execution.
    reply_to: Optional[str] = None

    @property
    def sort_key(self) -> Tuple[int, str, int]:
        """Deterministic intra-SCC execution key: sequence number first,
        replica-id tie-break, then slot for totality."""
        return (self.seq, self.instance.owner, self.instance.slot)


class InstanceSpace:
    """One replica's instance space as mirrored at some node."""

    def __init__(self, owner: str, initial_owner_number: int) -> None:
        self.owner = owner
        self.owner_number = initial_owner_number
        self.frozen = False
        self._slots: Dict[int, LogEntry] = {}
        #: Next slot the *space owner* will assign (meaningful only at the
        #: owner itself).
        self.next_slot = 0
        #: Next slot this node expects in a SPECORDER from the owner --
        #: the paper's ``maxI + 1`` validation.
        self.expected_slot = 0
        #: First slot still held: everything below was garbage-collected
        #: at a stable checkpoint (its commands are durably executed).
        self.low_slot = 0

    def __contains__(self, slot: int) -> bool:
        return slot in self._slots

    def get(self, slot: int) -> Optional[LogEntry]:
        return self._slots.get(slot)

    def entries(self) -> Iterator[LogEntry]:
        for slot in sorted(self._slots):
            yield self._slots[slot]

    def put(self, entry: LogEntry) -> None:
        if self.frozen:
            raise InstanceSpaceFrozenError(
                f"instance space of {self.owner!r} is frozen")
        if entry.instance.owner != self.owner:
            raise ProtocolError(
                f"entry {entry.instance} does not belong to space "
                f"{self.owner!r}")
        self._slots[entry.instance.slot] = entry

    def force_put(self, entry: LogEntry) -> None:
        """Install an entry bypassing the frozen check -- used when a
        NEWOWNER message finalizes a frozen space's history."""
        self._slots[entry.instance.slot] = entry

    def allocate_slot(self) -> int:
        """Owner-side: claim the lowest available slot."""
        slot = self.next_slot
        self.next_slot += 1
        return slot

    def truncate(self, before_slot: int) -> int:
        """Drop every slot below ``before_slot`` (checkpoint GC).

        Returns the number of entries removed.  Callers are responsible
        for only truncating below a stable checkpoint's frontier."""
        if before_slot <= self.low_slot:
            return 0
        doomed = [s for s in self._slots if s < before_slot]
        for slot in doomed:
            del self._slots[slot]
        self.low_slot = before_slot
        self.expected_slot = max(self.expected_slot, before_slot)
        self.next_slot = max(self.next_slot, before_slot)
        return len(doomed)

    @property
    def max_occupied_slot(self) -> int:
        """Largest occupied slot, or -1 when empty."""
        return max(self._slots) if self._slots else -1

    def __len__(self) -> int:
        return len(self._slots)
