"""ezBFT owner-change protocol (paper Sections IV-D and IV-E).

An instance space whose owner is suspected byzantine is handed to the next
replica in owner-number order.  The flow:

1. A replica *suspects* the owner (suspicion timeout after relaying a
   RESENDREQ, or a verified proof of misbehavior) and broadcasts a signed
   STARTOWNERCHANGE carrying the space's current owner number O.
2. On f+1 STARTOWNERCHANGE messages for (space, O) a replica *commits* to
   the change: it freezes the space (stops acting on the old owner's
   SPECORDERs), computes O' = O+1 and the new owner ``replicas[O' mod N]``,
   and sends the new owner a signed OWNERCHANGE with its view of the
   space: every instance it holds, with the strongest proof it has
   (a commit certificate, or the signed SPECORDER).
3. The new owner collects f+1 OWNERCHANGEs and finalizes the history:
   per slot it picks (Condition 1) any entry backed by a commit
   certificate with the highest owner number, else (Condition 2) an entry
   whose signed SPECORDER is reported by at least f+1 distinct replicas;
   unresolvable slots below the highest safe slot become no-ops.  It
   broadcasts NEWOWNER with the safe history G and the OWNERCHANGE set as
   proof.
4. Replicas validate NEWOWNER (correct sender for O'), install G as
   committed, roll back speculation, and leave the space frozen -- the
   paper: "No new commands are ordered in the instance space."

Deviation note (documented per DESIGN.md): the paper selects the single
longest sequence P_i satisfying Condition 1/2 and then admits extensions;
we resolve per-slot with the same two conditions, which accepts exactly
the union of the paper's P_i and its valid extensions while being simpler
to verify.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.instance import EntryStatus, LogEntry
from repro.crypto.digest import digest
from repro.messages.base import SignedPayload
from repro.messages.batching import BatchSpecOrder
from repro.messages.ezbft import (
    LogEntrySummary,
    NewOwner,
    OwnerChange,
    ProofOfMisbehavior,
    SpecOrder,
    StartOwnerChange,
)
from repro.statemachine.base import Command
from repro.types import InstanceID

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import EzBFTReplica


def summarize_entry(entry: LogEntry) -> LogEntrySummary:
    """One log entry with the strongest evidence held for it -- shared
    by owner-change recovery payloads and state-transfer log suffixes."""
    if entry.status.at_least(EntryStatus.COMMITTED):
        kind = "commit"
        proof = tuple(entry.commit_proof)
    else:
        kind = "spec-order"
        proof = ((entry.spec_order,)
                 if entry.spec_order is not None else ())
    return LogEntrySummary(
        instance=entry.instance, command=entry.command,
        deps=entry.deps, seq=entry.seq,
        status=entry.status.value,
        owner_number=entry.owner_number,
        proof_kind=kind, proof=proof)


class OwnerChangeManager:
    """Per-replica owner-change state machine."""

    def __init__(self, replica: "EzBFTReplica") -> None:
        self.replica = replica
        #: (suspect, owner_number) -> voters who sent STARTOWNERCHANGE.
        self._votes: Dict[Tuple[str, int], Set[str]] = {}
        #: (suspect, owner_number) we already voted for.
        self._voted: Set[Tuple[str, int]] = set()
        #: (suspect, new_owner_number) we already committed to.
        self._committed: Set[Tuple[str, int]] = set()
        #: new-owner side: (suspect, new_owner_number) -> sender -> msg.
        self._collected: Dict[Tuple[str, int],
                              Dict[str, Tuple[OwnerChange,
                                              SignedPayload]]] = {}
        #: (suspect, new_owner_number) already finalized by us as new owner.
        self._finalized: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # Suspicion entry points
    # ------------------------------------------------------------------
    def suspect(self, suspect: str) -> None:
        """Vote to change the owner of ``suspect``'s instance space."""
        replica = self.replica
        if suspect == replica.node_id:
            return
        space = replica.spaces.get(suspect)
        if space is None or space.frozen:
            return
        key = (suspect, space.owner_number)
        if key in self._voted:
            return
        self._voted.add(key)
        replica.stats["owner_changes_started"] += 1
        replica.instruments.owner_change()
        msg = StartOwnerChange(sender=replica.node_id, suspect=suspect,
                               owner_number=space.owner_number)
        signed = SignedPayload.create(msg, replica.keypair)
        self._record_vote(msg)
        replica.ctx.broadcast(replica.config.others(replica.node_id),
                              signed)

    def on_pom(self, pom: ProofOfMisbehavior) -> None:
        """Validate a client-supplied proof of misbehavior (step 4.4)."""
        if self._pom_valid(pom):
            self.suspect(pom.suspect)

    def _pom_valid(self, pom: ProofOfMisbehavior) -> bool:
        replica = self.replica
        a, b = pom.evidence
        if not (a.verify(replica.registry) and b.verify(replica.registry)):
            return False
        if a.signer != pom.suspect or b.signer != pom.suspect:
            return False
        orders_a = self._evidence_orders(a, pom.suspect)
        orders_b = self._evidence_orders(b, pom.suspect)
        if orders_a is None or orders_b is None:
            return False
        # Conflict: same slot ordered twice with different content, or the
        # same request placed at two different instances.  Batched
        # evidence conflicts when any inner pair does.
        for pa in orders_a:
            for pb in orders_b:
                same_slot_diff_payload = (
                    pa.instance == pb.instance
                    and digest(pa) != digest(pb))
                same_request_diff_instance = (
                    pa.request_digest == pb.request_digest
                    and pa.instance != pb.instance)
                if same_slot_diff_payload or same_request_diff_instance:
                    return True
        return False

    @staticmethod
    def _evidence_orders(envelope: SignedPayload, suspect: str
                         ) -> Optional[Tuple[SpecOrder, ...]]:
        """The SPECORDERs a piece of POM evidence attributes to
        ``suspect`` -- the payload itself, or a batch's inner orders.
        ``None`` when the payload is no proposal of the suspect's."""
        payload = envelope.payload
        if isinstance(payload, SpecOrder):
            orders: Tuple[SpecOrder, ...] = (payload,)
        elif isinstance(payload, BatchSpecOrder):
            if payload.leader != suspect:
                return None
            orders = payload.orders
        else:
            return None
        for order in orders:
            if order.leader != suspect:
                return None
        return orders

    # ------------------------------------------------------------------
    # STARTOWNERCHANGE
    # ------------------------------------------------------------------
    def on_start_owner_change(self, msg: StartOwnerChange) -> None:
        replica = self.replica
        space = replica.spaces.get(msg.suspect)
        if space is None or msg.owner_number != space.owner_number:
            return
        self._record_vote(msg)
        key = (msg.suspect, msg.owner_number)
        votes = self._votes.get(key, set())
        weak = replica.config.weak_quorum_size
        if len(votes) >= weak and key not in self._voted:
            # Amplify: join the change once f+1 replicas demand it (at
            # least one of them is correct).
            self._voted.add(key)
            own = StartOwnerChange(sender=replica.node_id,
                                   suspect=msg.suspect,
                                   owner_number=msg.owner_number)
            self._record_vote(own)
            replica.ctx.broadcast(
                replica.config.others(replica.node_id),
                SignedPayload.create(own, replica.keypair))
            votes = self._votes[key]
        if len(votes) >= weak:
            self._commit_to_change(msg.suspect, msg.owner_number)

    def _record_vote(self, msg: StartOwnerChange) -> None:
        key = (msg.suspect, msg.owner_number)
        self._votes.setdefault(key, set()).add(msg.sender)

    def _commit_to_change(self, suspect: str, owner_number: int) -> None:
        replica = self.replica
        new_number = owner_number + 1
        key = (suspect, new_number)
        if key in self._committed:
            return
        self._committed.add(key)
        space = replica.spaces[suspect]
        space.frozen = True
        new_owner = replica.config.owner_for_number(new_number)
        base_slot = replica.checkpoint_base_slot(suspect)
        entries = self._summarize_space(suspect, base_slot)
        msg = OwnerChange(sender=replica.node_id, suspect=suspect,
                          new_owner_number=new_number, entries=entries,
                          base_slot=base_slot)
        signed = SignedPayload.create(msg, replica.keypair)
        if new_owner == replica.node_id:
            self.on_owner_change(msg, signed)
        else:
            replica.ctx.send(new_owner, signed)

    def _summarize_space(self, suspect: str, base_slot: int = 0
                         ) -> Tuple[LogEntrySummary, ...]:
        """The paper's recovery info: "instances executed or committed
        since the last checkpoint" -- slots below ``base_slot`` are
        durably executed at a quorum and omitted."""
        replica = self.replica
        space = replica.spaces[suspect]
        return tuple(summarize_entry(entry) for entry in space.entries()
                     if entry.instance.slot >= base_slot)

    # ------------------------------------------------------------------
    # OWNERCHANGE (new-owner side)
    # ------------------------------------------------------------------
    def on_owner_change(self, msg: OwnerChange,
                        envelope: SignedPayload) -> None:
        replica = self.replica
        expected_owner = replica.config.owner_for_number(
            msg.new_owner_number)
        if expected_owner != replica.node_id:
            return
        key = (msg.suspect, msg.new_owner_number)
        if key in self._finalized:
            return
        bucket = self._collected.setdefault(key, {})
        bucket[msg.sender] = (msg, envelope)
        if len(bucket) >= replica.config.weak_quorum_size:
            self._finalize(msg.suspect, msg.new_owner_number)

    def _finalize(self, suspect: str, new_number: int) -> None:
        replica = self.replica
        key = (suspect, new_number)
        self._finalized.add(key)
        bucket = self._collected[key]
        messages = [m for m, _ in bucket.values()]
        # Slots below every reporter's checkpoint base are durably
        # executed at a quorum: the finalized history starts above them.
        base_slot = min((m.base_slot for m in messages), default=0)
        safe = self._select_safe_history(messages, base_slot)
        proof = tuple(envelope for _, envelope in bucket.values())
        msg = NewOwner(new_owner=replica.node_id, suspect=suspect,
                       new_owner_number=new_number,
                       safe_entries=safe, proof=proof,
                       base_slot=base_slot)
        signed = SignedPayload.create(msg, replica.keypair)
        replica.ctx.broadcast(replica.config.others(replica.node_id),
                              signed)
        self.on_new_owner(msg)  # apply locally

    def _select_safe_history(self, messages: List[OwnerChange],
                             base_slot: int = 0
                             ) -> Tuple[LogEntrySummary, ...]:
        """Per-slot resolution using the paper's Conditions 1 and 2,
        over the slots at or above ``base_slot`` (every reporter only
        ships entries above its own checkpoint base, so all candidates
        are above the minimum base).

        Gap slots are finalized as no-ops only at or above the *highest*
        reported base: below it, some reporter's stable checkpoint
        proves the slot durably executed at a quorum -- its real command
        simply got garbage-collected out of that reporter's payload, and
        finalizing a no-op over it would overwrite the executed command
        at any replica still holding it un-executed.  Such slots are
        omitted (left to checkpoint/state-transfer repair) instead."""
        replica = self.replica
        weak = replica.config.weak_quorum_size
        by_slot: Dict[int, List[LogEntrySummary]] = {}
        for msg in messages:
            for summary in msg.entries:
                by_slot.setdefault(summary.instance.slot,
                                   []).append(summary)

        chosen: Dict[int, LogEntrySummary] = {}
        for slot, candidates in by_slot.items():
            # Condition 1: a commit certificate wins outright; among
            # several, highest owner number.
            committed = [c for c in candidates if c.proof_kind == "commit"]
            if committed:
                chosen[slot] = max(committed,
                                   key=lambda c: c.owner_number)
                continue
            # Condition 2: f+1 distinct replicas report the same signed
            # SPECORDER (same command, same owner number).
            groups: Dict[Tuple, List[LogEntrySummary]] = {}
            for cand in candidates:
                if cand.command is None:
                    continue
                group_key = (tuple(sorted(cand.command.to_wire().items(),
                                          key=lambda kv: kv[0])),
                             cand.owner_number)
                groups.setdefault(group_key, []).append(cand)
            best: Optional[LogEntrySummary] = None
            for group in groups.values():
                if len(group) >= min(weak, len(messages)):
                    cand = group[0]
                    if best is None or cand.owner_number > \
                            best.owner_number:
                        best = cand
            if best is not None:
                chosen[slot] = best

        if not chosen:
            return ()
        fill_floor = max((m.base_slot for m in messages), default=0)
        max_slot = max(chosen)
        safe: List[LogEntrySummary] = []
        suspect = messages[0].suspect
        for slot in range(base_slot, max_slot + 1):
            if slot in chosen:
                safe.append(chosen[slot])
            elif slot >= fill_floor:
                # Unresolvable gap below a safe slot: finalize as no-op.
                safe.append(LogEntrySummary(
                    instance=InstanceID(suspect, slot),
                    command=Command.noop(), deps=(), seq=0,
                    status="committed", owner_number=0,
                    proof_kind="commit", proof=()))
            # else: checkpoint-covered at some reporter; never no-op it.
        return tuple(safe)

    # ------------------------------------------------------------------
    # NEWOWNER (all replicas)
    # ------------------------------------------------------------------
    def on_new_owner(self, msg: NewOwner) -> None:
        replica = self.replica
        expected_owner = replica.config.owner_for_number(
            msg.new_owner_number)
        if msg.new_owner != expected_owner:
            return
        space = replica.spaces.get(msg.suspect)
        if space is None or msg.new_owner_number <= space.owner_number:
            return
        # Adopt the finalized history.
        replica.statemachine.rollback_speculative()
        for summary in msg.safe_entries:
            if summary.instance.slot < space.low_slot:
                # Below our stable checkpoint: durably executed and
                # already garbage-collected here.
                continue
            existing = replica._log_index.get(summary.instance)
            if existing is not None and \
                    existing.status == EntryStatus.EXECUTED:
                continue
            entry = LogEntry(
                instance=summary.instance,
                owner_number=msg.new_owner_number,
                command=summary.command
                if summary.command is not None else Command.noop(),
                deps=summary.deps,
                seq=summary.seq,
                status=EntryStatus.COMMITTED,
            )
            if existing is not None:
                entry.reply_to = existing.reply_to
            space.force_put(entry)
            if existing is None or \
                    existing.command.ident != entry.command.ident:
                # Full indexing (key index included) so duplicate
                # detection and dependency collection find recovered
                # commands -- including when recovery replaces a slot's
                # command with a different one.
                replica._index_entry(entry)
            else:
                replica._log_index[summary.instance] = entry
        space.owner_number = msg.new_owner_number
        space.frozen = True  # the space stays frozen per the paper
        top = max((s.instance.slot for s in msg.safe_entries),
                  default=msg.base_slot - 1)
        space.expected_slot = max(space.expected_slot, top + 1,
                                  msg.base_slot)
        replica._advance_execution()
